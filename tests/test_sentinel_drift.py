"""Drift-after-degraded-quorum: the sentinel's acceptance scenarios.

An instance dropped from a single exchange by degraded-quorum voting
silently misses that exchange's mutation — RDDR's response-boundary
comparison never sees the gap, because the instance answers every
*later* read it is asked to vote on from its (stale) state only when
the divergent key comes up.  These tests drive exactly that wound and
assert the anti-entropy audit finds it, localizes it to the right
chunks, and heals it in place: journal restore + tail replay at the
instance's live address, never a pod restart.

Covered here: the kvstore pair over native ``DIGEST`` state digests
(with and without journal group commit), and pgwire over the
full-snapshot fallback digests.  The audit loop is driven manually
(``audit_once``) for determinism; the periodic loop is exercised by the
chaos soak in ``test_sentinel_soak.py``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.apps.kvstore import RedisLikeServer, kv_command
from repro.core.config import RddrConfig
from repro.journal import capture_state_digests
from repro.orchestrator import Cluster, deploy_nversioned
from repro.recovery import LIVE, QUARANTINED, RESTARTING
from repro.sentinel import diff_chunks
from tests.helpers import run

N = 3
CHUNK = 32


class _DroppyKv(RedisLikeServer):
    """Kvstore pod that can be told to drop exactly one mutation: when
    ``flags["drop"]`` holds this pod's index, the next SET is swallowed
    (state unchanged) and the connection is torn down without a reply,
    so the proxy's degraded quorum finishes the exchange without us."""

    def __init__(self, *, host: str, port: int, index: int, flags: dict) -> None:
        super().__init__(host=host, port=port, name=f"droppy-{index}")
        self.index = index
        self.flags = flags

    def dispatch(self, command: list[bytes]) -> bytes:
        if (
            command
            and command[0].upper() == b"SET"
            and self.flags.get("drop") == self.index
        ):
            self.flags.pop("drop")
            raise ConnectionResetError("dropped from this exchange")
        return super().dispatch(command)


def _kv_factory(flags: dict):
    async def factory(ctx):
        return await _DroppyKv(
            host=ctx.host, port=ctx.port, index=ctx.index, flags=flags
        ).start()

    return factory


def _sentinel_config(journal_dir: str, protocol: str, **extra) -> RddrConfig:
    return RddrConfig(
        protocol=protocol,
        exchange_timeout=2.0,
        instance_response_deadline=0.5,
        divergence_policy="vote",
        degraded_quorum=True,
        quarantine_minority=True,
        ephemeral_state=False,
        recovery_enabled=True,
        probe_period=0.05,
        probe_timeout=0.3,
        probe_failure_threshold=3,
        restart_backoff=0.05,
        rejoin_clean_exchanges=2,
        connect_attempts=3,
        connect_backoff_max=0.05,
        journal_dir=journal_dir,
        # Enormous period: the loop never fires during the test, the
        # audits are stepped manually through ``audit_once``.
        sentinel_audit_period=600.0,
        sentinel_chunk_bytes=CHUNK,
        **extra,
    )


async def _instance_scan(address) -> bytes:
    listing = await kv_command(address, "KEYS", "*")
    keys = [
        line
        for line in listing.split(b"\r\n")
        if line and not line.startswith((b"*", b"$"))
    ]
    chunks = [listing]
    for key in keys:
        chunks.append(await kv_command(address, "GET", key))
    return b"".join(chunks)


async def _wait_for(predicate, timeout: float = 10.0) -> None:
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(0.02)


def _drift_records(service) -> list[dict]:
    return [
        record
        for record in service.rddr.observer.sink.traces()
        if record.get("type") == "drift"
    ]


def _recovery_states(service, instance: int) -> list[str]:
    return [
        record["to"]
        for record in service.rddr.observer.sink.traces()
        if record.get("type") == "recovery" and record.get("instance") == instance
    ]


class TestKvDriftRepair:
    @pytest.mark.parametrize("group_commit_ms", [0.0, 5.0])
    def test_missed_mutation_detected_localized_repaired(
        self, tmp_path, group_commit_ms
    ):
        journal_dir = str(tmp_path / "journal")

        async def main():
            flags: dict = {}
            extra = {}
            if group_commit_ms:
                extra = dict(
                    journal_group_commit_ms=group_commit_ms, journal_fsync=True
                )
            config = _sentinel_config(journal_dir, "resp", **extra)
            async with Cluster() as cluster:
                service = await deploy_nversioned(
                    cluster, "kv", [_kv_factory(flags)] * N, config=config
                )
                try:
                    sentinel = service.sentinel
                    supervisor = service.supervisor
                    assert sentinel is not None and supervisor is not None

                    # Seed enough keys that the snapshot spans several
                    # chunks; the doomed key sorts last so its write
                    # lands in the final chunk region.
                    for i in range(8):
                        reply = await kv_command(
                            service.address, "SET", f"key:{i:02d}", f"val{i:04d}"
                        )
                        assert reply == b"+OK\r\n"
                    assert await sentinel.audit_once() == "clean"

                    # Instance 1 is dropped from exactly this exchange:
                    # the mutation commits on the 2/3 quorum (and the
                    # journal) but never reaches instance 1.
                    flags["drop"] = 1
                    reply = await kv_command(
                        service.address, "SET", "zz:target", "missed!!"
                    )
                    assert reply == b"+OK\r\n"
                    assert "drop" not in flags  # the pod consumed the flag
                    await _wait_for(lambda: supervisor.state(1) == LIVE)

                    pods = cluster.pods("kv")
                    assert pods[1].runtime.get(b"zz:target") is None  # wounded
                    assert pods[0].runtime.get(b"zz:target") == b"missed!!"

                    # Predict the localization: the exact chunks where
                    # the wounded instance disagrees with a healthy one.
                    healthy = await capture_state_digests(
                        pods[0].address, "resp", chunk_bytes=CHUNK
                    )
                    wounded = await capture_state_digests(
                        pods[1].address, "resp", chunk_bytes=CHUNK
                    )
                    expected_chunks = diff_chunks(healthy, wounded)
                    assert expected_chunks

                    assert await sentinel.audit_once() == "divergent"

                    records = _drift_records(service)
                    detected = [r for r in records if r["action"] == "detected"]
                    assert len(detected) == 1
                    assert detected[0]["instance"] == 1
                    assert detected[0]["chunks"] == expected_chunks
                    repaired = [r for r in records if r["action"] == "repaired"]
                    assert len(repaired) == 1
                    assert repaired[0]["instance"] == 1

                    # Repaired *in place*: back LIVE via REPAIRING, with
                    # no restart and no quarantine anywhere in instance
                    # 1's timeline.
                    assert supervisor.state(1) == LIVE
                    states = _recovery_states(service, 1)
                    assert "REPAIRING" in states
                    assert RESTARTING not in states
                    assert QUARANTINED not in states

                    # Byte-identical scans across the whole group.
                    scans = {
                        await _instance_scan(pod.address) for pod in pods
                    }
                    assert len(scans) == 1
                    assert b"missed!!" in next(iter(scans))

                    assert await sentinel.audit_once() == "clean"
                finally:
                    await service.close()

        run(main(), timeout=60.0)


class TestPgwireDriftRepair:
    def test_fallback_digests_detect_and_repair_sql_drift(self, tmp_path):
        from repro.pgwire import PgClient, PgWireServer
        from repro.sqlengine import Database

        journal_dir = str(tmp_path / "journal")

        async def pg_factory(ctx):
            server = PgWireServer(Database(), host=ctx.host, port=ctx.port)
            await server.start()
            return server

        async def main():
            config = _sentinel_config(journal_dir, "pgwire")
            async with Cluster() as cluster:
                service = await deploy_nversioned(
                    cluster, "db", [pg_factory] * N, config=config
                )
                try:
                    sentinel = service.sentinel
                    assert sentinel is not None
                    async with await PgClient.connect(*service.address) as client:
                        await client.query(
                            "CREATE TABLE t (id INT PRIMARY KEY, name TEXT)"
                        )
                        await client.query("INSERT INTO t VALUES (1, 'one')")
                        await client.query("INSERT INTO t VALUES (2, 'two')")
                    assert await sentinel.audit_once() == "clean"

                    # Silent out-of-band corruption: one replica's row
                    # mutates without any exchange noticing.
                    pods = cluster.pods("db")
                    pods[2].runtime.database.execute(
                        "UPDATE t SET name = 'CORRUPT' WHERE id = 2"
                    )

                    assert await sentinel.audit_once() == "divergent"
                    records = _drift_records(service)
                    assert [r["action"] for r in records if r["instance"] == 2] == [
                        "detected",
                        "repaired",
                    ]
                    assert service.supervisor.state(2) == LIVE
                    states = _recovery_states(service, 2)
                    assert RESTARTING not in states and QUARANTINED not in states

                    dumps = {
                        pod.runtime.database.dump_sql() for pod in pods
                    }
                    assert len(dumps) == 1
                    assert "CORRUPT" not in next(iter(dumps))
                    assert await sentinel.audit_once() == "clean"
                finally:
                    await service.close()

        run(main(), timeout=60.0)
