"""Robustness and failure-injection tests.

A proxy that dies on malformed input is itself a DoS target; these tests
throw garbage and mid-exchange failures at every parser and at the
proxies and assert containment (clean errors, no hangs, no crashes).
"""

from __future__ import annotations

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.echo import EchoServer
from repro.core.config import RddrConfig
from repro.core.incoming import IncomingRequestProxy
from repro.pgwire import messages as wire
from repro.protocols import get_protocol
from repro.sqlengine import Database
from repro.transport.retry import open_connection_retry
from repro.transport.server import start_server
from repro.transport.streams import close_writer
from repro.web.http11 import HttpParseError, parse_request_bytes, parse_response_bytes
from tests.helpers import run


class TestHttpParserFuzz:
    @given(st.binary(min_size=0, max_size=256))
    @settings(max_examples=200)
    def test_arbitrary_bytes_never_crash_request_parser(self, data):
        try:
            parse_request_bytes(data)
        except (HttpParseError, Exception) as error:
            # any *Python* error type is fine as long as it is an
            # exception, not a hang/segfault; but prefer HttpParseError
            assert isinstance(error, Exception)

    @given(st.binary(min_size=0, max_size=256))
    @settings(max_examples=200)
    def test_arbitrary_bytes_never_crash_response_parser(self, data):
        try:
            parse_response_bytes(data)
        except Exception as error:
            assert isinstance(error, Exception)

    @given(st.binary(min_size=0, max_size=128))
    @settings(max_examples=100)
    def test_http_tokenizer_total(self, data):
        protocol = get_protocol("http")
        tokens = protocol.tokenize(data)
        assert isinstance(tokens, list)


class TestPgwireCodecFuzz:
    @given(st.binary(min_size=0, max_size=256))
    @settings(max_examples=200)
    def test_split_messages_never_crashes(self, data):
        try:
            messages, tail = wire.split_messages(data)
            assert isinstance(messages, list)
        except wire.ProtocolError:
            pass

    @given(st.binary(min_size=0, max_size=128))
    @settings(max_examples=100)
    def test_pgwire_tokenizer_total(self, data):
        protocol = get_protocol("pgwire")
        tokens = protocol.tokenize(data)
        assert isinstance(tokens, list)

    def test_server_survives_garbage_connection(self):
        async def main():
            from repro.pgwire import PgClient, serve_database

            server = await serve_database(Database())
            reader, writer = await open_connection_retry(*server.address)
            writer.write(b"\xff" * 64)
            await writer.drain()
            await close_writer(writer)
            # server still answers a well-formed client afterwards
            async with await PgClient.connect(*server.address) as client:
                assert (await client.query("SELECT 1")).ok
            await server.close()

        run(main())


class TestSqlParserFuzz:
    @given(st.text(max_size=80))
    @settings(max_examples=200)
    def test_arbitrary_text_never_crashes_execute(self, sql):
        db = Database()
        outcomes = db.execute(sql)
        for outcome in outcomes:
            assert outcome.ok or outcome.error is not None


class TestProxyFailureInjection:
    def test_instance_dying_mid_response_blocks_cleanly(self):
        async def main():
            async def half_responder(reader, writer):
                await reader.readline()
                writer.write(b"partial")  # no newline, then hang up
                await writer.drain()
                writer.close()

            good = await EchoServer().start()
            flaky = await start_server(half_responder)
            proxy = IncomingRequestProxy(
                [good.address, flaky.address],
                get_protocol("tcp"),
                RddrConfig(protocol="tcp", exchange_timeout=1.0),
            )
            await proxy.start()
            reader, writer = await open_connection_retry(*proxy.address)
            writer.write(b"hello\n")
            await writer.drain()
            reply = await asyncio.wait_for(reader.read(64), 3)
            # tcp block response is a bare close; the point is: no hang,
            # no partial data passthrough
            assert b"partial" not in reply
            await close_writer(writer)
            await proxy.close()
            await good.close()
            await flaky.close()

        run(main())

    def test_client_abandoning_mid_exchange(self):
        async def main():
            servers = [await EchoServer().start() for _ in range(2)]
            proxy = IncomingRequestProxy(
                [s.address for s in servers],
                get_protocol("tcp"),
                RddrConfig(protocol="tcp", exchange_timeout=1.0),
            )
            await proxy.start()
            _, writer = await open_connection_retry(*proxy.address)
            writer.write(b"no newline yet")
            await writer.drain()
            await close_writer(writer)  # vanish mid-request
            await asyncio.sleep(0.2)
            # proxy still serves new clients
            reader, writer = await open_connection_retry(*proxy.address)
            writer.write(b"after\n")
            await writer.drain()
            assert await asyncio.wait_for(reader.readline(), 2) == b"after\n"
            await close_writer(writer)
            await proxy.close()
            for server in servers:
                await server.close()

        run(main())

    def test_gzip_asymmetry_not_divergent(self):
        """One instance compresses, the other does not: the HTTP module
        diffs decompressed bodies, so content equality wins."""

        async def main():
            from repro.web import App, HttpClient, serve_app, text_response

            def make_app():
                app = App("gz")

                @app.route("/data")
                async def data(ctx):
                    return text_response("x" * 512)

                return app

            plain = await serve_app(make_app(), gzip_responses=False)
            gzipped = await serve_app(make_app(), gzip_responses=True)
            proxy = IncomingRequestProxy(
                [plain.address, gzipped.address],
                get_protocol("http"),
                RddrConfig(protocol="http", exchange_timeout=2.0),
            )
            await proxy.start()
            async with HttpClient(*proxy.address) as client:
                response = await client.get(
                    "/data", headers={"Accept-Encoding": "gzip"}
                )
            assert response.status == 200
            assert proxy.metrics.divergences == 0
            await proxy.close()
            await plain.close()
            await gzipped.close()

        run(main())

    def test_slowloris_request_does_not_stall_other_clients(self):
        async def main():
            servers = [await EchoServer().start() for _ in range(2)]
            proxy = IncomingRequestProxy(
                [s.address for s in servers],
                get_protocol("tcp"),
                RddrConfig(protocol="tcp", exchange_timeout=1.0),
            )
            await proxy.start()
            # slow client connects and sends nothing
            _, slow_writer = await open_connection_retry(*proxy.address)
            # fast client still gets service
            reader, writer = await open_connection_retry(*proxy.address)
            writer.write(b"fast\n")
            await writer.drain()
            assert await asyncio.wait_for(reader.readline(), 2) == b"fast\n"
            await close_writer(writer)
            await close_writer(slow_writer)
            await proxy.close()
            for server in servers:
                await server.close()

        run(main())
