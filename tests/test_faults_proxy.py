"""FaultProxy byte-level behaviour and schedule-driven determinism."""

from __future__ import annotations

import asyncio

from repro.apps.echo import EchoServer
from repro.faults import FaultProxy, FaultSchedule, FaultSpec
from repro.obs import Observer
from repro.transport.retry import open_connection_retry
from repro.transport.streams import close_writer
from tests.helpers import run


async def _session(address, lines: list[bytes]) -> bytes:
    """Write every line, half-close, and drain the response byte stream.

    A reset (the shim dropping the socket with our unread data still
    queued) just ends the stream: faults that kill the connection leave
    whatever bytes arrived before the drop.
    """
    reader, writer = await open_connection_retry(*address)
    chunks: list[bytes] = []
    try:
        for line in lines:
            writer.write(line + b"\n")
        await writer.drain()
        writer.write_eof()
        while chunk := await reader.read(4096):
            chunks.append(chunk)
    except ConnectionError:
        pass
    finally:
        await close_writer(writer)
    return b"".join(chunks)


async def _faulted_echo(schedule: FaultSchedule, **kwargs):
    echo = await EchoServer().start()
    proxy = await FaultProxy(echo.address, schedule, **kwargs).start()
    return echo, proxy


class TestResponseFaults:
    def test_empty_schedule_is_transparent(self):
        async def main():
            echo, proxy = await _faulted_echo(FaultSchedule())
            assert await _session(proxy.address, [b"a", b"b"]) == b"a\nb\n"
            assert proxy.records == []
            await proxy.close()
            await echo.close()

        run(main())

    def test_stall_delays_but_preserves_bytes(self):
        async def main():
            schedule = FaultSchedule(
                specs=[FaultSpec(kind="stall", exchange=0, delay_ms=50.0)]
            )
            echo, proxy = await _faulted_echo(schedule)
            started = asyncio.get_running_loop().time()
            assert await _session(proxy.address, [b"hi"]) == b"hi\n"
            assert asyncio.get_running_loop().time() - started >= 0.05
            assert [r.as_tuple() for r in proxy.records] == [
                ("stall", 0, 0, "50.0ms")
            ]
            await proxy.close()
            await echo.close()

        run(main())

    def test_corrupt_bytes_flips_one_byte(self):
        async def main():
            schedule = FaultSchedule(
                specs=[
                    FaultSpec(kind="corrupt_bytes", exchange=0, offset=0, xor_mask=0x01)
                ]
            )
            echo, proxy = await _faulted_echo(schedule)
            # 'h' ^ 0x01 == 'i'; the fault fires once, so exchange 1 is clean.
            assert await _session(proxy.address, [b"hi", b"hi"]) == b"ii\nhi\n"
            await proxy.close()
            await echo.close()

        run(main())

    def test_corrupt_offset_clamps_inside_payload(self):
        async def main():
            schedule = FaultSchedule(
                specs=[
                    FaultSpec(kind="corrupt_bytes", exchange=0, offset=99, xor_mask=0x01)
                ]
            )
            echo, proxy = await _faulted_echo(schedule)
            # Clamped to the last payload byte, never the trailing newline.
            assert await _session(proxy.address, [b"hi"]) == b"hh\n"
            await proxy.close()
            await echo.close()

        run(main())

    def test_truncate_response_drops_the_tail(self):
        async def main():
            schedule = FaultSchedule(
                specs=[FaultSpec(kind="truncate_response", exchange=0, offset=2)]
            )
            echo, proxy = await _faulted_echo(schedule)
            assert await _session(proxy.address, [b"hello"]) == b"he"
            assert proxy.records[0].detail == "kept 2 bytes"
            await proxy.close()
            await echo.close()

        run(main())

    def test_duplicate_response_replays_the_message(self):
        async def main():
            schedule = FaultSchedule(
                specs=[FaultSpec(kind="duplicate_response", exchange=0)]
            )
            echo, proxy = await _faulted_echo(schedule)
            assert await _session(proxy.address, [b"hi"]) == b"hi\nhi\n"
            await proxy.close()
            await echo.close()

        run(main())

    def test_close_mid_response_sends_a_prefix_then_eof(self):
        async def main():
            schedule = FaultSchedule(
                specs=[FaultSpec(kind="close_mid_response", exchange=0)]
            )
            echo, proxy = await _faulted_echo(schedule)
            # offset 0 means "halfway": 3 of the 6 response bytes.
            assert await _session(proxy.address, [b"hello"]) == b"hel"
            assert proxy.records[0].as_tuple() == (
                "close_mid_response", 0, 0, "sent 3 bytes"
            )
            await proxy.close()
            await echo.close()

        run(main())

    def test_identical_specs_fire_independently(self):
        async def main():
            twin = FaultSpec(kind="duplicate_response", exchange=0)
            echo, proxy = await _faulted_echo(FaultSchedule(specs=[twin, twin]))
            assert await _session(proxy.address, [b"x"]) == b"x\n" * 4
            assert len(proxy.records) == 2
            await proxy.close()
            await echo.close()

        run(main())

    def test_times_none_fires_every_exchange(self):
        async def main():
            schedule = FaultSchedule(
                specs=[FaultSpec(kind="duplicate_response", times=None)]
            )
            echo, proxy = await _faulted_echo(schedule)
            assert await _session(proxy.address, [b"a", b"b"]) == b"a\na\nb\nb\n"
            await proxy.close()
            await echo.close()

        run(main())


class TestConnectFaults:
    def test_accept_drop_refuses_first_connection_only(self):
        async def main():
            schedule = FaultSchedule(
                specs=[FaultSpec(kind="connect_refused", exchange=0)]
            )
            echo, proxy = await _faulted_echo(schedule)
            assert await _session(proxy.address, [b"hi"]) == b""  # dropped
            assert await _session(proxy.address, [b"hi"]) == b"hi\n"
            assert proxy.records[0].kind == "connect_refused"
            await proxy.close()
            await echo.close()

        run(main())

    def test_connect_slow_delays_the_first_exchange(self):
        async def main():
            schedule = FaultSchedule(
                specs=[FaultSpec(kind="connect_slow", exchange=0, delay_ms=40.0)]
            )
            echo, proxy = await _faulted_echo(schedule)
            started = asyncio.get_running_loop().time()
            assert await _session(proxy.address, [b"hi"]) == b"hi\n"
            assert asyncio.get_running_loop().time() - started >= 0.04
            await proxy.close()
            await echo.close()

        run(main())


class TestDeterminism:
    WORKLOAD = [b"alpha", b"bravo", b"charlie", b"delta", b"echo", b"foxtrot"]

    async def _one_run(self, schedule: FaultSchedule) -> tuple[bytes, list]:
        echo, proxy = await _faulted_echo(schedule)
        try:
            received = await _session(proxy.address, self.WORKLOAD)
            return received, [record.as_tuple() for record in proxy.records]
        finally:
            await proxy.close()
            await echo.close()

    def test_same_seed_same_bytes_same_fault_sequence(self):
        async def main():
            # Connection-preserving kinds keep the whole workload flowing,
            # so the full byte stream can be compared run against run.
            make = lambda: FaultSchedule.random(  # noqa: E731
                seed=1234,
                instances=1,
                exchanges=len(self.WORKLOAD),
                kinds={"stall", "corrupt_bytes", "duplicate_response",
                       "truncate_response"},
                rate=0.6,
                delay_choices=(10.0,),
            )
            assert make() == make()  # schedule generation is reproducible
            first = await self._one_run(make())
            second = await self._one_run(make())
            assert first == second  # byte-identical stream + fault audit trail

        run(main())

    def test_handcrafted_schedule_is_reproducible(self):
        async def main():
            def make() -> FaultSchedule:
                return FaultSchedule(
                    specs=[
                        FaultSpec(kind="corrupt_bytes", exchange=0, offset=1),
                        FaultSpec(kind="duplicate_response", exchange=1),
                        FaultSpec(kind="truncate_response", exchange=2, offset=3),
                        FaultSpec(kind="close_mid_response", exchange=5, offset=2),
                    ]
                )

            first = await self._one_run(make())
            second = await self._one_run(make())
            assert first == second
            # The audit trail is the exact, ordered fault sequence.
            assert [entry[0] for entry in first[1]] == [
                "corrupt_bytes",
                "duplicate_response",
                "truncate_response",
                "close_mid_response",
            ]

        run(main())

    def test_injected_faults_are_counted_in_the_registry(self):
        async def main():
            observer = Observer()
            schedule = FaultSchedule(
                specs=[FaultSpec(kind="duplicate_response", exchange=0)]
            )
            echo = await EchoServer().start()
            proxy = await FaultProxy(
                echo.address, schedule, observer=observer
            ).start()
            await _session(proxy.address, [b"x"])
            assert "rddr_faults_injected_total" in observer.metrics_text()
            await proxy.close()
            await echo.close()

        run(main())
