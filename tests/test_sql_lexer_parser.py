"""Tests for the SQL lexer and parser."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.errors import SqlSyntaxError
from repro.sqlengine.lexer import tokenize
from repro.sqlengine.parser import parse_expression, parse_sql, parse_statement


class TestLexer:
    def test_keywords_uppercased(self):
        tokens = tokenize("select FROM Where")
        assert [t.kind for t in tokens[:3]] == ["keyword"] * 3
        assert [t.value for t in tokens[:3]] == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_lowercased(self):
        tokens = tokenize("MyTable my_col")
        assert [t.value for t in tokens[:2]] == ["mytable", "my_col"]

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].kind == "string"
        assert tokens[0].value == "it's"

    def test_dollar_quoted_string(self):
        tokens = tokenize("$$BEGIN RETURN 1; END$$")
        assert tokens[0].kind == "string"
        assert "RETURN 1" in tokens[0].value

    def test_numbers(self):
        tokens = tokenize("42 3.14 1e6 2.5E-3")
        assert [t.kind for t in tokens[:4]] == ["number"] * 4

    def test_params(self):
        tokens = tokenize("$1 $22")
        assert [(t.kind, t.value) for t in tokens[:2]] == [("param", "1"), ("param", "22")]

    def test_custom_operator_lexes_greedily(self):
        tokens = tokenize("a >>> b <<< c")
        operators = [t.value for t in tokens if t.kind == "operator"]
        assert operators == [">>>", "<<<"]

    def test_comments_skipped(self):
        tokens = tokenize("SELECT -- inline comment\n 1 /* block */ ;")
        kinds = [t.kind for t in tokens]
        assert "number" in kinds

    def test_quoted_identifier(self):
        tokens = tokenize('"MixedCase"')
        assert tokens[0] == tokens[0].__class__("ident", "MixedCase", 0)

    def test_unterminated_string_rejected(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_double_colon_cast_token(self):
        tokens = tokenize("x::int")
        assert any(t.kind == "operator" and t.value == "::" for t in tokens)


class TestSelectParsing:
    def test_simple_select(self):
        stmt = parse_statement("SELECT a, b FROM t WHERE a > 1")
        assert isinstance(stmt, ast.Select)
        assert len(stmt.items) == 2
        assert stmt.tables[0].name == "t"
        assert isinstance(stmt.where, ast.Binary)

    def test_star(self):
        stmt = parse_statement("SELECT * FROM t")
        assert isinstance(stmt.items[0].expr, ast.Star)

    def test_qualified_star(self):
        stmt = parse_statement("SELECT t.* FROM t")
        assert stmt.items[0].expr == ast.Star(table="t")

    def test_aliases(self):
        stmt = parse_statement("SELECT a AS x, b y FROM t AS u")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.tables[0].alias == "u"

    def test_group_by_having_order_limit(self):
        stmt = parse_statement(
            "SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 1 "
            "ORDER BY 2 DESC, a ASC LIMIT 5 OFFSET 2"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].ascending is False
        assert stmt.order_by[1].ascending is True
        assert stmt.limit == 5
        assert stmt.offset == 2

    def test_joins(self):
        stmt = parse_statement(
            "SELECT * FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.id = c.id"
        )
        assert stmt.tables[1].join_type == "inner"
        assert stmt.tables[2].join_type == "left"
        assert stmt.tables[1].on is not None

    def test_comma_join(self):
        stmt = parse_statement("SELECT * FROM a, b, c")
        assert len(stmt.tables) == 3
        assert all(t.join_type == "cross" for t in stmt.tables)

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").distinct

    def test_select_without_from(self):
        stmt = parse_statement("SELECT 1 + 2")
        assert stmt.tables == ()


class TestExpressionParsing:
    def test_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, ast.Binary)
        assert expr.op == "+"
        assert expr.right == ast.Binary("*", ast.Literal(2), ast.Literal(3))

    def test_and_or_precedence(self):
        expr = parse_expression("a OR b AND c")
        assert expr.op == "OR"

    def test_not(self):
        expr = parse_expression("NOT a = 1")
        assert isinstance(expr, ast.Unary)
        assert expr.op == "NOT"

    def test_in_list(self):
        expr = parse_expression("x IN (1, 2, 3)")
        assert isinstance(expr, ast.InList)
        assert len(expr.items) == 3

    def test_not_in(self):
        expr = parse_expression("x NOT IN (1)")
        assert isinstance(expr, ast.InList)
        assert expr.negated

    def test_between(self):
        expr = parse_expression("x BETWEEN 1 AND 10")
        assert isinstance(expr, ast.Between)

    def test_not_between(self):
        expr = parse_expression("x NOT BETWEEN 1 AND 10")
        assert expr.negated

    def test_like_and_not_like(self):
        assert parse_expression("x LIKE 'a%'").op == "LIKE"
        negated = parse_expression("x NOT LIKE 'a%'")
        assert isinstance(negated, ast.Unary) and negated.op == "NOT"

    def test_is_null(self):
        assert isinstance(parse_expression("x IS NULL"), ast.IsNull)
        assert parse_expression("x IS NOT NULL").negated

    def test_case_when(self):
        expr = parse_expression("CASE WHEN a = 1 THEN 'one' ELSE 'other' END")
        assert isinstance(expr, ast.CaseWhen)
        assert expr.default == ast.Literal("other")

    def test_cast_postfix_and_function(self):
        assert parse_expression("x::int") == ast.Cast(ast.Column("x"), "integer")
        assert parse_expression("CAST(x AS text)") == ast.Cast(ast.Column("x"), "text")

    def test_date_and_interval_literals(self):
        import datetime

        expr = parse_expression("DATE '2020-01-02'")
        assert expr == ast.Literal(datetime.date(2020, 1, 2))
        interval = parse_expression("INTERVAL '3 month'")
        assert isinstance(interval, ast.IntervalLiteral)
        assert interval.interval.months == 3

    def test_extract_and_substring(self):
        assert parse_expression("EXTRACT(year FROM d)").what == "year"
        sub = parse_expression("SUBSTRING(s FROM 2 FOR 3)")
        assert isinstance(sub, ast.Substring)

    def test_custom_operator(self):
        expr = parse_expression("a >>> 0")
        assert expr.op == ">>>"

    def test_function_calls(self):
        assert parse_expression("count(*)").star
        call = parse_expression("count(DISTINCT x)")
        assert call.distinct
        assert parse_expression("coalesce(a, b, 0)").name == "coalesce"

    def test_qualified_column(self):
        assert parse_expression("t.col") == ast.Column(name="col", table="t")


class TestOtherStatements:
    def test_insert(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(stmt, ast.Insert)
        assert stmt.columns == ("a", "b")
        assert len(stmt.rows) == 2

    def test_update(self):
        stmt = parse_statement("UPDATE t SET a = 1, b = b + 1 WHERE id = 2")
        assert isinstance(stmt, ast.Update)
        assert len(stmt.assignments) == 2

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a IS NULL")
        assert isinstance(stmt, ast.Delete)

    def test_create_table(self):
        stmt = parse_statement(
            "CREATE TABLE t (id integer PRIMARY KEY, name varchar(32) NOT NULL, "
            "score double precision)"
        )
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.columns[0].primary_key
        assert stmt.columns[1].not_null
        assert stmt.columns[2].type_name == "double precision"

    def test_create_table_if_not_exists(self):
        stmt = parse_statement("CREATE TABLE IF NOT EXISTS t (a int)")
        assert stmt.if_not_exists

    def test_create_function(self):
        stmt = parse_statement(
            "CREATE FUNCTION f(integer, integer) RETURNS boolean "
            "AS $$BEGIN RETURN $1 > $2; END$$ LANGUAGE plpgsql immutable"
        )
        assert isinstance(stmt, ast.CreateFunction)
        assert stmt.arg_types == ("integer", "integer")
        assert stmt.volatility == "immutable"

    def test_create_operator(self):
        stmt = parse_statement(
            "CREATE OPERATOR >>> (procedure=f, leftarg=integer, "
            "rightarg=integer, restrict=scalargtsel)"
        )
        assert isinstance(stmt, ast.CreateOperator)
        assert stmt.name == ">>>"
        assert stmt.options["procedure"] == "f"
        assert stmt.options["restrict"] == "scalargtsel"

    def test_set_and_show(self):
        stmt = parse_statement("SET client_min_messages TO 'notice'")
        assert isinstance(stmt, ast.SetStatement)
        assert stmt.name == "client_min_messages"
        stmt = parse_statement("SHOW server_version")
        assert isinstance(stmt, ast.ShowStatement)

    def test_explain(self):
        stmt = parse_statement("EXPLAIN (COSTS OFF) SELECT * FROM t")
        assert isinstance(stmt, ast.Explain)
        assert not stmt.costs
        assert parse_statement("EXPLAIN SELECT 1").costs

    def test_transactions(self):
        for kind in ("BEGIN", "COMMIT", "ROLLBACK"):
            stmt = parse_statement(kind)
            assert isinstance(stmt, ast.Transaction)
            assert stmt.kind == kind.lower()

    def test_grant_policy_rls(self):
        assert isinstance(parse_statement("GRANT SELECT ON t TO bob"), ast.Grant)
        stmt = parse_statement("CREATE POLICY p ON t USING (a < 10)")
        assert isinstance(stmt, ast.CreatePolicy)
        stmt = parse_statement("ALTER TABLE t ENABLE ROW LEVEL SECURITY")
        assert isinstance(stmt, ast.AlterTableRowSecurity)

    def test_multi_statement_script(self):
        statements = parse_sql("SELECT 1; SELECT 2;; SELECT 3")
        assert len(statements) == 3

    def test_syntax_error(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT FROM WHERE")

    def test_trailing_garbage_in_expression(self):
        with pytest.raises(SqlSyntaxError):
            parse_expression("1 + 2 extra garbage (")


@given(st.integers(min_value=-10**6, max_value=10**6))
def test_property_integer_literals_round_trip(n):
    expr = parse_expression(str(n))
    if n < 0:
        assert isinstance(expr, ast.Unary)
    else:
        assert expr == ast.Literal(n)


@given(st.text(alphabet=st.characters(blacklist_characters="\x00", codec="utf-8"), max_size=40))
def test_property_string_literals_round_trip(text):
    escaped = text.replace("'", "''")
    expr = parse_expression(f"'{escaped}'")
    assert expr == ast.Literal(text)
