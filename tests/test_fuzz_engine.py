"""Unit battery for the fuzzing engine's non-network pieces plus one
small end-to-end determinism check.

The mutator/framing properties live in ``test_fuzz_mutators.py`` and the
identical-instance gate in ``test_fuzz_smoke.py``; this file covers the
corpus format, the trace-classifying oracle, dedup, and the claim the
acceptance bar leans on: same arguments → byte-identical corpus output.
"""

from __future__ import annotations

import json

import pytest

from repro.fuzz.corpus import FORMAT, Reproducer, load_corpus
from repro.fuzz.engine import CampaignConfig, run_campaign
from repro.fuzz.oracle import (
    DENOISED,
    DIVERGENT,
    ERROR,
    MATCH,
    ExchangeOutcome,
    classify,
    is_finding,
)
from repro.fuzz.triage import Deduper
from tests.helpers import run


def _trace(verdict, *, signature=None, cluster=None, masked=0, variance_masked=0):
    spans = {"attrs": {}, "children": []}
    if signature is not None:
        spans["attrs"]["diff_signature"] = signature
    if cluster is not None:
        spans["attrs"]["diff_cluster"] = cluster
    denoise_attrs = {}
    if masked:
        denoise_attrs["masked_tokens"] = masked
    if variance_masked:
        denoise_attrs["variance_masked_tokens"] = variance_masked
    if denoise_attrs:
        spans["children"].append({"name": "denoise", "attrs": denoise_attrs})
    return {"verdict": verdict, "reason": None, "spans": spans}


class TestOracle:
    def test_unanimous_is_match(self):
        assert classify(_trace("unanimous")).fuzz_verdict == MATCH

    def test_unanimous_with_noise_masking_is_denoised(self):
        outcome = classify(_trace("unanimous", masked=3))
        assert outcome.fuzz_verdict == DENOISED
        assert outcome.masked_tokens == 3

    def test_unanimous_with_variance_rewrites_is_denoised(self):
        # Variance rules (vendor banners and such) rewrite tokens rather
        # than masking them via a learned filter pair; both count as
        # "the comparison only passed because masking did work".
        outcome = classify(_trace("unanimous", masked=1, variance_masked=2))
        assert outcome.fuzz_verdict == DENOISED
        assert outcome.masked_tokens == 3

    def test_divergent_carries_signature(self):
        outcome = classify(_trace("divergent", signature="deadbeefcafef00d"))
        assert outcome.fuzz_verdict == DIVERGENT
        assert outcome.signature == "deadbeefcafef00d"

    def test_divergent_carries_cluster(self):
        outcome = classify(
            _trace("divergent", signature="deadbeefcafef00d", cluster="f00dd00d")
        )
        assert outcome.cluster == "f00dd00d"
        assert classify(_trace("divergent", signature="aa")).cluster is None

    @pytest.mark.parametrize(
        "verdict", ["timeout", "instance_error", "shed", "client_closed"]
    )
    def test_non_comparable_verdicts_are_errors(self, verdict):
        assert classify(_trace(verdict)).fuzz_verdict == ERROR

    def test_divergence_is_the_finding_in_both_modes(self):
        finding = classify(_trace("divergent", signature="aa"))
        boring = classify(_trace("unanimous"))
        for mode in ("identical", "diverse"):
            assert is_finding(finding, mode)
            assert not is_finding(boring, mode)


class TestDeduper:
    def _outcome(self, signature=None, reason=None, cluster=None):
        return ExchangeOutcome(
            verdict="divergent",
            reason=reason,
            fuzz_verdict=DIVERGENT,
            signature=signature,
            cluster=cluster,
        )

    def test_first_occurrence_is_novel(self):
        deduper = Deduper()
        assert deduper.novel(self._outcome(signature="aa"))
        assert not deduper.novel(self._outcome(signature="aa"))
        assert deduper.novel(self._outcome(signature="bb"))
        assert deduper.signatures == ["aa", "bb"]
        assert deduper.duplicates == 1

    def test_signatureless_findings_dedup_by_reason(self):
        deduper = Deduper()
        assert deduper.novel(self._outcome(reason="token 3 differs"))
        assert not deduper.novel(self._outcome(reason="token 3 differs"))
        assert deduper.novel(self._outcome(reason="token counts differ"))

    def test_clusters_collapse_positional_signatures(self):
        # Three distinct positional signatures from the same underlying
        # divergence (e.g. an ASLR leak at three token offsets): each is
        # novel — corpus files stay per-signature reproducible — but the
        # human-facing finding count is one cluster.
        deduper = Deduper()
        for signature in ("aa", "bb", "cc"):
            assert deduper.novel(self._outcome(signature=signature, cluster="XX"))
        assert deduper.signatures == ["aa", "bb", "cc"]
        assert deduper.clusters == ["XX"]

    def test_clusterless_findings_cluster_by_signature(self):
        deduper = Deduper()
        deduper.novel(self._outcome(signature="aa"))
        deduper.novel(self._outcome(signature="bb"))
        assert deduper.clusters == ["aa", "bb"]


class TestCorpusFormat:
    def _reproducer(self, **overrides):
        fields = dict(
            target="kvstore",
            mode="diverse",
            verdict=DIVERGENT,
            requests=[b"*1\r\n$4\r\nPING\r\n"],
            signature="0123456789abcdef",
            reason="token 1 differs across instances",
            seed=7,
            comment="unit-test fixture",
        )
        fields.update(overrides)
        return Reproducer(**fields)

    def test_roundtrip(self, tmp_path):
        original = self._reproducer()
        path = original.save(tmp_path)
        assert path.name == "kvstore-diverse-0123456789abcdef.json"
        loaded = Reproducer.load(path)
        assert loaded == original

    def test_slug_falls_back_to_request_digest(self):
        exemplar = self._reproducer(verdict=MATCH, signature=None)
        assert len(exemplar.slug) == 16
        # Content-derived: same requests → same slug, more requests → new slug.
        twin = self._reproducer(verdict=MATCH, signature=None)
        assert twin.slug == exemplar.slug
        grown = self._reproducer(
            verdict=MATCH, signature=None, requests=exemplar.requests * 2
        )
        assert grown.slug != exemplar.slug

    def test_unknown_format_is_rejected(self, tmp_path):
        path = self._reproducer().save(tmp_path)
        data = json.loads(path.read_text())
        data["format"] = FORMAT + 1
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="unsupported corpus format"):
            Reproducer.load(path)

    def test_load_corpus_sorted_and_missing_dir_empty(self, tmp_path):
        assert load_corpus(tmp_path / "missing") == []
        self._reproducer(signature="bbbb").save(tmp_path)
        self._reproducer(signature="aaaa").save(tmp_path)
        names = [path.name for path, _ in load_corpus(tmp_path)]
        assert names == sorted(names)


class TestCampaignConfig:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown oracle mode"):
            CampaignConfig(target="echo", mode="chaotic")

    def test_rejects_empty_budget(self):
        with pytest.raises(ValueError, match="budget"):
            CampaignConfig(target="echo", budget=0)


class TestCampaignDeterminism:
    def test_same_arguments_emit_identical_corpus(self, tmp_path):
        """The acceptance property at small scale: two runs of the same
        (target, mode, seed, budget) write byte-identical corpus files
        and report identical signature sets."""
        reports = []
        for name in ("first", "second"):
            directory = tmp_path / name
            reports.append(
                run(
                    run_campaign(
                        CampaignConfig(
                            target="kvstore",
                            mode="diverse",
                            seed=7,
                            budget=120,
                            corpus_dir=directory,
                        )
                    ),
                    timeout=180.0,
                )
            )
        first, second = reports
        assert first.signatures == second.signatures
        assert first.clusters == second.clusters
        assert 1 <= len(first.clusters) <= len(first.signatures)
        assert first.verdicts == second.verdicts
        assert first.verdicts.get("divergent", 0) >= 1, "campaign found nothing"
        assert len(first.written) >= 1
        names = lambda report: [path.name for path in report.written]  # noqa: E731
        assert names(first) == names(second)
        for path_a, path_b in zip(first.written, second.written):
            assert path_a.read_bytes() == path_b.read_bytes()
