"""Replay every reproducer in ``tests/fuzz_corpus/``.

Each corpus file is a self-contained finding minted by ``repro.fuzz``:
the target, oracle mode, request sequence, and the verdict (plus
diff-token signature for divergences) recorded when it was found.
Replaying asserts the recorded verdict still holds — a reproducer that
stops reproducing means either the divergence was fixed (delete the
file, or re-run ``python -m repro.fuzz promote`` to confirm) or the
comparison pipeline regressed.
"""

from __future__ import annotations

import pytest

from repro.fuzz.corpus import CORPUS_DIR, load_corpus
from repro.fuzz.replay import replay_reproducer
from tests.helpers import run

_CORPUS = load_corpus()


def test_corpus_is_seeded():
    """The seed corpus ships with the repo — at least five findings from
    the development campaigns (see docs/fuzzing.md)."""
    assert CORPUS_DIR.is_dir()
    assert len(_CORPUS) >= 5


@pytest.mark.parametrize(
    "path, reproducer",
    _CORPUS,
    ids=[path.stem for path, _ in _CORPUS],
)
def test_reproducer_replays(path, reproducer):
    result = run(replay_reproducer(reproducer), timeout=120.0)
    assert result.ok, f"{path.name}: {result.detail}"
