"""Property-style tests for the voting and diffing primitives.

Random populations of masked token streams drive two invariants: the
voter finds a strict majority exactly when one exists, and the diff
declares divergence exactly when an unmasked difference exists.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.diff import TOKEN_WILDCARD, NoiseMask, diff_tokens
from repro.core.incoming import _majority_indices

#: A tiny alphabet keeps collisions (and thus majorities) common.
TOKENS = [b"a", b"b", b"c"]

masked_stream = st.lists(st.sampled_from(TOKENS), min_size=0, max_size=4).map(tuple)
populations = st.lists(masked_stream, min_size=2, max_size=7)


class TestMajorityIndices:
    @given(populations)
    @settings(max_examples=200, deadline=None)
    def test_strict_majority_found_iff_one_exists(self, population):
        counts = Counter(population)
        winners = [
            stream for stream, count in counts.items()
            if count * 2 > len(population)
        ]
        result = _majority_indices(list(population))
        if winners:
            (winner,) = winners  # at most one strict majority can exist
            assert result == [
                position
                for position, stream in enumerate(population)
                if stream == winner
            ]
        else:
            assert result is None

    @given(masked_stream, st.integers(min_value=2, max_value=7))
    @settings(max_examples=50, deadline=None)
    def test_unanimous_population_is_its_own_majority(self, stream, n):
        assert _majority_indices([stream] * n) == list(range(n))

    def test_tie_is_not_a_majority(self):
        assert _majority_indices([(b"a",), (b"a",), (b"b",), (b"b",)]) is None


#: Equal-length token streams plus a random whole-token wildcard mask.
@st.composite
def streams_and_mask(draw):
    length = draw(st.integers(min_value=1, max_value=5))
    count = draw(st.integers(min_value=2, max_value=5))
    streams = [
        [draw(st.sampled_from(TOKENS)) for _ in range(length)]
        for _ in range(count)
    ]
    wildcards = draw(
        st.sets(st.integers(min_value=0, max_value=length - 1), max_size=length)
    )
    mask = NoiseMask(token_ranges={index: TOKEN_WILDCARD for index in wildcards})
    return streams, mask, wildcards


class TestDiffTokens:
    @given(streams_and_mask())
    @settings(max_examples=200, deadline=None)
    def test_divergent_iff_unmasked_difference_exists(self, case):
        streams, mask, wildcards = case
        expected = any(
            index not in wildcards
            and len({stream[index] for stream in streams}) > 1
            for index in range(len(streams[0]))
        )
        result = diff_tokens(streams, mask)
        assert result.divergent == expected
        if result.divergent:
            first = result.differences[0]
            assert first.token_index not in wildcards
            assert len(set(first.values)) > 1

    @given(populations.filter(lambda p: all(len(s) == len(p[0]) for s in p)))
    @settings(max_examples=100, deadline=None)
    def test_no_mask_divergent_iff_streams_differ(self, population):
        streams = [list(stream) for stream in population]
        result = diff_tokens(streams)
        assert result.divergent == (len(set(population)) > 1)

    @given(st.lists(st.sampled_from(TOKENS), min_size=1, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_token_count_mismatch_diverges_outside_masked_tail(self, stream):
        longer = stream + [b"a"]
        assert diff_tokens([stream, longer]).divergent
        # ...unless the tail beyond the shorter stream is masked noise.
        mask = NoiseMask(tail_from=len(stream))
        assert not diff_tokens([stream, longer], mask).divergent
