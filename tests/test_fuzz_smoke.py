"""Identical-instance smoke fuzz: the denoise regression gate.

Two byte-identical instances behind RDDR must never produce a divergent
verdict — there is nothing to diverge *about*.  Any divergence (or
framing error) here is a bug in the comparison pipeline itself: a
denoise gap, an ephemeral-state leak, or a protocol-framing desync.
500 seeded mutants per protocol keep the gate deterministic and cheap.

This gate has caught a real bug already: the HTTP server used to send
response bodies to HEAD requests, desyncing compliant keep-alive
readers (see ``test_web_server_client.py``).
"""

from __future__ import annotations

import pytest

from repro.fuzz.engine import CampaignConfig, run_campaign
from repro.fuzz.targets import IDENTICAL, TARGETS
from tests.helpers import run

SMOKE_BUDGET = 500


@pytest.mark.parametrize("target", sorted(TARGETS))
def test_identical_instances_never_diverge(target):
    report = run(
        run_campaign(
            CampaignConfig(
                target=target,
                mode=IDENTICAL,
                seed=11,
                budget=SMOKE_BUDGET,
                minimize=False,
            )
        ),
        timeout=240.0,
    )
    assert report.executed == SMOKE_BUDGET
    assert report.verdicts.get("divergent", 0) == 0, (
        f"identical instances diverged: {report.signatures} "
        f"(a comparison-pipeline bug, not an application difference)"
    )
    # Framing errors mean a mutant desynced the client or proxy — the
    # HEAD-response bug was exactly this shape.
    assert report.verdicts.get("error", 0) == 0, report.verdicts
