"""Unit tests for the repro.recovery building blocks: circuit breaker,
admission controller, instance directory, and health monitor."""

from __future__ import annotations

import asyncio

import pytest

from repro.apps.echo import EchoServer
from repro.core import events as ev
from repro.core.config import RddrConfig
from repro.core.outgoing import OutgoingRequestProxy
from repro.recovery import (
    MODE_OUT,
    MODE_SHADOW,
    AdmissionController,
    CircuitBreaker,
    HealthMonitor,
    InstanceDirectory,
)
from repro.recovery.breaker import CLOSED, HALF_OPEN, OPEN
from repro.transport.retry import CircuitOpenError, open_connection_retry
from tests.helpers import run


class _Clock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestCircuitBreaker:
    def test_opens_after_threshold_and_half_open_trial_closes(self):
        clock = _Clock()
        transitions = []
        breaker = CircuitBreaker(
            failure_threshold=3,
            reset_timeout=10.0,
            clock=clock,
            on_transition=lambda old, new: transitions.append((old, new)),
        )
        assert breaker.state == CLOSED
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()  # still within the reset timeout
        clock.now = 10.0
        assert breaker.allow()  # the half-open trial
        assert breaker.state == HALF_OPEN
        assert not breaker.allow()  # only one trial at a time
        breaker.record_success()
        assert breaker.state == CLOSED
        assert transitions == [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
        ]

    def test_half_open_failure_reopens_and_resets_the_timer(self):
        clock = _Clock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.now = 5.0
        assert breaker.allow()
        breaker.record_failure()  # the trial failed
        assert breaker.state == OPEN
        clock.now = 9.9  # the timer restarted at t=5
        assert not breaker.allow()
        clock.now = 10.0
        assert breaker.allow()

    def test_success_resets_the_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=5.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=-1.0)

    def test_half_open_admits_exactly_one_concurrent_probe(self):
        """Regression: two simultaneous dials racing into the half-open
        window must admit exactly one trial — the loser fails fast with
        CircuitOpenError and never touches the socket."""

        async def main():
            connections: list[object] = []

            async def handler(reader, writer):
                connections.append(writer.get_extra_info("peername"))
                writer.close()

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                clock = _Clock()
                breaker = CircuitBreaker(
                    failure_threshold=1, reset_timeout=5.0, clock=clock
                )
                breaker.record_failure()
                assert breaker.state == OPEN
                clock.now = 5.0  # the reset window is open for one trial
                results = await asyncio.gather(
                    open_connection_retry(
                        host, port, breaker=breaker, attempts=1
                    ),
                    open_connection_retry(
                        host, port, breaker=breaker, attempts=1
                    ),
                    return_exceptions=True,
                )
                rejected = [
                    r for r in results if isinstance(r, CircuitOpenError)
                ]
                admitted = [r for r in results if not isinstance(r, Exception)]
                assert len(admitted) == 1, results
                assert len(rejected) == 1, results
                await asyncio.sleep(0.05)
                assert len(connections) == 1  # the loser made no socket work
                _, writer = admitted[0]
                writer.close()
                # the successful trial closed the circuit for everyone
                assert breaker.state == CLOSED
                assert breaker.allow()
            finally:
                server.close()
                await server.wait_closed()

        run(main())


class TestRetryBreakerIntegration:
    def test_open_circuit_fails_fast_without_dialing(self):
        async def main():
            clock = _Clock()
            breaker = CircuitBreaker(failure_threshold=1, reset_timeout=30.0, clock=clock)
            with pytest.raises(ConnectionError):
                await open_connection_retry(
                    "127.0.0.1", 1, attempts=1, breaker=breaker
                )
            assert breaker.state == OPEN
            with pytest.raises(CircuitOpenError):
                await open_connection_retry(
                    "127.0.0.1", 1, attempts=1, breaker=breaker
                )

        run(main())

    def test_successful_trial_closes_the_circuit(self):
        async def main():
            clock = _Clock()
            breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0, clock=clock)
            breaker.record_failure()
            clock.now = 1.0
            echo = await EchoServer().start()
            try:
                reader, writer = await open_connection_retry(
                    *echo.address, attempts=1, breaker=breaker
                )
                assert breaker.state == CLOSED
                writer.close()
            finally:
                await echo.close()

        run(main())


class TestAdmissionController:
    def test_disabled_admits_everything(self):
        async def main():
            admission = AdmissionController(None)
            assert await admission.acquire()
            admission.release()  # no-op when disabled
            assert admission.active == 0

        run(main())

    def test_sheds_beyond_capacity_and_queue(self):
        async def main():
            admission = AdmissionController(1, queue_limit=0)
            assert await admission.acquire()
            assert not await admission.acquire()  # queue full (zero) -> shed
            admission.release()
            assert await admission.acquire()
            admission.release()

        run(main())

    def test_fifo_queue_hands_slots_over(self):
        async def main():
            admission = AdmissionController(1, queue_limit=2)
            assert await admission.acquire()
            order = []

            async def waiter(tag):
                assert await admission.acquire()
                order.append(tag)

            first = asyncio.ensure_future(waiter("first"))
            await asyncio.sleep(0)
            second = asyncio.ensure_future(waiter("second"))
            await asyncio.sleep(0)
            assert admission.waiting == 2
            assert not await admission.acquire()  # third waiter is shed
            admission.release()
            await first
            admission.release()
            await second
            assert order == ["first", "second"]
            assert admission.active == 1
            admission.release()
            assert admission.active == 0

        run(main())

    def test_cancelled_waiter_does_not_lose_the_slot(self):
        async def main():
            admission = AdmissionController(1, queue_limit=1)
            assert await admission.acquire()
            waiter = asyncio.ensure_future(admission.acquire())
            await asyncio.sleep(0)
            waiter.cancel()
            admission.release()
            with pytest.raises(asyncio.CancelledError):
                await waiter
            # The slot released while the waiter was cancelling must be
            # available again.
            assert await admission.acquire()
            admission.release()
            assert admission.active == 0

        run(main())

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(0)
        with pytest.raises(ValueError):
            AdmissionController(1, queue_limit=-1)
        with pytest.raises(RuntimeError):
            AdmissionController(1).release()


class TestInstanceDirectory:
    def test_versioned_mutations_and_snapshots(self):
        directory = InstanceDirectory([("h", 1), ("h", 2)])
        version, entries = directory.snapshot()
        assert version == 0 and [e.address for e in entries] == [("h", 1), ("h", 2)]
        directory.set_address(0, ("h", 9))
        assert directory.version == 1
        directory.set_address(0, ("h", 9))  # no-op: same address
        assert directory.version == 1
        directory.set_mode(1, MODE_SHADOW)
        assert directory.version == 2
        directory.set_mode(1, MODE_SHADOW)
        assert directory.version == 2
        # The earlier snapshot is unaffected (a consistent view).
        assert entries[0].address == ("h", 1)
        with pytest.raises(ValueError):
            directory.set_mode(0, "bogus")

    def test_reports_fan_out_to_listeners(self):
        directory = InstanceDirectory([("h", 1), ("h", 2)])
        failures, shadows = [], []
        directory.on_failure(lambda i, r, f: failures.append((i, r, f)))
        directory.on_shadow(lambda i, c: shadows.append((i, c)))
        directory.report_failure(1, "dead", fatal=True)
        directory.report_shadow(0, True)
        assert failures == [(1, "dead", True)]
        assert shadows == [(0, True)]


class TestHealthMonitor:
    def test_probe_distinguishes_live_from_dead(self):
        async def main():
            echo = await EchoServer().start()
            monitor = HealthMonitor(lambda: [], _noop_report)
            try:
                assert await monitor.probe_once(echo.address)
            finally:
                await echo.close()
            assert not await monitor.probe_once(echo.address)

        run(main())

    def test_custom_probe_drives_the_verdict(self):
        async def main():
            echo = await EchoServer().start()

            async def probe(reader, writer):
                writer.write(b"ping\n")
                await writer.drain()
                return await reader.readline() == b"ping\n"

            monitor = HealthMonitor(lambda: [], _noop_report, probe=probe)
            try:
                assert await monitor.probe_once(echo.address)
            finally:
                await echo.close()

        run(main())

    def test_loop_reports_failures_until_closed(self):
        async def main():
            reports = []

            async def report(index, ok):
                reports.append((index, ok))

            monitor = HealthMonitor(
                lambda: [(0, ("127.0.0.1", 1))],
                report,
                period=0.01,
                timeout=0.1,
            )
            monitor.start()
            with pytest.raises(RuntimeError):
                monitor.start()
            while len(reports) < 2:
                await asyncio.sleep(0.01)
            await monitor.close()
            assert all(entry == (0, False) for entry in reports)
            await monitor.close()  # idempotent

        run(main())

    def test_validation(self):
        with pytest.raises(ValueError):
            HealthMonitor(lambda: [], _noop_report, period=0.0)
        with pytest.raises(ValueError):
            HealthMonitor(lambda: [], _noop_report, timeout=0.0)


async def _noop_report(index: int, ok: bool) -> None:
    return None


class TestOutgoingProxyBreaker:
    def test_config_constructs_breaker_and_logs_transitions(self):
        proxy = OutgoingRequestProxy(
            ("127.0.0.1", 1),
            2,
            "tcp",
            RddrConfig(
                protocol="tcp",
                circuit_breaker=True,
                breaker_failure_threshold=2,
                breaker_reset_timeout=9.0,
            ),
        )
        assert proxy.breaker is not None
        assert proxy.breaker.failure_threshold == 2
        proxy.breaker.record_failure()
        proxy.breaker.record_failure()
        circuit_events = proxy.events.events(ev.CIRCUIT)
        assert circuit_events and "closed -> open" in circuit_events[0].detail

    def test_breaker_off_by_default(self):
        proxy = OutgoingRequestProxy(("127.0.0.1", 1), 2, "tcp")
        assert proxy.breaker is None

    def test_group_assignment_self_aligns_after_instance_drift(self):
        # Slot-based grouping: an instance that missed dials (it was
        # dead) or dialed extra times (probe, mid-session shadow join)
        # lands in whatever group its peers are currently forming — no
        # counter realignment needed on respawn.
        proxy = OutgoingRequestProxy(("127.0.0.1", 1), 3, "tcp")
        sentinel = object()

        group_a, index_a = proxy._assign_group(0)
        group_a.readers[0] = sentinel
        group_b, index_b = proxy._assign_group(0)  # same instance again
        assert index_a == 0 and index_b == 1
        assert group_b is not group_a

        # Peers fill the earliest still-forming slots first.
        group, index = proxy._assign_group(1)
        assert group is group_a and index == 0
        group.readers[1] = sentinel

        # A completed group never takes another member.
        group_a.complete.set()
        group, index = proxy._assign_group(2)
        assert group is group_b and index == 1

        # reset_instance is an explicit no-op under slot assignment.
        proxy.reset_instance(1)
        group, index = proxy._assign_group(1)
        assert group is group_b and index == 1


class TestDirectoryModes:
    def test_out_mode_round_trip(self):
        directory = InstanceDirectory([("h", 1), ("h", 2), ("h", 3)])
        directory.set_mode(2, MODE_OUT)
        _, entries = directory.snapshot()
        assert [e.mode for e in entries] == ["live", "live", "out"]
        assert len(directory) == 3
