"""Tests for the TPC-H / pgbench workloads and the resource model."""

from __future__ import annotations

import asyncio

import pytest

from repro.pgwire import serve_database
from repro.sqlengine import Database
from repro.workloads import (
    SimulatedHost,
    WorkSampler,
    load_pgbench,
    load_tpch,
    query_set,
    row_counts,
    run_pg_clients,
    select_transaction,
    transaction_stream,
)
from repro.workloads.pgbench import ACCOUNTS_PER_SCALE
from repro.workloads.resources import CONNECTION_BYTES
from tests.helpers import run


class TestTpch:
    @pytest.fixture(scope="class")
    def db(self) -> Database:
        database = Database()
        load_tpch(database, scale_factor=0.001, seed=3)
        return database

    def test_row_counts_scale(self):
        counts = row_counts(0.001)
        assert counts["lineitem"] == 6000
        assert counts["nation"] == 25  # fixed tables do not scale
        assert counts["region"] == 5

    def test_all_tables_loaded(self, db):
        for table, expected in row_counts(0.001).items():
            assert len(db.catalog.table(table).rows) == expected

    def test_loading_is_deterministic(self):
        a, b = Database(), Database()
        load_tpch(a, scale_factor=0.0005, seed=9)
        load_tpch(b, scale_factor=0.0005, seed=9)
        assert a.catalog.table("lineitem").rows == b.catalog.table("lineitem").rows

    def test_query_set_has_21_entries(self):
        queries = query_set()
        assert len(queries) == 21
        assert len({name for name, _ in queries}) == 21

    def test_every_query_executes(self, db):
        for name, sql in query_set():
            result = db.query(sql)
            assert result.command_tag.startswith("SELECT"), name

    def test_q1_aggregates_look_sane(self, db):
        from repro.workloads.tpch import q1

        result = db.query(q1())
        # <= 6 groups of (returnflag, linestatus); positive sums
        assert 1 <= len(result.rows) <= 6
        by_name = dict(zip(result.column_names, result.rows[0]))
        assert by_name["sum_qty"] > 0
        assert by_name["count_order"] > 0

    def test_q6_revenue_positive(self, db):
        from repro.workloads.tpch import q6

        revenue = db.query(q6()).scalar()
        assert revenue is None or revenue > 0


class TestPgbench:
    def test_loader_populates_tables(self):
        db = Database()
        counts = load_pgbench(db, scale=1)
        assert counts["pgbench_accounts"] == ACCOUNTS_PER_SCALE
        assert len(db.catalog.table("pgbench_accounts").rows) == ACCOUNTS_PER_SCALE
        assert len(db.catalog.table("pgbench_branches").rows) == 1

    def test_select_transaction_runs(self):
        db = Database()
        load_pgbench(db, scale=1)
        result = db.query(select_transaction(57))
        assert len(result.rows) == 1

    def test_transaction_stream_deterministic_and_in_range(self):
        a = transaction_stream(50, scale=2, seed=1)
        b = transaction_stream(50, scale=2, seed=1)
        assert a == b
        c = transaction_stream(50, scale=2, seed=2)
        assert a != c

    def test_client_driver_measures(self):
        async def main():
            db = Database()
            load_pgbench(db, scale=1)
            server = await serve_database(db)
            streams = [transaction_stream(20, scale=1, seed=i) for i in range(4)]
            result = await run_pg_clients(server.address, streams)
            assert result.transactions == 80
            assert result.errors == 0
            assert result.throughput_tps > 0
            assert result.mean_latency_ms > 0
            assert result.latency_percentile_ms(95) >= result.latency_percentile_ms(50)
            await server.close()

        run(main())


class TestSimulatedHost:
    def test_serial_floor_dominates_single_client(self):
        host = SimulatedHost(cores=32)
        est = host.execute(
            total_work=1_000_000,
            client_chains=[1_000_000],
            resident_bytes=10**9,
            connections=1,
        )
        # one client cannot use more than one core
        assert est.cpu_utilization == pytest.approx(1 / 32)

    def test_parallel_floor_dominates_many_clients(self):
        host = SimulatedHost(cores=4)
        est = host.execute(
            total_work=4_000_000,
            client_chains=[500_000] * 8,
            resident_bytes=0,
            connections=8,
        )
        assert est.cpu_utilization == pytest.approx(1.0)

    def test_memory_includes_connections(self):
        host = SimulatedHost()
        est = host.execute(1, [1], resident_bytes=1000, connections=3)
        assert est.peak_memory_bytes == 1000 + 3 * CONNECTION_BYTES

    def test_three_instance_ratios_have_paper_shape(self):
        """The Figure 4 shape: 3x memory always; CPU ratio 3x at one
        client, declining as clients saturate the host."""
        host = SimulatedHost(cores=32)
        per_client_work = 1_000_000

        def ratios(clients: int) -> tuple[float, float]:
            base = host.execute(
                per_client_work * clients,
                [per_client_work] * clients,
                10**9,
                clients,
            )
            rddr = host.execute(
                3 * per_client_work * clients,
                [per_client_work] * clients,
                3 * 10**9,
                clients,
            )
            return (
                rddr.cpu_utilization / base.cpu_utilization,
                rddr.peak_memory_bytes / base.peak_memory_bytes,
            )

        cpu_1, mem_1 = ratios(1)
        cpu_16, mem_16 = ratios(16)
        assert cpu_1 == pytest.approx(3.0)
        assert cpu_16 < cpu_1  # saturation closes the gap
        assert 2.5 < mem_1 < 3.5 and 2.5 < mem_16 < 3.5

    def test_work_sampler_collects_series(self):
        async def main():
            db = Database()
            load_pgbench(db, scale=1)
            server = await serve_database(db)
            sampler = WorkSampler([db], SimulatedHost(), interval_s=0.05, connections=2)
            sampler.start()
            streams = [transaction_stream(50, scale=1, seed=i) for i in range(2)]
            await run_pg_clients(server.address, streams)
            await asyncio.sleep(0.1)
            samples = await sampler.stop()
            assert len(samples) >= 2
            assert any(s.cpu_percent > 0 for s in samples)
            assert all(s.memory_bytes > 0 for s in samples)
            await server.close()

        run(main())
