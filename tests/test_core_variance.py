"""Tests for known-variance masking (paper section IV-B4)."""

from __future__ import annotations

from repro.core.diff import diff_tokens
from repro.core.variance import (
    HTTP_SERVER_HEADER_RULES,
    POSTGRES_VERSION_RULES,
    VarianceMasker,
    VarianceRule,
)


class TestVarianceRule:
    def test_rule_compiles_and_substitutes(self):
        rule = VarianceRule(pattern=r"v\d+\.\d+")
        masker = VarianceMasker([rule])
        assert masker.mask_token(b"version v1.2 here") == b"version \x00VARIANT\x00 here"

    def test_custom_replacement(self):
        rule = VarianceRule(pattern=r"\d+", replacement=b"N")
        masker = VarianceMasker([rule])
        assert masker.mask_token(b"abc123def456") == b"abcNdefN"


class TestVarianceMasker:
    def test_no_rules_is_identity(self):
        masker = VarianceMasker()
        tokens = [b"a", b"b"]
        assert masker.mask_stream(tokens) is tokens

    def test_mask_streams_applies_everywhere(self):
        masker = VarianceMasker([VarianceRule(pattern=r"\d+")])
        out = masker.mask_streams([[b"x1"], [b"x2"]])
        assert out[0] == out[1]

    def test_rules_added_incrementally(self):
        masker = VarianceMasker()
        masker.add_rule(VarianceRule(pattern=r"foo"))
        assert masker.mask_token(b"foobar") != b"foobar"

    def test_version_divergence_suppressed_end_to_end(self):
        """The section V-C2 case: diverse DB vendors differ only in their
        version banner; with the rule configured, no divergence."""
        masker = VarianceMasker(POSTGRES_VERSION_RULES)
        streams = [
            [b"PostgreSQL 10.7 on x86_64", b"row data"],
            [b"PostgreSQL 10.9 on x86_64", b"row data"],
        ]
        masked = masker.mask_streams(streams)
        assert not diff_tokens(masked).divergent

    def test_real_divergence_survives_version_rule(self):
        masker = VarianceMasker(POSTGRES_VERSION_RULES)
        streams = [
            [b"PostgreSQL 10.7", b"row data"],
            [b"PostgreSQL 10.9", b"LEAKED row"],
        ]
        masked = masker.mask_streams(streams)
        assert diff_tokens(masked).divergent

    def test_http_server_header_rule(self):
        masker = VarianceMasker(HTTP_SERVER_HEADER_RULES)
        a = masker.mask_token(b"Server: nginx/1.13.2")
        b = masker.mask_token(b"Server: HAProxy 1.5.3")
        assert a == b
