"""Tests for proxy metrics and the event log."""

from __future__ import annotations

import pytest

from repro.core.events import DIVERGENCE, EXCHANGE_OK, EventLog
from repro.core.metrics import LatencyHistogram, ProxyMetrics


class TestLatencyHistogram:
    def test_empty_percentile_is_zero(self):
        assert LatencyHistogram().percentile(99) == 0.0

    def test_single_sample(self):
        h = LatencyHistogram()
        h.observe(0.5)
        assert h.percentile(0) == 0.5
        assert h.percentile(100) == 0.5
        assert h.mean == 0.5

    def test_percentile_interpolates(self):
        h = LatencyHistogram(samples=[0.0, 1.0])
        assert h.percentile(50) == pytest.approx(0.5)

    def test_percentile_bounds_checked(self):
        h = LatencyHistogram(samples=[1.0])
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_mean_and_count(self):
        h = LatencyHistogram(samples=[1.0, 2.0, 3.0])
        assert h.mean == pytest.approx(2.0)
        assert h.count == 3


class TestProxyMetrics:
    def test_block_rate(self):
        metrics = ProxyMetrics()
        assert metrics.block_rate == 0.0
        metrics.exchanges_total = 10
        metrics.exchanges_blocked = 3
        assert metrics.block_rate == pytest.approx(0.3)


class TestEventLog:
    def test_record_and_filter(self):
        log = EventLog()
        log.record(EXCHANGE_OK, "fine", proxy="p", exchange=0)
        log.record(DIVERGENCE, "bad", proxy="p", exchange=1)
        assert len(log) == 2
        assert len(log.divergences()) == 1
        assert log.divergences()[0].detail == "bad"
        assert len(log.events(EXCHANGE_OK)) == 1

    def test_clear(self):
        log = EventLog()
        log.record(DIVERGENCE, "x")
        log.clear()
        assert len(log) == 0

    def test_timestamps_monotonic(self):
        ticks = iter(range(100))
        log = EventLog(clock=lambda: next(ticks))
        a = log.record("a", "")
        b = log.record("b", "")
        assert b.timestamp > a.timestamp

    def test_empty_log_is_falsy_but_usable(self):
        # regression guard: proxies must not replace a shared empty log
        log = EventLog()
        assert not log  # has __len__, so empty means falsy
        log.record("kind", "detail")
        assert log.events("kind")
