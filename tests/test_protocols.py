"""Tests for the protocol modules (framing + tokenization)."""

from __future__ import annotations

import asyncio
import gzip
import json

import pytest

from repro.pgwire import messages as wire
from repro.protocols import get_protocol, registry
from repro.protocols.base import ProtocolModule
from repro.web.http11 import HeaderMap, Response, serialize_response
from tests.helpers import run


def _feed(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


class TestRegistry:
    def test_known_protocols(self):
        assert set(registry.names()) >= {"tcp", "http", "json", "pgwire"}

    def test_unknown_protocol(self):
        with pytest.raises(KeyError, match="unknown protocol"):
            get_protocol("gopher")

    def test_custom_registration(self):
        @registry.register
        class FakeProtocol(ProtocolModule):
            name = "fake-proto"
            API_VERSION = "1.0"

            async def read_client_message(self, reader, state):
                return None

            async def read_server_message(self, reader, state, request):
                return b""

            def tokenize(self, message):
                return [message]

            def block_response(self, message):
                return b""

        assert isinstance(get_protocol("fake-proto"), FakeProtocol)


class TestTcpProtocol:
    def test_line_framing(self):
        async def main():
            protocol = get_protocol("tcp")
            state = protocol.new_connection_state()
            reader = _feed(b"first line\nsecond line\n")
            assert await protocol.read_client_message(reader, state) == b"first line\n"
            assert await protocol.read_client_message(reader, state) == b"second line\n"
            assert await protocol.read_client_message(reader, state) is None

        run(main())

    def test_tokenize_splits_fields(self):
        protocol = get_protocol("tcp")
        assert protocol.tokenize(b"a b c\n") == [b"a", b"b", b"c"]

    def test_block_response_is_silent_close(self):
        assert get_protocol("tcp").block_response("x") == b""


class TestJsonProtocol:
    def test_tokenize_canonicalizes_key_order(self):
        protocol = get_protocol("json")
        a = protocol.tokenize(b'{"b": 1, "a": 2}\n')
        b = protocol.tokenize(b'{"a": 2, "b": 1}\n')
        assert a == b

    def test_tokenize_whitespace_insensitive(self):
        protocol = get_protocol("json")
        assert protocol.tokenize(b'{ "k" : 1 }\n') == protocol.tokenize(b'{"k":1}\n')

    def test_per_key_tokens(self):
        protocol = get_protocol("json")
        tokens = protocol.tokenize(b'{"a": 1, "b": 2}\n')
        assert len(tokens) == 2

    def test_invalid_json_falls_back_to_raw(self):
        protocol = get_protocol("json")
        assert protocol.tokenize(b"not json\n") == [b"not json"]

    def test_block_response_is_json(self):
        body = get_protocol("json").block_response("diverged")
        payload = json.loads(body)
        assert payload["error"] == "rddr_divergence"


class TestHttpProtocol:
    def test_request_framing_tracks_methods(self):
        async def main():
            protocol = get_protocol("http")
            state = protocol.new_connection_state()
            reader = _feed(b"HEAD /x HTTP/1.1\r\nHost: h\r\n\r\n")
            message = await protocol.read_client_message(reader, state)
            assert message is not None and message.startswith(b"HEAD /x")
            # HEAD response framing: no body expected
            response_reader = _feed(b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\n")
            response = await protocol.read_server_message(response_reader, state, message)
            assert b"200" in response

        run(main())

    def test_tokenize_lines_and_headers(self):
        protocol = get_protocol("http")
        response = Response(
            status=200,
            headers=HeaderMap([("Content-Type", "text/plain")]),
            body=b"line1\nline2",
        )
        tokens = protocol.tokenize(serialize_response(response))
        assert tokens[0] == b"HTTP/1.1 200 OK"
        assert b"Content-Type: text/plain" in tokens
        assert tokens[-2:] == [b"line1", b"line2"]

    def test_tokenize_excludes_hop_headers(self):
        protocol = get_protocol("http")
        response = Response(
            status=200,
            headers=HeaderMap([("Connection", "close"), ("Date", "whenever")]),
            body=b"x",
        )
        tokens = protocol.tokenize(serialize_response(response))
        assert not any(t.lower().startswith(b"connection") for t in tokens)
        assert not any(t.lower().startswith(b"date") for t in tokens)

    def test_tokenize_decompresses_gzip(self):
        protocol = get_protocol("http")
        plain = Response(status=200, body=b"same content")
        compressed = Response(
            status=200,
            headers=HeaderMap([("Content-Encoding", "gzip")]),
            body=gzip.compress(b"same content", mtime=0),
        )
        plain_tokens = protocol.tokenize(serialize_response(plain))
        gzip_tokens = protocol.tokenize(serialize_response(compressed))
        assert plain_tokens[-1] == gzip_tokens[-1] == b"same content"

    def test_block_response_is_403_html(self):
        body = get_protocol("http").block_response("because")
        assert body.startswith(b"HTTP/1.1 403")
        assert b"RDDR intervened" in body
        assert b"because" in body


class TestPgwireProtocol:
    def test_startup_then_query_framing(self):
        async def main():
            protocol = get_protocol("pgwire")
            state = protocol.new_connection_state()
            startup = wire.StartupMessage({"user": "u"}).encode()
            query = wire.query_message("SELECT 1").encode()
            reader = _feed(startup + query)
            first = await protocol.read_client_message(reader, state)
            assert first == startup
            second = await protocol.read_client_message(reader, state)
            assert second == query

        run(main())

    def test_response_framed_to_ready_for_query(self):
        async def main():
            protocol = get_protocol("pgwire")
            state = protocol.new_connection_state()
            response = (
                wire.row_description([wire.FieldDescription("a")]).encode()
                + wire.data_row(["1"]).encode()
                + wire.command_complete("SELECT 1").encode()
                + wire.ready_for_query().encode()
            )
            reader = _feed(response + b"LEFTOVER")
            message = await protocol.read_server_message(
                reader, state, wire.query_message("SELECT 1").encode()
            )
            assert message == response  # stops exactly at ReadyForQuery

        run(main())

    def test_ssl_request_reply_is_one_byte(self):
        async def main():
            protocol = get_protocol("pgwire")
            state = protocol.new_connection_state()
            reader = _feed(b"N" + b"MORE")
            reply = await protocol.read_server_message(
                reader, state, wire.SslRequest().encode()
            )
            assert reply == b"N"

        run(main())

    def test_terminate_expects_no_response(self):
        protocol = get_protocol("pgwire")
        state = protocol.new_connection_state()
        terminate = wire.terminate_message().encode()
        assert not protocol.expects_response(terminate, state)
        assert protocol.expects_response(wire.query_message("x").encode(), state)

    def test_tokenize_excludes_backend_key_data(self):
        protocol = get_protocol("pgwire")
        blob = (
            wire.backend_key_data(123, 456).encode()
            + wire.command_complete("SELECT 1").encode()
        )
        tokens = protocol.tokenize(blob)
        assert len(tokens) == 1
        assert tokens[0].startswith(b"C")

    def test_tokenize_includes_notices_and_errors(self):
        protocol = get_protocol("pgwire")
        blob = (
            wire.notice_response("NOTICE", "leak 41 0").encode()
            + wire.error_response("ERROR", "42501", "denied").encode()
        )
        tokens = protocol.tokenize(blob)
        assert len(tokens) == 2
        assert b"leak 41 0" in tokens[0]
        assert b"denied" in tokens[1]

    def test_block_response_is_fatal_error(self):
        body = get_protocol("pgwire").block_response("diverged")
        messages, _ = wire.split_messages(body)
        fields = wire.parse_fields(messages[0])
        assert fields.severity == "FATAL"
        assert "RDDR intervened" in fields.message
