"""Unit tests for repro.sentinel: chunked digests, drift classification,
the capture path (contract-1.3 hook vs full-snapshot fallback), the
offline audit CLI, and the new config knobs."""

from __future__ import annotations

import hashlib

import pytest

from repro.apps.kvstore import KeyDbLikeServer, RedisLikeServer, kv_command
from repro.core.config import RddrConfig
from repro.journal.replay import capture_state_digests
from repro.obs import Observer
from repro.protocols import get_protocol
from repro.protocols.base import (
    PROTOCOL_API_VERSION,
    ProtocolContractError,
    ProtocolRegistry,
    capabilities_of,
)
from repro.sentinel import StateSentinel, chunk_digests, classify, diff_chunks
from repro.sentinel.__main__ import main as sentinel_main
from repro.sentinel.digest import DIGEST_HEX
from tests.helpers import run


class TestChunkDigests:
    def test_empty_blob_has_no_chunks(self):
        assert chunk_digests(b"", 16) == []

    def test_chunking_and_digest_shape(self):
        blob = b"a" * 40
        digests = chunk_digests(blob, 16)
        assert len(digests) == 3  # 16 + 16 + 8
        assert all(len(d) == DIGEST_HEX for d in digests)
        assert digests[0] == digests[1]  # identical chunk content
        assert digests[2] != digests[0]  # short tail chunk differs

    def test_digest_is_truncated_sha256(self):
        blob = b"hello world"
        expected = hashlib.sha256(blob).hexdigest()[:DIGEST_HEX]
        assert chunk_digests(blob, 64) == [expected]

    def test_rejects_nonpositive_chunk_size(self):
        with pytest.raises(ValueError):
            chunk_digests(b"x", 0)

    def test_diff_chunks_localizes(self):
        left = bytearray(b"0123456789abcdef" * 4)
        right = bytearray(left)
        right[17] ^= 0xFF  # inside chunk 1
        diffs = diff_chunks(chunk_digests(bytes(left), 16), chunk_digests(bytes(right), 16))
        assert diffs == [1]

    def test_diff_chunks_counts_length_skew(self):
        left = chunk_digests(b"a" * 32, 16)
        right = chunk_digests(b"a" * 48, 16)
        assert diff_chunks(left, right) == [2]


class TestClassify:
    def test_all_agree_is_clean(self):
        digests = {0: ["aa", "bb"], 1: ["aa", "bb"], 2: ["aa", "bb"]}
        verdict = classify(digests)
        assert verdict is not None and verdict.clean
        assert set(verdict.majority) == {0, 1, 2}

    def test_minority_localized_to_chunk(self):
        digests = {0: ["aa", "bb"], 1: ["aa", "bb"], 2: ["aa", "XX"]}
        verdict = classify(digests)
        assert verdict is not None and not verdict.clean
        assert set(verdict.majority) == {0, 1}
        assert len(verdict.drifted) == 1
        report = verdict.drifted[0]
        assert report.instance == 2
        assert report.chunks == (1,)

    def test_two_way_split_has_no_majority(self):
        assert classify({0: ["aa"], 1: ["bb"]}) is None

    def test_three_way_split_has_no_majority(self):
        assert classify({0: ["aa"], 1: ["bb"], 2: ["cc"]}) is None

    def test_needs_strict_majority_of_four(self):
        digests = {0: ["aa"], 1: ["aa"], 2: ["bb"], 3: ["cc"]}
        assert classify(digests) is None

    def test_majority_of_four_with_two_drifters(self):
        digests = {0: ["aa"], 1: ["aa"], 2: ["aa"], 3: ["bb"]}
        verdict = classify(digests)
        assert verdict is not None
        assert set(verdict.majority) == {0, 1, 2}
        assert [r.instance for r in verdict.drifted] == [3]


class TestContract13:
    def test_api_version_is_1_3(self):
        assert PROTOCOL_API_VERSION == "1.3"

    def test_resp_declares_state_digest(self):
        assert capabilities_of(get_protocol("resp")).state_digest

    def test_pgwire_has_no_state_digest(self):
        # pgwire deliberately lacks the hook pair, so deployments on it
        # exercise the full-snapshot fallback in capture_state_digests.
        assert not capabilities_of(get_protocol("pgwire")).state_digest

    def test_half_implemented_digest_pair_rejected(self):
        from repro.protocols.base import ProtocolModule

        class HalfDigest(ProtocolModule):
            API_VERSION = PROTOCOL_API_VERSION
            name = "contract-half-digest"

            async def read_client_message(self, reader, state):
                return None

            async def read_server_message(self, reader, state, request):
                return b""

            def tokenize(self, message):
                return [message]

            def block_response(self, message):
                return b""

            def state_digest_request(self, chunk_bytes):
                return b"DIGEST\n"

        with pytest.raises(ProtocolContractError, match="parse_state_digest"):
            ProtocolRegistry().register(HalfDigest)


class TestCapture:
    def test_kvstore_digest_verb_matches_client_side_chunking(self):
        async def main():
            server = await RedisLikeServer().start()
            try:
                await kv_command(server.address, "SET", "alpha", "1")
                await kv_command(server.address, "SET", "beta", "2")
                via_hook = await capture_state_digests(
                    server.address, "resp", chunk_bytes=8
                )
                snapshot = server.snapshot()
                assert via_hook == chunk_digests(snapshot, 8)
            finally:
                await server.close()

        run(main())

    def test_diverse_flavors_agree_on_digests(self):
        async def main():
            redis = await RedisLikeServer().start()
            keydb = await KeyDbLikeServer(version="6.0.0").start()
            try:
                for server in (redis, keydb):
                    await kv_command(server.address, "SET", "k", "v")
                a = await capture_state_digests(redis.address, "resp", chunk_bytes=16)
                b = await capture_state_digests(keydb.address, "resp", chunk_bytes=16)
                assert a == b
            finally:
                await redis.close()
                await keydb.close()

        run(main())

    def test_fallback_chunks_full_snapshot(self):
        # Ask through a protocol subclass without the digest pair: the
        # RESP kvstore still answers SNAPSHOT, so the client chunks the
        # raw reply locally.  Fallback digests are group-consistent
        # (identical state -> identical digests) even though they are not
        # byte-comparable with the native server-side digests.
        from repro.protocols.resp import RespProtocol

        import dataclasses

        class NoDigestResp(RespProtocol):
            name = "resp-nodigest"
            state_digest_request = None  # type: ignore[assignment]
            parse_state_digest = None  # type: ignore[assignment]

            def capabilities(self):
                return dataclasses.replace(
                    super().capabilities(), state_digest=False
                )

        async def main():
            twins = [await RedisLikeServer().start() for _ in range(2)]
            try:
                proto = NoDigestResp()
                assert not capabilities_of(proto).state_digest
                for server in twins:
                    await kv_command(server.address, "SET", "x", "y")
                a = await capture_state_digests(
                    twins[0].address, proto, chunk_bytes=8
                )
                b = await capture_state_digests(
                    twins[1].address, proto, chunk_bytes=8
                )
                assert a and a == b
                # A silently corrupted twin now diverges.
                twins[1].data[b"x"] = b"CORRUPT"
                b = await capture_state_digests(
                    twins[1].address, proto, chunk_bytes=8
                )
                assert a != b
            finally:
                for server in twins:
                    await server.close()

        run(main())


class TestSentinelAuditOnce:
    def test_clean_audit_over_static_addresses(self):
        async def main():
            servers = [await RedisLikeServer().start() for _ in range(3)]
            try:
                for server in servers:
                    await kv_command(server.address, "SET", "k", "v")
                observer = Observer()
                sentinel = StateSentinel(
                    service="kv",
                    protocol="resp",
                    observer=observer,
                    addresses=[s.address for s in servers],
                    chunk_bytes=16,
                )
                assert await sentinel.audit_once() == "clean"
                counter = observer.registry.counter(
                    "rddr_sentinel_audits_total", labelnames=("service", "outcome")
                )
                assert counter.labels(service="kv", outcome="clean").value == 1
            finally:
                for server in servers:
                    await server.close()

        run(main())

    def test_detection_only_records_drift_without_repair(self):
        async def main():
            servers = [await RedisLikeServer().start() for _ in range(3)]
            try:
                for server in servers:
                    await kv_command(server.address, "SET", "k", "v")
                # Silent corruption on instance 2, out of band.
                servers[2].data[b"k"] = b"CORRUPT"
                observer = Observer()
                sentinel = StateSentinel(
                    service="kv",
                    protocol="resp",
                    observer=observer,
                    addresses=[s.address for s in servers],
                    chunk_bytes=8,
                )
                assert await sentinel.audit_once() == "divergent"
                records = [
                    r for r in observer.sink.traces() if r.get("type") == "drift"
                ]
                assert len(records) == 1
                record = records[0]
                assert record["instance"] == 2
                assert record["action"] == "detected"
                assert record["chunks"]  # localized to specific chunks
                detected = observer.registry.counter(
                    "rddr_drift_detected_total", labelnames=("service",)
                )
                assert detected.labels(service="kv").value == 1
                # No supervisor/journal: detection-only, nothing repaired.
                repaired = observer.registry.counter(
                    "rddr_drift_repaired_total", labelnames=("service",)
                )
                assert repaired.labels(service="kv").value == 0
            finally:
                for server in servers:
                    await server.close()

        run(main())

    def test_single_instance_round_is_skipped(self):
        async def main():
            server = await RedisLikeServer().start()
            try:
                observer = Observer()
                sentinel = StateSentinel(
                    service="kv",
                    protocol="resp",
                    observer=observer,
                    addresses=[server.address],
                )
                assert await sentinel.audit_once() == "skipped"
            finally:
                await server.close()

        run(main())

    def test_requires_directory_or_addresses(self):
        with pytest.raises(ValueError):
            StateSentinel(
                service="kv", protocol="resp", observer=Observer()
            )


class TestCli:
    def test_identical_files_exit_zero(self, tmp_path, capsys):
        left = tmp_path / "a.snap"
        right = tmp_path / "b.snap"
        left.write_bytes(b"same bytes" * 10)
        right.write_bytes(b"same bytes" * 10)
        code = sentinel_main(["audit", str(left), str(right)])
        assert code == 0
        assert "identical" in capsys.readouterr().out

    def test_divergent_files_exit_one_and_localize(self, tmp_path, capsys):
        blob = bytearray(b"0123456789abcdef" * 8)
        left = tmp_path / "a.snap"
        right = tmp_path / "b.snap"
        left.write_bytes(bytes(blob))
        blob[40] ^= 0xFF  # chunk 2 at --chunk-bytes 16
        right.write_bytes(bytes(blob))
        code = sentinel_main(
            ["audit", str(left), str(right), "--chunk-bytes", "16"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "divergent chunks: 1" in out
        assert "chunk 2 (offset 32)" in out

    def test_usage_error_exits_two(self):
        assert sentinel_main([]) == 2
        assert sentinel_main(["bogus"]) == 2


class TestConfigKnobs:
    def test_round_trip(self):
        config = RddrConfig(
            sentinel_audit_period=0.5,
            sentinel_chunk_bytes=128,
            sentinel_repair_budget=3,
        )
        clone = RddrConfig.from_dict(config.to_dict())
        assert clone.sentinel_audit_period == 0.5
        assert clone.sentinel_chunk_bytes == 128
        assert clone.sentinel_repair_budget == 3

    def test_defaults_are_fingerprint_neutral(self):
        base = RddrConfig()
        assert base.sentinel_audit_period is None
        assert base.fingerprint() == RddrConfig(
            sentinel_audit_period=None,
            sentinel_chunk_bytes=256,
            sentinel_repair_budget=2,
        ).fingerprint()

    def test_non_default_knobs_change_fingerprint(self):
        base = RddrConfig()
        tuned = RddrConfig(sentinel_audit_period=0.5)
        assert base.fingerprint() != tuned.fingerprint()
