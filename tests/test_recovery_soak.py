"""Seeded chaos soak: kills and connect flaps under recovery.

Drives ~200 exchanges through an N=3 recovery-enabled deployment while a
seeded schedule injects connect faults and two seeded kill points close
currently-LIVE pods.  The run must end with every instance LIVE again,
an acceptable serve rate, at least one completed warm rejoin, no
exchange ever counting a REJOINING instance's vote, and — after
teardown — no leaked tasks and no listening service socket.

The seed comes from ``RDDR_SOAK_SEED`` (default 1) so the CI chaos
matrix replays distinct but reproducible runs; when
``RDDR_SOAK_TRACE_DIR`` is set the trace-sink JSONL is dumped there
(pass or fail) for the CI failure artifact.
"""

from __future__ import annotations

import asyncio
import os
import random

from repro.apps.echo import EchoServer
from repro.core.config import RddrConfig
from repro.faults import CONNECT_KINDS, FaultSchedule, connect_fault_hook
from repro.orchestrator import Cluster, deploy_nversioned
from repro.recovery import LIVE
from repro.transport import install_connect_hook
from repro.transport.streams import close_writer
from tests.helpers import run

SEED = int(os.environ.get("RDDR_SOAK_SEED", "1"))
EXCHANGES = 200
N = 3


async def _echo_factory(ctx):
    return await EchoServer(host=ctx.host, port=ctx.port).start()


class _ReconnectingClient:
    """A client that reopens its connection when the proxy drops it."""

    def __init__(self, address: tuple[str, int]) -> None:
        self.address = address
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def exchange(self, line: bytes) -> bytes | None:
        for _ in range(2):  # one reconnect attempt per exchange
            try:
                if self._writer is None:
                    self._reader, self._writer = await asyncio.open_connection(
                        *self.address
                    )
                self._writer.write(line + b"\n")
                await self._writer.drain()
                reply = await asyncio.wait_for(self._reader.readline(), 3.0)
                if reply:
                    return reply
            except (ConnectionError, asyncio.TimeoutError, OSError):
                pass
            await self.aclose()
        return None

    async def aclose(self) -> None:
        if self._writer is not None:
            await close_writer(self._writer)
        self._reader = self._writer = None


async def _soak(baseline_tasks: set) -> None:
    rng = random.Random(SEED)
    # Connect flaps: each spec fires once (times=1), addressed to
    # dial-attempt numbers 0..4, so nothing refuses forever.
    flaps = FaultSchedule.random(
        SEED,
        instances=N,
        exchanges=5,
        kinds=CONNECT_KINDS,
        rate=0.3,
        delay_choices=(5.0, 15.0),
    )
    kill_points = sorted(rng.sample(range(30, EXCHANGES - 40), 2))
    config = RddrConfig(
        protocol="tcp",
        exchange_timeout=2.0,
        instance_response_deadline=0.5,
        divergence_policy="vote",
        degraded_quorum=True,
        quarantine_minority=True,
        ephemeral_state=False,
        recovery_enabled=True,
        probe_period=0.05,
        probe_timeout=0.3,
        probe_failure_threshold=2,
        restart_backoff=0.05,
        rejoin_clean_exchanges=2,
        connect_attempts=3,
        connect_backoff_max=0.05,
    )
    async with Cluster() as cluster:
        # The hook must be installed *before* the proxies start (their
        # accept handlers capture the context at start()), but the flap
        # targets are only known once the pods are up — so the address
        # map is filled in after deployment; the hook closure reads it
        # at dial time.
        instance_of: dict[tuple[str, int], int] = {}
        hook = connect_fault_hook(flaps, instance_of)
        with install_connect_hook(hook):
            service = await deploy_nversioned(
                cluster,
                "soak",
                [_echo_factory for _ in range(N)],
                config=config,
            )
            supervisor = service.supervisor
            _SINK[0] = service.rddr.observer.sink
            instance_of.update(
                {pod.address: pod.index for pod in cluster.pods("soak")}
            )
            client = _ReconnectingClient(service.address)
            served = 0
            kills_done = 0
            for exchange in range(EXCHANGES):
                if (
                    kills_done < len(kill_points)
                    and exchange == kill_points[kills_done]
                ):
                    live = [
                        index
                        for index in range(N)
                        if supervisor.state(index) == LIVE
                    ]
                    victim = rng.choice(live)
                    pod = next(
                        p for p in cluster.pods("soak") if p.index == victim
                    )
                    await pod.runtime.close()
                    kills_done += 1
                reply = await client.exchange(b"soak %d" % exchange)
                if reply == b"soak %d\n" % exchange:
                    served += 1
                await asyncio.sleep(0.005)
            assert kills_done == 2

            # Keep serving until every instance has warm-rejoined
            # (rejoin needs shadow exchanges, so drive traffic).
            deadline = asyncio.get_running_loop().time() + 30.0
            extra = 0
            while not supervisor.all_live:
                assert (
                    asyncio.get_running_loop().time() < deadline
                ), f"states: {supervisor.states}"
                await client.exchange(b"drain %d" % extra)
                extra += 1
                await asyncio.sleep(0.02)
        await client.aclose()

        assert supervisor.all_live
        assert served >= 150, f"served only {served}/{EXCHANGES}"

        snapshot = service.rddr.metrics_snapshot()
        recoveries = sum(
            series["value"]
            for series in snapshot["rddr_recoveries_total"]["series"]
        )
        assert recoveries >= 1

        # No exchange was ever decided by a REJOINING instance's vote,
        # and shadow comparison did actually run.
        shadow_seen = False
        for trace in service.rddr.traces():
            attrs = trace.get("spans", {}).get("attrs", {})
            shadow = attrs.get("shadow")
            if shadow:
                shadow_seen = True
                assert not set(shadow) & set(attrs.get("voters", []))
        assert shadow_seen

        address = service.address
        await service.close()

    # Teardown hygiene: nothing keeps running, nothing listens.
    await asyncio.sleep(0.1)
    leaked = [
        task
        for task in asyncio.all_tasks() - baseline_tasks
        if task is not asyncio.current_task()
    ]
    assert leaked == [], leaked
    try:
        _, writer = await asyncio.open_connection(*address)
    except OSError:
        pass
    else:
        await close_writer(writer)
        raise AssertionError("service address still listening")


#: The deployment's trace sink, stashed so a failed run can still dump
#: its JSONL for the CI artifact.
_SINK: list = [None]


class TestChaosSoak:
    def test_seeded_soak_ends_all_live(self):
        async def main():
            baseline_tasks = asyncio.all_tasks()  # the test-harness wrappers
            try:
                await _soak(baseline_tasks)
            finally:
                trace_dir = os.environ.get("RDDR_SOAK_TRACE_DIR")
                if trace_dir and _SINK[0] is not None:
                    path = os.path.join(trace_dir, f"soak-seed{SEED}.jsonl")
                    _SINK[0].write_jsonl(path)

        run(main(), timeout=120.0)
