"""Tests for statement execution: DDL, DML, SELECT pipeline."""

from __future__ import annotations

import datetime

import pytest

from repro.sqlengine import (
    Database,
    EngineProfile,
    SqlError,
    UndefinedColumnError,
    UndefinedTableError,
)
from repro.sqlengine.errors import ConstraintViolationError


@pytest.fixture()
def db() -> Database:
    database = Database()
    database.execute(
        """
        CREATE TABLE users (id integer PRIMARY KEY, name text, age integer,
                            balance double precision);
        INSERT INTO users VALUES
            (1, 'alice', 30, 10.5),
            (2, 'bob', 25, -3.25),
            (3, 'carol', 35, 100.0),
            (4, 'dave', NULL, 0.0);
        """
    )
    return database


class TestDdl:
    def test_create_and_drop(self, db):
        db.query("CREATE TABLE t (a int)")
        assert "t" in db.catalog.tables
        db.query("DROP TABLE t")
        assert "t" not in db.catalog.tables

    def test_create_duplicate_rejected(self, db):
        with pytest.raises(SqlError):
            db.query("CREATE TABLE users (x int)")

    def test_if_not_exists(self, db):
        db.query("CREATE TABLE IF NOT EXISTS users (x int)")  # no error

    def test_drop_missing(self, db):
        with pytest.raises(UndefinedTableError):
            db.query("DROP TABLE missing")
        db.query("DROP TABLE IF EXISTS missing")

    def test_create_index_checks_table(self, db):
        db.query("CREATE INDEX idx ON users (name)")
        with pytest.raises(UndefinedTableError):
            db.query("CREATE INDEX idx2 ON missing (x)")


class TestDml:
    def test_insert_with_columns(self, db):
        result = db.query("INSERT INTO users (id, name) VALUES (10, 'eve')")
        assert result.command_tag == "INSERT 0 1"
        row = db.query("SELECT name, age FROM users WHERE id = 10")
        assert row.rows == [["eve", None]]

    def test_primary_key_enforced(self, db):
        with pytest.raises(ConstraintViolationError):
            db.query("INSERT INTO users VALUES (1, 'dup', 1, 0.0)")

    def test_insert_arity_checked(self, db):
        with pytest.raises(SqlError):
            db.query("INSERT INTO users (id, name) VALUES (11)")

    def test_update(self, db):
        result = db.query("UPDATE users SET age = age + 1 WHERE id <= 2")
        assert result.command_tag == "UPDATE 2"
        assert db.query("SELECT age FROM users WHERE id = 1").scalar() == 31

    def test_update_all_rows(self, db):
        assert db.query("UPDATE users SET balance = 0").command_tag == "UPDATE 4"

    def test_delete(self, db):
        assert db.query("DELETE FROM users WHERE age IS NULL").command_tag == "DELETE 1"
        assert db.query("SELECT count(*) FROM users").scalar() == 3

    def test_delete_then_reinsert_pk(self, db):
        db.query("DELETE FROM users WHERE id = 1")
        db.query("INSERT INTO users VALUES (1, 'again', 1, 1.0)")  # pk free again


class TestSelect:
    def test_projection_and_where(self, db):
        result = db.query("SELECT name FROM users WHERE age > 26 ORDER BY name")
        assert result.rows == [["alice"], ["carol"]]

    def test_star_expansion(self, db):
        result = db.query("SELECT * FROM users WHERE id = 2")
        assert result.column_names == ["id", "name", "age", "balance"]

    def test_expressions_in_select(self, db):
        result = db.query("SELECT id * 2 + 1 AS x FROM users WHERE id = 3")
        assert result.scalar() == 7
        assert result.column_names == ["x"]

    def test_order_by_desc_with_nulls(self, db):
        result = db.query("SELECT age FROM users ORDER BY age DESC")
        assert result.rows == [[None], [35], [30], [25]]  # NULLS FIRST on DESC

    def test_order_by_asc_nulls_last(self, db):
        result = db.query("SELECT age FROM users ORDER BY age")
        assert result.rows == [[25], [30], [35], [None]]

    def test_order_by_ordinal_and_alias(self, db):
        by_ordinal = db.query(
            "SELECT name, age FROM users WHERE age IS NOT NULL ORDER BY 2 DESC LIMIT 1"
        )
        by_alias = db.query(
            "SELECT name, age a FROM users WHERE age IS NOT NULL ORDER BY a DESC LIMIT 1"
        )
        assert by_ordinal.rows == by_alias.rows == [["carol", 35]]

    def test_limit_offset(self, db):
        result = db.query("SELECT id FROM users ORDER BY id LIMIT 2 OFFSET 1")
        assert result.rows == [[2], [3]]

    def test_distinct(self, db):
        db.query("INSERT INTO users VALUES (5, 'alice', 30, 1.0)")
        result = db.query("SELECT DISTINCT name FROM users ORDER BY name")
        assert [r[0] for r in result.rows] == ["alice", "bob", "carol", "dave"]

    def test_like(self, db):
        result = db.query("SELECT name FROM users WHERE name LIKE '%a%' ORDER BY name")
        assert [r[0] for r in result.rows] == ["alice", "carol", "dave"]

    def test_in_and_between(self, db):
        assert db.query("SELECT count(*) FROM users WHERE id IN (1, 3)").scalar() == 2
        assert db.query("SELECT count(*) FROM users WHERE age BETWEEN 25 AND 30").scalar() == 2

    def test_case_when(self, db):
        result = db.query(
            "SELECT name, CASE WHEN age >= 30 THEN 'senior' ELSE 'junior' END "
            "FROM users WHERE age IS NOT NULL ORDER BY id"
        )
        assert [r[1] for r in result.rows] == ["senior", "junior", "senior"]

    def test_unknown_column(self, db):
        with pytest.raises(UndefinedColumnError):
            db.query("SELECT nosuch FROM users")

    def test_unknown_table(self, db):
        with pytest.raises(UndefinedTableError):
            db.query("SELECT * FROM missing")

    def test_select_without_from(self, db):
        assert db.query("SELECT 40 + 2").scalar() == 42

    def test_string_coercion_in_comparison(self, db):
        assert db.query("SELECT name FROM users WHERE id = '2'").scalar() == "bob"

    def test_division(self, db):
        assert db.query("SELECT 7 / 2").scalar() == 3  # integer division
        assert db.query("SELECT 7.0 / 2").scalar() == 3.5
        with pytest.raises(SqlError):
            db.query("SELECT 1 / 0")

    def test_date_arithmetic(self, db):
        result = db.query("SELECT DATE '2020-01-31' + INTERVAL '1 month'")
        assert result.scalar() == datetime.date(2020, 2, 29)
        result = db.query("SELECT DATE '2020-03-10' - DATE '2020-03-01'")
        assert result.scalar() == 9

    def test_pk_point_lookup_uses_index(self, db):
        session = db.create_session()
        db.query("SELECT name FROM users WHERE id = 3", session)
        # indexed access scans 1 row, not the whole table
        assert db.total_work.rows_scanned < 4

    def test_scan_counts_rows(self, db):
        session = db.create_session()
        db.query("SELECT count(*) FROM users WHERE name LIKE '%'", session)
        assert db.total_work.rows_scanned >= 4


class TestShowSetTransactions:
    def test_show_version(self, db):
        assert str(db.query("SHOW server_version").scalar()) == db.profile.version
        assert "postsim" in str(db.query("SELECT version()").scalar())

    def test_set_and_show_setting(self, db):
        session = db.create_session()
        db.execute("SET client_min_messages TO 'error'", session)
        result = db.query("SHOW client_min_messages", session)
        assert result.scalar() == "error"

    def test_transactions_are_tracked(self, db):
        session = db.create_session()
        db.execute("BEGIN", session)
        assert session.in_transaction
        db.execute("COMMIT", session)
        assert not session.in_transaction


class TestErrorHandling:
    def test_script_stops_at_first_error(self, db):
        outcomes = db.execute("SELECT 1; SELECT * FROM missing; SELECT 2")
        assert len(outcomes) == 2
        assert outcomes[0].ok
        assert not outcomes[1].ok

    def test_syntax_error_reported(self, db):
        outcomes = db.execute("SELEC 1")
        assert len(outcomes) == 1
        assert outcomes[0].error is not None


class TestReverseUnorderedScans:
    def test_ablation_profile_reverses_unordered_results(self):
        db = Database(EngineProfile(reverse_unordered_scans=True))
        db.execute("CREATE TABLE t (a int); INSERT INTO t VALUES (1), (2), (3)")
        unordered = db.query("SELECT a FROM t")
        assert unordered.rows == [[3], [2], [1]]
        ordered = db.query("SELECT a FROM t ORDER BY a")
        assert ordered.rows == [[1], [2], [3]]  # ORDER BY still respected
