"""Property tests for the contract-1.1 ``mutate`` hooks and the fuzz
engine's determinism guarantees.

Two invariants carry the whole fuzzing design:

* **Framing closure** — every mutant re-parses under its protocol's own
  framing, even after stacked mutation rounds (the engine feeds novel
  mutants back into the corpus pool, so mutants of mutants must stay
  protocol-valid too).  A mutant that breaks framing would wedge the
  proxy's ``read_client_message`` and poison every verdict after it.
* **Determinism** — the same ``(seed, corpus)`` yields a byte-identical
  mutant stream, and diff signatures are stable across runs with
  volatile values wildcarded.  Corpus files and CI findings depend on
  both.
"""

from __future__ import annotations

import json
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.diff import DiffResult, TokenDifference
from repro.fuzz.engine import campaign_rng, mutant_stream
from repro.fuzz.targets import TARGETS
from repro.protocols import get as get_protocol
from repro.protocols.resp import decode_command
from repro.pgwire import messages as wire
from repro.web.http11 import parse_request_bytes

seeds = st.integers(min_value=0, max_value=2**32 - 1)
rounds = st.integers(min_value=1, max_value=5)


def _stacked_mutants(target_name: str, seed: int, depth: int) -> list[bytes]:
    """Mutation chains: each round mutates the previous round's output."""
    target = TARGETS[target_name]
    protocol = get_protocol(target.protocol)
    rng = random.Random(seed)
    out = []
    for base in target.seed_requests():
        mutant = base
        for _ in range(depth):
            mutant = protocol.mutate(mutant, rng)
            out.append(mutant)
    return out


class TestFramingClosure:
    @given(seeds, rounds)
    @settings(max_examples=100, deadline=None)
    def test_tcp_mutants_stay_single_line(self, seed, depth):
        for mutant in _stacked_mutants("echo", seed, depth):
            assert mutant.endswith(b"\n")
            assert b"\n" not in mutant[:-1]
            assert mutant != b"\n"  # never empty

    @given(seeds, rounds)
    @settings(max_examples=100, deadline=None)
    def test_resp_mutants_reparse_as_commands(self, seed, depth):
        for mutant in _stacked_mutants("kvstore", seed, depth):
            parts = decode_command(mutant)
            assert parts is not None and parts

    @given(seeds, rounds)
    @settings(max_examples=100, deadline=None)
    def test_json_mutants_reparse_as_one_json_line(self, seed, depth):
        for mutant in _stacked_mutants("json", seed, depth):
            assert mutant.endswith(b"\n")
            assert b"\n" not in mutant[:-1]
            json.loads(mutant.decode("utf-8"))

    @given(seeds, rounds)
    @settings(max_examples=50, deadline=None)
    def test_pgwire_mutants_are_single_framed_simple_queries(self, seed, depth):
        for mutant in _stacked_mutants("pgbench", seed, depth):
            messages, tail = wire.split_messages(mutant)
            assert tail == b""
            assert len(messages) == 1
            assert messages[0].tag == b"Q"
            assert messages[0].body.endswith(b"\x00")

    @given(seeds, rounds)
    @settings(max_examples=50, deadline=None)
    def test_http_mutants_reparse(self, seed, depth):
        for mutant in _stacked_mutants("http", seed, depth):
            request = parse_request_bytes(mutant)
            # Framing is self-consistent: the declared body is the body.
            length = request.headers.get("Content-Length")
            if length is not None:
                assert int(length) == len(request.body)


class TestDeterminism:
    @given(seeds, st.sampled_from(sorted(TARGETS)))
    @settings(max_examples=40, deadline=None)
    def test_mutant_stream_is_reproducible(self, seed, target_name):
        target = TARGETS[target_name]
        protocol = get_protocol(target.protocol)
        runs = [
            list(
                mutant_stream(
                    protocol,
                    target.seed_requests(),
                    random.Random(seed),
                    30,
                )
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    @given(st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=40, deadline=None)
    def test_campaign_rng_is_stable(self, seed):
        a = campaign_rng("kvstore", "diverse", seed)
        b = campaign_rng("kvstore", "diverse", seed)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]
        # ...and distinct targets draw distinct streams.
        c = campaign_rng("echo", "diverse", seed)
        assert [c.random() for _ in range(5)] != [b.random() for _ in range(5)]


class TestSignatureDedup:
    def _result(self, values: tuple[bytes, ...]) -> DiffResult:
        return DiffResult(
            divergent=True,
            differences=[TokenDifference(token_index=2, values=values)],
            token_counts=(5, 5),
        )

    def test_signature_is_stable(self):
        result = self._result((b"role: admin", b"role: guest"))
        assert result.signature() == result.signature()
        assert len(result.signature()) == 16

    def test_volatile_values_collapse(self):
        """Two leaks differing only in a long alnum run (an ASLR
        pointer) dedup into one signature."""
        first = self._result((b"ptr 0x7f0011223344aa", b"hello"))
        second = self._result((b"ptr 0x7f0099887766bb", b"hello"))
        assert first.signature() == second.signature()

    def test_instance_order_is_ignored(self):
        assert (
            self._result((b"alpha", b"beta")).signature()
            == self._result((b"beta", b"alpha")).signature()
        )

    def test_different_token_positions_differ(self):
        other = DiffResult(
            divergent=True,
            differences=[
                TokenDifference(token_index=3, values=(b"alpha", b"beta"))
            ],
            token_counts=(5, 5),
        )
        assert self._result((b"alpha", b"beta")).signature() != other.signature()

    def test_count_mismatch_uses_rank_pattern(self):
        shorter = DiffResult(divergent=True, token_counts=(4, 7))
        longer = DiffResult(divergent=True, token_counts=(40, 70))
        assert shorter.signature() == longer.signature()
        flipped = DiffResult(divergent=True, token_counts=(7, 4))
        assert shorter.signature() != flipped.signature()

    def test_non_divergent_signature_empty(self):
        assert DiffResult(divergent=False).signature() == ""
