"""Property tests for the instance directory's snapshot/version contract.

The incoming proxy's whole atomicity story rests on two properties of
:class:`~repro.recovery.directory.InstanceDirectory`:

* a taken snapshot is *frozen* — later ``set_address``/``set_mode`` calls
  never mutate it (an exchange always runs against one consistent view);
* ``version`` is strictly monotonic and bumps exactly when the visible
  table changes, so "re-dial only when the version moved" can never miss
  an update.

Hypothesis drives random interleavings of writes and snapshots.
"""

from __future__ import annotations

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.recovery.directory import (
    MODE_LIVE,
    MODE_OUT,
    MODE_SHADOW,
    InstanceDirectory,
)

_N = 3

_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("set_address"),
            st.integers(min_value=0, max_value=_N - 1),
            st.integers(min_value=1024, max_value=1030),
        ),
        st.tuples(
            st.just("set_mode"),
            st.integers(min_value=0, max_value=_N - 1),
            st.sampled_from([MODE_LIVE, MODE_SHADOW, MODE_OUT]),
        ),
        st.tuples(st.just("snapshot"), st.just(0), st.just(0)),
    ),
    max_size=40,
)


def _apply(directory: InstanceDirectory, op) -> None:
    kind, index, arg = op
    if kind == "set_address":
        directory.set_address(index, ("127.0.0.1", arg))
    elif kind == "set_mode":
        directory.set_mode(index, arg)


class TestDirectoryProperties:
    @settings(max_examples=200, deadline=None)
    @given(_ops)
    def test_snapshots_are_isolated_and_versions_monotonic(self, ops):
        directory = InstanceDirectory(
            [("127.0.0.1", 9000 + i) for i in range(_N)]
        )
        taken = []  # (version, entries, frozen deep copy)
        last_version = directory.version
        for op in ops:
            before_version, before_entries = directory.snapshot()
            _apply(directory, op)
            version, entries = directory.snapshot()

            # strict monotonicity: never decreases, and bumps exactly
            # when the visible table changed
            assert version >= last_version
            changed = entries != before_entries
            assert version == before_version + (1 if changed else 0)
            last_version = version

            if op[0] == "snapshot":
                taken.append((version, entries, copy.deepcopy(entries)))

        # no later write mutated any previously taken snapshot
        for version, entries, frozen in taken:
            assert entries == frozen
            # entries themselves are immutable slots
            for entry in entries:
                assert hash(entry) == hash(
                    frozen[entry.index]
                )  # frozen dataclass stayed hashable/equal

    @settings(max_examples=100, deadline=None)
    @given(_ops)
    def test_noop_writes_never_bump_version(self, ops):
        directory = InstanceDirectory(
            [("127.0.0.1", 9000 + i) for i in range(_N)]
        )
        for op in ops:
            _apply(directory, op)
        version = directory.version
        # replaying the current state is a no-op for every slot
        for index in range(_N):
            entry = directory.entry(index)
            directory.set_address(index, entry.address)
            directory.set_mode(index, entry.mode)
        assert directory.version == version
