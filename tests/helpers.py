"""Shared test helpers.

pytest-asyncio is not available offline, so async tests run through
:func:`run`, which adds a global timeout so a deadlocked proxy fails the
test instead of hanging the suite.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, TypeVar

T = TypeVar("T")

DEFAULT_TIMEOUT = 30.0


def run(coro: Awaitable[T], timeout: float = DEFAULT_TIMEOUT) -> T:
    """Run an async test body with a safety timeout."""

    async def wrapper() -> T:
        return await asyncio.wait_for(coro, timeout=timeout)

    return asyncio.run(wrapper())
