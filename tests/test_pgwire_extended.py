"""Tests for the pgwire extended-query protocol (Parse/Bind/Execute/Sync)."""

from __future__ import annotations

import pytest

from repro.core.config import RddrConfig
from repro.core.incoming import IncomingRequestProxy
from repro.pgwire import PgClient, serve_database
from repro.pgwire.server import substitute_params
from repro.protocols import get_protocol
from repro.sqlengine import Database
from tests.helpers import run


class TestSubstituteParams:
    def test_basic_substitution(self):
        assert (
            substitute_params("SELECT * FROM t WHERE a = $1 AND b = $2", ["x", "2"])
            == "SELECT * FROM t WHERE a = 'x' AND b = '2'"
        )

    def test_null_parameter(self):
        assert substitute_params("SELECT $1", [None]) == "SELECT NULL"

    def test_quote_escaping_blocks_injection(self):
        sql = substitute_params("SELECT * FROM t WHERE a = $1", ["' OR '1'='1"])
        assert sql == "SELECT * FROM t WHERE a = ''' OR ''1''=''1'"

    def test_placeholder_inside_literal_untouched(self):
        assert substitute_params("SELECT '$1'", ["x"]) == "SELECT '$1'"

    def test_repeated_and_multidigit(self):
        sql = substitute_params(
            "SELECT $1, $1, $10", [str(i) for i in range(1, 11)]
        )
        assert sql == "SELECT '1', '1', '10'"

    def test_missing_parameter_rejected(self):
        with pytest.raises(ValueError):
            substitute_params("SELECT $2", ["only-one"])


def _db() -> Database:
    db = Database()
    db.execute(
        "CREATE TABLE accounts (aid integer PRIMARY KEY, abalance integer);"
        "INSERT INTO accounts VALUES (1, 10), (2, 20), (3, 30);"
    )
    return db


class TestExtendedQueryCycle:
    def test_prepared_select(self):
        async def main():
            server = await serve_database(_db())
            async with await PgClient.connect(*server.address) as client:
                outcome = await client.execute_prepared(
                    "SELECT abalance FROM accounts WHERE aid = $1", ["2"]
                )
                assert outcome.ok
                assert outcome.rows == [["20"]]
            await server.close()

        run(main())

    def test_prepared_insert_then_simple_query(self):
        async def main():
            server = await serve_database(_db())
            async with await PgClient.connect(*server.address) as client:
                outcome = await client.execute_prepared(
                    "INSERT INTO accounts VALUES ($1, $2)", ["4", "40"]
                )
                assert outcome.results[0].command_tag == "INSERT 0 1"
                # simple and extended protocols interleave cleanly
                simple = await client.query("SELECT count(*) FROM accounts")
                assert simple.rows == [["4"]]
            await server.close()

        run(main())

    def test_null_parameter_round_trip(self):
        async def main():
            server = await serve_database(_db())
            async with await PgClient.connect(*server.address) as client:
                outcome = await client.execute_prepared(
                    "SELECT count(*) FROM accounts WHERE abalance = $1", [None]
                )
                assert outcome.rows == [["0"]]  # = NULL matches nothing
            await server.close()

        run(main())

    def test_parameter_cannot_inject(self):
        async def main():
            server = await serve_database(_db())
            async with await PgClient.connect(*server.address) as client:
                outcome = await client.execute_prepared(
                    "SELECT abalance FROM accounts WHERE aid = $1", ["1 OR 1=1"]
                )
                assert outcome.ok
                assert outcome.rows == []  # treated as one (non-numeric) value
            await server.close()

        run(main())

    def test_error_in_pipeline_reported_and_recovers(self):
        async def main():
            server = await serve_database(_db())
            async with await PgClient.connect(*server.address) as client:
                outcome = await client.execute_prepared(
                    "SELECT * FROM missing WHERE x = $1", ["1"]
                )
                assert outcome.error is not None
                assert outcome.error.sqlstate == "42P01"
                # connection recovers after Sync
                again = await client.execute_prepared(
                    "SELECT aid FROM accounts WHERE aid = $1", ["3"]
                )
                assert again.rows == [["3"]]
            await server.close()

        run(main())


class TestExtendedThroughRddr:
    def test_prepared_statements_replicate_and_diff(self):
        async def main():
            servers = [await serve_database(_db()) for _ in range(2)]
            proxy = IncomingRequestProxy(
                [s.address for s in servers],
                get_protocol("pgwire"),
                RddrConfig(protocol="pgwire", exchange_timeout=2.0),
            )
            await proxy.start()
            async with await PgClient.connect(*proxy.address) as client:
                outcome = await client.execute_prepared(
                    "SELECT abalance FROM accounts WHERE aid = $1", ["2"]
                )
                assert outcome.ok
                assert outcome.rows == [["20"]]
                # writes replicate to every instance
                await client.execute_prepared(
                    "UPDATE accounts SET abalance = $1 WHERE aid = $2", ["99", "1"]
                )
            for server in servers:
                assert (
                    server.database.query(
                        "SELECT abalance FROM accounts WHERE aid = 1"
                    ).scalar()
                    == 99
                )
            assert proxy.metrics.divergences == 0
            await proxy.close()
            for server in servers:
                await server.close()

        run(main())

    def test_divergent_prepared_responses_blocked(self):
        async def main():
            diverged = _db()
            diverged.execute("UPDATE accounts SET abalance = 12345 WHERE aid = 2")
            servers = [await serve_database(_db()), await serve_database(diverged)]
            proxy = IncomingRequestProxy(
                [s.address for s in servers],
                get_protocol("pgwire"),
                RddrConfig(protocol="pgwire", exchange_timeout=2.0),
            )
            await proxy.start()
            client = await PgClient.connect(*proxy.address)
            with pytest.raises(Exception):
                outcome = await client.execute_prepared(
                    "SELECT abalance FROM accounts WHERE aid = $1", ["2"]
                )
                assert outcome.error is not None and "RDDR" in outcome.error.message
                raise ConnectionError("blocked")  # either path counts
            assert len(proxy.events.divergences()) == 1
            await client.close()
            await proxy.close()
            for server in servers:
                await server.close()

        run(main())
