"""End-to-end self-healing recovery against cluster-managed deployments.

The acceptance scenario for the recovery subsystem: with degraded quorum
on and one of N=3 instances killed mid-session, the service keeps
serving on 2/3, the supervisor respawns the dead instance, warm-rejoins
it after K consecutive clean shadow exchanges, and a *subsequent*
divergence in the rejoined instance is again detected and quarantined —
all asserted from the trace sink and the instance gauges.
"""

from __future__ import annotations

import asyncio

from repro.core import events as ev
from repro.core.config import RddrConfig
from repro.orchestrator import Cluster, deploy_nversioned
from repro.recovery import LIVE, QUARANTINED, REJOINING, RESTARTING, SUSPECT
from repro.transport.retry import open_connection_retry
from repro.transport.server import start_server
from repro.transport.streams import close_writer, drain_write
from tests.helpers import run


class _FlaggedEcho:
    """Echo pod whose divergence is switchable at runtime: when
    ``flags["evil"]`` holds this pod's index, its responses grow a marker
    (so a *rejoined* instance can be made to diverge on demand).  Lines
    starting with ``slow`` are served after ``flags.get("delay", 0)``
    seconds (to hold an admission slot open)."""

    def __init__(self, host: str, port: int, index: int, flags: dict) -> None:
        self.host = host
        self.port = port
        self.index = index
        self.flags = flags
        self.handle = None

    @property
    def address(self) -> tuple[str, int]:
        return self.handle.address

    async def start(self) -> "_FlaggedEcho":
        self.handle = await start_server(
            self._serve, self.host, self.port, name=f"flagged-{self.index}"
        )
        return self

    async def close(self) -> None:
        if self.handle is not None:
            await self.handle.close()

    async def _serve(self, reader, writer) -> None:
        while True:
            try:
                line = await reader.readuntil(b"\n")
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            body = line.rstrip(b"\n")
            if body.startswith(b"slow"):
                await asyncio.sleep(self.flags.get("delay", 0.0))
            if self.flags.get("evil") == self.index:
                body += b" EVIL"
            writer.write(body + b"\n")
            await drain_write(writer)


def _factory(flags: dict):
    async def factory(ctx):
        return await _FlaggedEcho(ctx.host, ctx.port, ctx.index, flags).start()

    return factory


def _recovery_config(**overrides) -> RddrConfig:
    base = dict(
        protocol="tcp",
        exchange_timeout=2.0,
        instance_response_deadline=0.5,
        divergence_policy="vote",
        degraded_quorum=True,
        quarantine_minority=True,
        ephemeral_state=False,
        recovery_enabled=True,
        probe_period=0.03,
        probe_timeout=0.25,
        probe_failure_threshold=2,
        restart_backoff=0.05,
        rejoin_clean_exchanges=3,
        connect_attempts=3,
        connect_backoff_max=0.05,
    )
    base.update(overrides)
    return RddrConfig(**base)


def _gauge(service, name: str) -> float | None:
    snapshot = service.rddr.metrics_snapshot()
    for series in snapshot.get(name, {}).get("series", []):
        if series["labels"].get("service") == service.name:
            return series["value"]
    return None


def _recovery_records(service) -> list[dict]:
    return [
        record
        for record in service.rddr.observer.sink.traces()
        if record.get("type") == "recovery"
    ]


async def _wait_for(predicate, timeout: float = 10.0) -> None:
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(0.02)


class TestSelfHealingRecovery:
    def test_kill_quarantine_respawn_warm_rejoin_then_redivergence(self):
        async def main():
            flags: dict = {}
            async with Cluster() as cluster:
                service = await deploy_nversioned(
                    cluster,
                    "svc",
                    [_factory(flags) for _ in range(3)],
                    config=_recovery_config(),
                )
                supervisor = service.supervisor
                assert supervisor is not None and service.directory is not None
                reader, writer = await open_connection_retry(*service.address)

                async def exchange(line: bytes) -> bytes:
                    writer.write(line + b"\n")
                    await writer.drain()
                    return await asyncio.wait_for(reader.readline(), 2.0)

                assert await exchange(b"warm") == b"warm\n"
                assert _gauge(service, "rddr_live_instances") == 3.0

                # Kill instance 1 mid-session; wait until the probes have
                # taken it out of the directory (not merely SUSPECT).
                await cluster.pods("svc")[1].runtime.close()
                await _wait_for(lambda: supervisor.state(1) not in (LIVE, SUSPECT))

                # The service keeps serving on the surviving 2/3 while the
                # instance is dead, quarantined, and restarting.
                assert await exchange(b"degraded") == b"degraded\n"
                degraded_trace = service.rddr.traces()[-1]
                assert 1 not in degraded_trace["spans"]["attrs"]["voters"]

                await _wait_for(lambda: supervisor.state(1) == REJOINING)
                assert _gauge(service, "rddr_live_instances") == 2.0

                # Drive exchanges until K consecutive clean shadow
                # comparisons promote the instance back to LIVE.
                for attempt in range(50):
                    assert await exchange(b"rejoin") == b"rejoin\n"
                    if supervisor.state(1) == LIVE:
                        break
                    await asyncio.sleep(0.02)
                assert supervisor.state(1) == LIVE
                assert _gauge(service, "rddr_live_instances") == 3.0
                assert _gauge(service, "rddr_quarantined_instances") == 0.0
                assert _gauge(service, "rddr_recoveries_total") == 1.0

                # The quarantine -> rejoin timeline is in the trace sink.
                transitions = [
                    record["to"]
                    for record in _recovery_records(service)
                    if record["instance"] == 1
                ]
                for state in (QUARANTINED, RESTARTING, REJOINING, LIVE):
                    assert state in transitions

                # Shadow exchanges were traced and never voted.
                shadowed = [
                    trace
                    for trace in service.rddr.traces()
                    if trace.get("spans", {}).get("attrs", {}).get("shadow")
                ]
                assert shadowed
                for trace in shadowed:
                    attrs = trace["spans"]["attrs"]
                    assert not set(attrs["shadow"]) & set(attrs["voters"])

                # A subsequent divergence in the *rejoined* instance is
                # detected, outvoted, and quarantined again.
                flags["evil"] = 1
                votes_before = len(service.rddr.events.events(ev.VOTE_OVERRIDE))
                assert await exchange(b"again") == b"again\n"
                assert (
                    len(service.rddr.events.events(ev.VOTE_OVERRIDE))
                    > votes_before
                )
                await _wait_for(lambda: supervisor.state(1) != LIVE)
                flags.pop("evil")
                await service.close()

        run(main(), timeout=60.0)

    def test_recovery_disabled_behaviour_is_unchanged(self):
        async def main():
            flags: dict = {}
            async with Cluster() as cluster:
                service = await deploy_nversioned(
                    cluster,
                    "svc",
                    [_factory(flags) for _ in range(3)],
                    config=_recovery_config(recovery_enabled=False),
                )
                assert service.supervisor is None
                assert service.directory is None
                await cluster.pods("svc")[1].runtime.close()
                reader, writer = await open_connection_retry(*service.address)
                writer.write(b"still\n")
                await writer.drain()
                assert await asyncio.wait_for(reader.readline(), 2.0) == b"still\n"
                await close_writer(writer)
                assert _recovery_records(service) == []
                await service.close()

        run(main())

    def test_close_mid_restart_is_clean(self):
        async def main():
            flags: dict = {}
            async with Cluster() as cluster:
                service = await deploy_nversioned(
                    cluster,
                    "svc",
                    [_factory(flags) for _ in range(3)],
                    # A huge backoff parks the recovery task mid-restart.
                    config=_recovery_config(restart_backoff=30.0),
                )
                supervisor = service.supervisor
                pod = cluster.pods("svc")[1]
                await pod.runtime.close()
                await _wait_for(
                    lambda: supervisor.state(1) in (QUARANTINED, RESTARTING, SUSPECT)
                )
                await _wait_for(lambda: 1 in supervisor._recovery_tasks)
                # Closing while a restart is in flight must neither hang
                # nor leave the recovery task running.
                await asyncio.wait_for(service.close(), timeout=5.0)
                assert supervisor._recovery_tasks == {}
                assert supervisor.monitor._task is None
                await service.close()  # idempotent

        run(main())


class TestAdmissionShedding:
    def test_overflow_exchange_is_shed_fast(self):
        async def main():
            flags = {"delay": 0.6}
            async with Cluster() as cluster:
                service = await deploy_nversioned(
                    cluster,
                    "svc",
                    [_factory(flags) for _ in range(2)],
                    config=RddrConfig(
                        protocol="tcp",
                        exchange_timeout=3.0,
                        ephemeral_state=False,
                        max_concurrent_exchanges=1,
                        admission_queue_limit=0,
                    ),
                )

                async def client(line: bytes) -> bytes:
                    reader, writer = await open_connection_retry(*service.address)
                    try:
                        writer.write(line + b"\n")
                        await writer.drain()
                        try:
                            return await asyncio.wait_for(reader.readline(), 3.0)
                        except asyncio.TimeoutError:
                            return b""
                    finally:
                        await close_writer(writer)

                slow = asyncio.ensure_future(client(b"slow"))
                await asyncio.sleep(0.25)  # the slow exchange holds the slot
                assert await client(b"hi") == b""  # shed: closed, no reply
                assert await slow == b"slow\n"
                assert service.rddr.incoming.metrics.exchanges_shed == 1
                shed_events = service.rddr.events.events(ev.SHED)
                assert shed_events and "admission queue full" in shed_events[0].detail
                assert any(
                    trace["verdict"] == "shed" for trace in service.rddr.traces()
                )
                await service.close()

        run(main())

    def test_queue_admits_after_slot_frees(self):
        async def main():
            flags = {"delay": 0.3}
            async with Cluster() as cluster:
                service = await deploy_nversioned(
                    cluster,
                    "svc",
                    [_factory(flags) for _ in range(2)],
                    config=RddrConfig(
                        protocol="tcp",
                        exchange_timeout=3.0,
                        ephemeral_state=False,
                        max_concurrent_exchanges=1,
                        admission_queue_limit=1,
                    ),
                )

                async def client(line: bytes) -> bytes:
                    reader, writer = await open_connection_retry(*service.address)
                    try:
                        writer.write(line + b"\n")
                        await writer.drain()
                        return await asyncio.wait_for(reader.readline(), 3.0)
                    finally:
                        await close_writer(writer)

                slow = asyncio.ensure_future(client(b"slow"))
                await asyncio.sleep(0.1)
                assert await client(b"hi") == b"hi\n"  # waited, not shed
                assert await slow == b"slow\n"
                assert service.rddr.incoming.metrics.exchanges_shed == 0
                await service.close()

        run(main())
