"""Fault schedules against cluster-managed N-versioned deployments."""

from __future__ import annotations

import asyncio

from repro.apps.echo import EchoServer
from repro.core import events as ev
from repro.core.config import RddrConfig
from repro.faults import FaultSchedule, FaultSpec
from repro.orchestrator import Cluster, deploy_nversioned
from repro.transport.retry import open_connection_retry
from repro.transport.streams import close_writer
from tests.helpers import run


def _echo_factory():
    async def factory(ctx):
        return await EchoServer(host=ctx.host, port=ctx.port).start()

    return factory


async def _exchange(address, line: bytes) -> bytes:
    reader, writer = await open_connection_retry(*address)
    try:
        writer.write(line + b"\n")
        await writer.drain()
        try:
            return await asyncio.wait_for(reader.readline(), 3.0)
        except (asyncio.TimeoutError, ConnectionError):
            return b""
    finally:
        await close_writer(writer)


class TestDeploymentFaultInjection:
    def test_schedule_interposes_shims_and_voting_rides_through(self):
        async def main():
            schedule = FaultSchedule(
                specs=[
                    FaultSpec(kind="corrupt_bytes", instance=2, exchange=0, offset=0)
                ]
            )
            async with Cluster() as cluster:
                service = await deploy_nversioned(
                    cluster,
                    "svc",
                    [_echo_factory() for _ in range(3)],
                    config=RddrConfig(
                        protocol="tcp",
                        exchange_timeout=2.0,
                        divergence_policy="vote",
                        ephemeral_state=False,
                    ),
                    fault_schedule=schedule,
                )
                assert len(service.fault_proxies) == 3
                assert await _exchange(service.address, b"hi") == b"hi\n"
                fired = [record.as_tuple() for record in service.fault_records()]
                assert [entry[:2] for entry in fired] == [("corrupt_bytes", 2)]
                assert service.rddr.events.events(ev.VOTE_OVERRIDE)
                await service.close()

        run(main())

    def test_degraded_quorum_survives_scheduled_instance_death(self):
        async def main():
            schedule = FaultSchedule(
                specs=[
                    FaultSpec(kind="stall", instance=1, exchange=0, delay_ms=600.0)
                ]
            )
            async with Cluster() as cluster:
                service = await deploy_nversioned(
                    cluster,
                    "svc",
                    [_echo_factory() for _ in range(3)],
                    config=RddrConfig(
                        protocol="tcp",
                        exchange_timeout=5.0,
                        instance_response_deadline=0.3,
                        divergence_policy="vote",
                        degraded_quorum=True,
                        ephemeral_state=False,
                    ),
                    fault_schedule=schedule,
                )
                assert await _exchange(service.address, b"hi") == b"hi\n"
                assert service.rddr.events.events(ev.DEGRADED)
                await service.close()

        run(main())

    def test_no_schedule_means_no_shims(self):
        async def main():
            async with Cluster() as cluster:
                service = await deploy_nversioned(
                    cluster,
                    "svc",
                    [_echo_factory() for _ in range(2)],
                    config=RddrConfig(protocol="tcp", exchange_timeout=2.0),
                )
                assert service.fault_proxies == []
                assert service.fault_records() == []
                assert await _exchange(service.address, b"hi") == b"hi\n"
                await service.close()

        run(main())
