"""Seeded 3-hop chain chaos soak: mid-chain kill, hop-local healing.

Drives ~150 exchanges through an alpha → beta → gamma chain (relays in
front of an echo leaf, execution indices on every hop) while a seeded
kill point closes a currently-LIVE mid-chain (beta) pod — and, on every
hop, a *per-edge* seeded fault schedule stalls responses through that
hop's own fault shims, so each edge of the graph degrades independently
rather than the whole chain sharing one global gremlin.  Recovery runs
*only* on beta, so the run proves cascade containment: the failure
quarantines and heals hop-locally, upstream hops stay live (alpha's
``degrade`` edge maps downstream trouble to framed verdicts, never raw
timeouts), and after teardown nothing leaks.  Every divergence-free
exchange must carry one stitchable execution index end to end.

The seed comes from ``RDDR_SOAK_SEED`` (default 1); each hop derives
its own schedule seed from it, so one knob still replays the whole
run.  When ``RDDR_SOAK_TRACE_DIR`` is set the trace-sink JSONL is
dumped there (pass or fail) for the CI failure artifact.
"""

from __future__ import annotations

import asyncio
import os
import random

from repro.apps.echo import EchoServer
from repro.apps.relay import relay_factory
from repro.core.config import RddrConfig
from repro.faults import FaultSchedule
from repro.graph import ChainHop, deploy_chain
from repro.graph.stitch import load_jsonl, stitch
from repro.obs import Observer
from repro.orchestrator import Cluster
from repro.recovery import LIVE
from repro.transport.streams import close_writer
from tests.helpers import run

SEED = int(os.environ.get("RDDR_SOAK_SEED", "1"))
EXCHANGES = 150
BETA_N = 3
HOP_SIZES = {"alpha": 2, "beta": BETA_N, "gamma": 2}


def _hop_schedule(hop_index: int, instances: int) -> FaultSchedule:
    """This hop's own seeded fault schedule, derived from the run seed.

    Stall-only and brief (5 ms, well inside every hop's response
    deadline): the injected friction exercises each edge's fault shims
    and timing margins without manufacturing divergences that would
    quarantine hops deliberately deployed without recovery."""
    return FaultSchedule.random(
        SEED * 100 + hop_index,
        instances=instances,
        exchanges=30,
        kinds=("stall",),
        rate=0.1,
        delay_choices=(5.0,),
    )

DEEPEST = ["alpha-in", "alpha-out-next", "beta-in", "beta-out-next", "gamma-in"]


async def _echo_factory(ctx):
    return await EchoServer(host=ctx.host, port=ctx.port).start()


class _ReconnectingClient:
    """A client that reopens its connection when the chain drops it."""

    def __init__(self, address: tuple[str, int]) -> None:
        self.address = address
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def exchange(self, line: bytes) -> bytes | None:
        for _ in range(2):  # one reconnect attempt per exchange
            try:
                if self._writer is None:
                    self._reader, self._writer = await asyncio.open_connection(
                        *self.address
                    )
                self._writer.write(line + b"\n")
                await self._writer.drain()
                reply = await asyncio.wait_for(self._reader.readline(), 5.0)
                if reply:
                    return reply
            except (ConnectionError, asyncio.TimeoutError, OSError):
                pass
            await self.aclose()
        return None

    async def aclose(self) -> None:
        if self._writer is not None:
            await close_writer(self._writer)
        self._reader = self._writer = None


def _hops() -> list[ChainHop]:
    common = dict(
        protocol="tcp",
        execution_index=True,
        ephemeral_state=False,
        connect_attempts=3,
        connect_backoff_max=0.05,
    )
    alpha = RddrConfig(
        exchange_timeout=2.0,
        # Cascade containment: whatever happens downstream during the
        # kill arrives here as a framed degrade verdict within 1.5s,
        # never as a raw timeout tearing alpha's groups down.
        tree_policy={"edges": {"next": {"mode": "degrade", "deadline_s": 1.5}}},
        **common,
    )
    # Recovery runs ONLY on the mid hop.  Probes are connect-only: an
    # in-band liveness request would traverse the rest of the chain and
    # (dialling only LIVE relays) skew the outgoing proxy's group
    # counters against rejoining shadows.
    beta = RddrConfig(
        exchange_timeout=0.4,
        instance_response_deadline=0.3,
        divergence_policy="vote",
        degraded_quorum=True,
        quarantine_minority=True,
        recovery_enabled=True,
        probe_period=0.25,
        probe_timeout=1.0,
        probe_connect_only=True,
        probe_failure_threshold=2,
        restart_backoff=0.05,
        rejoin_clean_exchanges=2,
        **common,
    )
    gamma = RddrConfig(exchange_timeout=2.0, **common)
    return [
        ChainHop(
            "alpha",
            [relay_factory(), relay_factory()],
            alpha,
            fault_schedule=_hop_schedule(0, HOP_SIZES["alpha"]),
        ),
        ChainHop(
            "beta",
            [relay_factory() for _ in range(BETA_N)],
            beta,
            fault_schedule=_hop_schedule(1, HOP_SIZES["beta"]),
        ),
        ChainHop(
            "gamma",
            [_echo_factory, _echo_factory],
            gamma,
            fault_schedule=_hop_schedule(2, HOP_SIZES["gamma"]),
        ),
    ]


async def _soak(baseline_tasks: set) -> None:
    rng = random.Random(SEED)
    kill_point = rng.randrange(30, EXCHANGES - 40)
    observer = Observer()
    _SINK[0] = observer.sink
    async with Cluster() as cluster:
        chain = await deploy_chain(cluster, _hops(), observer=observer)
        supervisor = chain.hop("beta").supervisor
        assert supervisor is not None
        client = _ReconnectingClient(chain.address)
        served = 0
        contained = 0
        killed = False
        for exchange in range(EXCHANGES):
            if not killed and exchange == kill_point:
                live = [
                    index
                    for index in range(BETA_N)
                    if supervisor.state(index) == LIVE
                ]
                victim = rng.choice(live)
                pod = next(
                    p for p in cluster.pods("beta") if p.index == victim
                )
                await pod.runtime.close()
                # The fault sidecar dies with its pod: its listener is
                # the address beta's connect-only probes dial, so the
                # whole instance must vanish for the death to be seen.
                # (The supervisor re-interposes a fresh shim on respawn;
                # the dead shim's records survive via the retired list.)
                await chain.hop("beta").fault_proxies[victim].close()
                killed = True
            line = b"soak %d" % exchange
            reply = await client.exchange(line)
            if reply == line + b"\n":
                served += 1
            elif reply is not None and reply.startswith(b"rddr-degraded"):
                contained += 1
            await asyncio.sleep(0.005)
        assert killed

        # Keep driving traffic until the killed beta pod has warm-rejoined.
        # Each drain exchange opens a *fresh* session: connection groups
        # are per-session, so a rejoining shadow can only take part in
        # groups formed after it came back.
        deadline = asyncio.get_running_loop().time() + 30.0
        extra = 0
        while not supervisor.all_live:
            assert (
                asyncio.get_running_loop().time() < deadline
            ), f"beta states: {supervisor.states}"
            await client.aclose()
            await client.exchange(b"drain %d" % extra)
            extra += 1
            await asyncio.sleep(0.02)
        await client.aclose()

        # Every hop healthy; the chain as a whole reports live.
        assert chain.all_live
        assert served >= 100, f"served only {served}/{EXCHANGES}"

        # The mid hop actually recovered (restart + warm rejoin)...
        snapshot = chain.hop("beta").rddr.metrics_snapshot()
        recoveries = sum(
            series["value"]
            for series in snapshot["rddr_recoveries_total"]["series"]
        )
        assert recoveries >= 1

        # ...and the containment was hop-local: no hop other than beta
        # ever saw an instance quarantined.
        for record in load_jsonl(observer.sink.jsonl().splitlines()):
            if record.get("type") == "recovery" and record.get("to") == "QUARANTINED":
                assert record.get("service") == "beta", record

        # Every hop's own fault schedule actually fired through its own
        # shims — per-edge injection, not one shared schedule — and only
        # the mild stall faults these schedules carry.
        for name in HOP_SIZES:
            records = chain.hop(name).fault_records()
            assert records, f"hop {name} injected no faults"
            assert {record.kind for record in records} == {"stall"}, name

        address = chain.address
        await chain.close()

    # Every served exchange stitched into one full-depth call tree.
    trees = stitch(load_jsonl(observer.sink.jsonl().splitlines()))
    full_depth = 0
    for tree in trees:
        paths = [
            [hop for hop, _seq in node.path]
            for node in tree.nodes()
            if len(node.path) == 5
        ]
        if DEEPEST in paths:
            full_depth += 1
    assert full_depth >= served, (full_depth, served)
    seen_hops = {
        hop
        for tree in trees
        for node in tree.nodes()
        for hop, _seq in [node.path[-1]]
    }
    assert set(DEEPEST) <= seen_hops

    # Teardown hygiene: nothing keeps running, nothing listens.
    await asyncio.sleep(0.1)
    leaked = [
        task
        for task in asyncio.all_tasks() - baseline_tasks
        if task is not asyncio.current_task()
    ]
    assert leaked == [], leaked
    try:
        _, writer = await asyncio.open_connection(*address)
    except OSError:
        pass
    else:
        await close_writer(writer)
        raise AssertionError("chain head address still listening")


#: The deployment's trace sink, stashed so a failed run can still dump
#: its JSONL for the CI artifact.
_SINK: list = [None]


class TestChainChaosSoak:
    def test_seeded_three_hop_soak_heals_hop_locally(self):
        async def main():
            baseline_tasks = asyncio.all_tasks()  # the test-harness wrappers
            try:
                await _soak(baseline_tasks)
            finally:
                trace_dir = os.environ.get("RDDR_SOAK_TRACE_DIR")
                if trace_dir and _SINK[0] is not None:
                    path = os.path.join(trace_dir, f"chain-soak-seed{SEED}.jsonl")
                    _SINK[0].write_jsonl(path)

        run(main(), timeout=180.0)
