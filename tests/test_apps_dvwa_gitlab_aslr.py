"""Tests for the DVWA, GitLab, and ASLR evaluation applications."""

from __future__ import annotations

import re
from urllib.parse import quote

from repro.apps.aslr import (
    AddressSpace,
    VulnerableEchoServer,
    build_overflow_payload,
)
from repro.apps.aslr.echo_vuln import BUFFER_SIZE, gadget_address_from_leak
from repro.apps.dvwa import SQLI_EXPLOIT_ID, deploy_dvwa
from repro.apps.gitlab import CVE_2019_10130_STEPS, deploy_gitlab, injection_for
from repro.transport.retry import open_connection_retry
from repro.transport.streams import close_writer
from repro.web import HttpClient
from repro.web.forms import encode_urlencoded
from tests.helpers import run


class TestAddressSpace:
    def test_aslr_bases_differ_between_processes(self):
        spaces = [AddressSpace(aslr=True) for _ in range(8)]
        assert len({s.base for s in spaces}) > 1

    def test_no_aslr_bases_identical(self):
        a, b = AddressSpace(aslr=False), AddressSpace(aslr=False)
        assert a.base == b.base
        assert a.pointer_bytes() == b.pointer_bytes()

    def test_gadget_computable_from_leak(self):
        space = AddressSpace(aslr=True)
        leaked = space.pointer_bytes()
        assert gadget_address_from_leak(leaked) == space.gadget_address()


class TestVulnerableEcho:
    def test_benign_echo(self):
        async def main():
            server = await VulnerableEchoServer().start()
            reader, writer = await open_connection_retry(*server.address)
            writer.write(b"hello\n")
            await writer.drain()
            assert await reader.readline() == b"hello\n"
            await close_writer(writer)
            await server.close()

        run(main())

    def test_exact_buffer_size_does_not_leak(self):
        async def main():
            server = await VulnerableEchoServer().start()
            reader, writer = await open_connection_retry(*server.address)
            payload = b"A" * BUFFER_SIZE
            writer.write(payload + b"\n")
            await writer.drain()
            assert await reader.readline() == payload + b"\n"
            await close_writer(writer)
            await server.close()

        run(main())

    def test_overflow_leaks_pointer(self):
        async def main():
            server = await VulnerableEchoServer().start()
            reader, writer = await open_connection_retry(*server.address)
            payload = build_overflow_payload()
            writer.write(payload + b"\n")
            await writer.drain()
            reply = (await reader.readline()).rstrip(b"\n")
            assert len(reply) == BUFFER_SIZE + 16  # truncated echo + pointer
            leaked = reply[BUFFER_SIZE:]
            assert gadget_address_from_leak(leaked) == server.address_space.gadget_address()
            await close_writer(writer)
            await server.close()

        run(main())


class TestDvwaDeployment:
    @staticmethod
    async def _sqli(address, user_id: str) -> bytes:
        async with HttpClient(*address) as client:
            page = await client.get("/vulnerabilities/sqli")
            match = re.search(rb"name='user_token' value='(\w+)'", page.body)
            assert match is not None
            cookie = (page.header("Set-Cookie") or "").split(";")[0]
            response = await client.post(
                "/vulnerabilities/sqli",
                body=encode_urlencoded(
                    {"id": user_id, "user_token": match.group(1).decode()}
                ),
                headers={
                    "Content-Type": "application/x-www-form-urlencoded",
                    "Cookie": cookie,
                },
            )
            return response.body

    def test_full_benign_flow_with_csrf(self):
        async def main():
            deployment = await deploy_dvwa()
            body = await self._sqli(deployment.address, "2")
            assert b"Gordon" in body and b"Brown" in body
            assert len(deployment.rddr.events.divergences()) == 0
            await deployment.close()

        run(main())

    def test_wrong_csrf_token_rejected_uniformly(self):
        async def main():
            deployment = await deploy_dvwa()
            async with HttpClient(*deployment.address) as client:
                page = await client.get("/vulnerabilities/sqli")
                cookie = (page.header("Set-Cookie") or "").split(";")[0]
                response = await client.post(
                    "/vulnerabilities/sqli",
                    body=encode_urlencoded(
                        {"id": "1", "user_token": "WRONGTOKEN12345"}
                    ),
                    headers={
                        "Content-Type": "application/x-www-form-urlencoded",
                        "Cookie": cookie,
                    },
                )
            # all instances reject identically -> uniform 403, no divergence
            assert response.status == 403
            assert b"CSRF token incorrect" in response.body
            await deployment.close()

        run(main())

    def test_injection_diverges_at_outgoing_proxy(self):
        async def main():
            deployment = await deploy_dvwa()
            try:
                body = await self._sqli(deployment.address, SQLI_EXPLOIT_ID)
            except Exception:
                body = b""
            assert b"Gordon" not in body  # nothing dumped
            divergences = deployment.rddr.events.divergences()
            assert len(divergences) >= 1
            await deployment.close()

        run(main())


class TestGitLabDeployment:
    def test_benign_traffic_flows(self):
        async def main():
            deployment = await deploy_gitlab()
            async with HttpClient(*deployment.address) as client:
                assert (await client.get("/")).status == 200
                projects = await client.get("/projects")
                assert b"infra-tools" in projects.body
                sign_in = await client.post(
                    "/users/sign_in",
                    body=encode_urlencoded(
                        {
                            "username": "root",
                            "password_hash": "63a9f0ea7bb98050796b649e85481845",
                        }
                    ),
                    headers={"Content-Type": "application/x-www-form-urlencoded"},
                )
                assert b'"signed_in":true' in sign_in.body
                pages = await client.get("/pages/docs")
                assert pages.status == 200
            # sidekiq background jobs run against the same N-versioned DB
            async with HttpClient(*deployment.sidekiq_server.address) as client:
                tick = await client.post("/tick")
                assert b'"ok":true' in tick.body
            assert len(deployment.rddr.events.divergences()) == 0
            await deployment.close()

        run(main())

    def test_exploit_blocked_benign_continues(self):
        async def main():
            deployment = await deploy_gitlab()
            leaked = False
            for step in CVE_2019_10130_STEPS:
                async with HttpClient(*deployment.address) as client:
                    response = await client.get("/search?q=" + quote(injection_for(step)))
                    if b"glpat-root-AAAA1111SECRET" in response.body:
                        leaked = True
            assert not leaked
            assert len(deployment.rddr.events.divergences()) >= 1
            # the deployment recovers for benign users
            async with HttpClient(*deployment.address) as client:
                assert (await client.get("/projects")).status == 200
            await deployment.close()

        run(main())


class TestDvwaImpossibleLevel:
    """DVWA's parameterized "impossible" level: injection dies at the
    application, so homogeneous impossible-level instances never diverge."""

    def test_injection_neutralised_without_divergence(self):
        async def main():
            deployment = await deploy_dvwa(
                securities=("impossible", "impossible", "impossible"),
                filter_pair=(1, 2),
            )
            body = await TestDvwaDeployment._sqli(deployment.address, SQLI_EXPLOIT_ID)
            # parameterized query: the whole injection string is one value,
            # matching no row — nothing dumped, nothing divergent
            assert b"Gordon" not in body and b"Pablo" not in body
            assert len(deployment.rddr.events.divergences()) == 0
            benign = await TestDvwaDeployment._sqli(deployment.address, "2")
            assert b"Gordon" in benign
            await deployment.close()

        run(main())

    def test_mixed_levels_diverge_on_injection(self):
        """An impossible-level instance alongside low-level ones is itself
        a diversity source: the injection produces different SQL traffic."""

        async def main():
            deployment = await deploy_dvwa(
                securities=("impossible", "low", "low"), filter_pair=(1, 2)
            )
            body = await TestDvwaDeployment._sqli(deployment.address, SQLI_EXPLOIT_ID)
            assert b"Gordon" not in body and b"Pablo" not in body
            assert len(deployment.rddr.events.divergences()) >= 1
            await deployment.close()

        run(main())
