"""Tests for the plpgsql interpreter, expression renderer, and types."""

from __future__ import annotations

import datetime

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sqlengine import plpgsql
from repro.sqlengine.errors import DataTypeError, SqlError, SqlSyntaxError
from repro.sqlengine.parser import parse_expression
from repro.sqlengine.render import render_expr
from repro.sqlengine.types import (
    Interval,
    coerce,
    format_value,
    infer_type,
    normalize_type,
    parse_date,
    parse_interval,
)


class TestPlpgsqlParsing:
    def test_begin_end_block(self):
        statements = plpgsql.parse_body("BEGIN RETURN 1; END")
        assert len(statements) == 1
        assert isinstance(statements[0], plpgsql.ReturnStatement)

    def test_bare_return(self):
        statements = plpgsql.parse_body("RETURN $1 + $2")
        assert len(statements) == 1

    def test_raise_notice_with_args(self):
        statements = plpgsql.parse_body(
            "BEGIN RAISE NOTICE 'leak % %', $1, $2; RETURN true; END"
        )
        raise_stmt = statements[0]
        assert isinstance(raise_stmt, plpgsql.RaiseStatement)
        assert raise_stmt.level == "notice"
        assert raise_stmt.format_string == "leak % %"
        assert len(raise_stmt.args) == 2

    def test_raise_exception(self):
        statements = plpgsql.parse_body("BEGIN RAISE EXCEPTION 'no'; RETURN 1; END")
        assert statements[0].level == "exception"

    def test_missing_return_rejected(self):
        with pytest.raises(SqlSyntaxError, match="no RETURN"):
            plpgsql.parse_body("BEGIN RAISE NOTICE 'x'; END")

    def test_unsupported_statement_rejected(self):
        with pytest.raises(SqlSyntaxError):
            plpgsql.parse_body("BEGIN UPDATE t SET x = 1; RETURN 1; END")

    def test_raise_requires_format_string(self):
        with pytest.raises(SqlSyntaxError):
            plpgsql.parse_body("BEGIN RAISE NOTICE $1; RETURN 1; END")


class TestRenderFormat:
    def test_percent_substitution(self):
        assert plpgsql.render_format("leak % %", [1, "two"]) == "leak 1 two"

    def test_escaped_percent(self):
        assert plpgsql.render_format("100%%", []) == "100%"

    def test_too_few_args(self):
        with pytest.raises(SqlError):
            plpgsql.render_format("% %", [1])

    def test_value_formatting(self):
        assert plpgsql.render_format("%", [True]) == "t"
        assert plpgsql.render_format("%", [None]) == ""


class TestRenderExpr:
    @pytest.mark.parametrize(
        "sql",
        [
            "a + 1",
            "a >>> 0",
            "x LIKE 'a%'",
            "x IN (1, 2)",
            "x NOT IN (1)",
            "x BETWEEN 1 AND 2",
            "x IS NULL",
            "x IS NOT NULL",
            "NOT a",
            "count(*)",
            "coalesce(a, 'x')",
            "CASE WHEN a = 1 THEN 'one' ELSE 'other' END",
            "CAST(x AS integer)",
            "EXTRACT(year FROM d)",
            "SUBSTRING(s FROM 1 FOR 2)",
        ],
    )
    def test_render_is_reparseable(self, sql):
        expr = parse_expression(sql)
        rendered = render_expr(expr)
        reparsed = parse_expression(rendered)
        assert render_expr(reparsed) == rendered  # fixed point

    def test_string_escaping(self):
        expr = parse_expression("'it''s'")
        assert render_expr(expr) == "'it''s'"

    def test_null_and_booleans(self):
        assert render_expr(parse_expression("NULL")) == "NULL"
        assert render_expr(parse_expression("TRUE")) == "true"


class TestTypes:
    def test_normalize_aliases(self):
        assert normalize_type("int4") == "integer"
        assert normalize_type("VARCHAR(32)") == "text"
        assert normalize_type("double precision") == "double precision"
        with pytest.raises(DataTypeError):
            normalize_type("geometry")

    def test_coerce_int(self):
        assert coerce("42", "integer") == 42
        assert coerce(True, "integer") == 1
        assert coerce(None, "integer") is None
        with pytest.raises(DataTypeError):
            coerce("nope", "integer")

    def test_coerce_bool(self):
        assert coerce("t", "boolean") is True
        assert coerce("false", "boolean") is False
        assert coerce(1, "boolean") is True
        with pytest.raises(DataTypeError):
            coerce("maybe", "boolean")

    def test_coerce_date(self):
        assert coerce("2020-05-06", "date") == datetime.date(2020, 5, 6)
        with pytest.raises(DataTypeError):
            parse_date("junk")

    def test_format_value(self):
        assert format_value(None) == ""
        assert format_value(True) == "t"
        assert format_value(2.0) == "2.0"
        assert format_value(datetime.date(2020, 1, 2)) == "2020-01-02"

    def test_infer_type(self):
        assert infer_type(True) == "boolean"
        assert infer_type(3) == "integer"
        assert infer_type(3.5) == "double precision"
        assert infer_type(datetime.date.today()) == "date"
        assert infer_type("x") == "text"


class TestInterval:
    def test_parse_units(self):
        assert parse_interval("90 day").days == 90
        assert parse_interval("3 months").months == 3
        assert parse_interval("1 year").months == 12
        assert parse_interval("2 weeks").days == 14
        with pytest.raises(DataTypeError):
            parse_interval("5 fortnights")
        with pytest.raises(DataTypeError):
            parse_interval("soon")

    def test_month_arithmetic_clamps_day(self):
        jan31 = datetime.date(2021, 1, 31)
        assert Interval(months=1).add_to(jan31) == datetime.date(2021, 2, 28)

    def test_year_rollover(self):
        nov = datetime.date(2020, 11, 15)
        assert Interval(months=3).add_to(nov) == datetime.date(2021, 2, 15)

    def test_subtract(self):
        march = datetime.date(2021, 3, 31)
        assert Interval(months=1).subtract_from(march) == datetime.date(2021, 2, 28)

    @given(
        st.dates(min_value=datetime.date(1990, 1, 1), max_value=datetime.date(2050, 1, 1)),
        st.integers(min_value=0, max_value=48),
    )
    def test_property_add_months_is_monotone(self, date, months):
        later = Interval(months=months).add_to(date)
        assert later >= date
