"""Tests for the HTTP/1.1 parser, serializer, and framing options."""

from __future__ import annotations

import gzip

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.web.http11 import (
    HeaderMap,
    HttpParseError,
    ParserOptions,
    Request,
    Response,
    parse_request_bytes,
    parse_response_bytes,
    serialize_request,
    serialize_response,
)


class TestHeaderMap:
    def test_case_insensitive_lookup(self):
        headers = HeaderMap([("Content-Type", "text/html")])
        assert headers.get("content-type") == "text/html"
        assert "CONTENT-TYPE" in headers

    def test_preserves_order_and_casing(self):
        headers = HeaderMap([("X-B", "2"), ("X-A", "1")])
        assert headers.items() == [("X-B", "2"), ("X-A", "1")]

    def test_set_replaces_all(self):
        headers = HeaderMap([("Set-Cookie", "a=1"), ("Set-Cookie", "b=2")])
        headers.set("Set-Cookie", "c=3")
        assert headers.get_all("set-cookie") == ["c=3"]

    def test_add_appends(self):
        headers = HeaderMap()
        headers.add("Set-Cookie", "a=1")
        headers.add("Set-Cookie", "b=2")
        assert headers.get_all("Set-Cookie") == ["a=1", "b=2"]

    def test_remove(self):
        headers = HeaderMap([("X", "1")])
        headers.remove("x")
        assert "X" not in headers

    def test_copy_is_independent(self):
        headers = HeaderMap([("X", "1")])
        clone = headers.copy()
        clone.set("X", "2")
        assert headers.get("X") == "1"


class TestRequestParsing:
    def test_simple_get(self):
        request = parse_request_bytes(b"GET /path?q=1 HTTP/1.1\r\nHost: h\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/path"
        assert request.query_string == "q=1"
        assert request.header("Host") == "h"

    def test_content_length_body(self):
        request = parse_request_bytes(
            b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello"
        )
        assert request.body == b"hello"

    def test_chunked_body(self):
        raw = (
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            b"5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n"
        )
        assert parse_request_bytes(raw).body == b"hello world"

    def test_chunk_extension_ignored(self):
        raw = (
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            b"5;ext=1\r\nhello\r\n0\r\n\r\n"
        )
        assert parse_request_bytes(raw).body == b"hello"

    def test_malformed_request_line(self):
        with pytest.raises(HttpParseError):
            parse_request_bytes(b"GARBAGE\r\n\r\n")

    def test_bad_content_length(self):
        with pytest.raises(HttpParseError):
            parse_request_bytes(b"POST / HTTP/1.1\r\nContent-Length: nan\r\n\r\n")

    def test_bad_chunk_size(self):
        with pytest.raises(HttpParseError):
            parse_request_bytes(
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nZZ\r\n\r\n"
            )

    def test_header_whitespace_is_sp_htab_only(self):
        """\\x0b must survive parsing — it is the smuggling obfuscator."""
        request = parse_request_bytes(
            b"POST / HTTP/1.1\r\nTransfer-Encoding: \x0bchunked\r\nContent-Length: 0\r\n\r\n"
        )
        assert request.header("Transfer-Encoding") == "\x0bchunked"


class TestFramingOptions:
    SMUGGLE = (
        b"POST / HTTP/1.1\r\n"
        b"Transfer-Encoding: \x0bchunked\r\n"
        b"Content-Length: 11\r\n"
        b"\r\n"
        b"0\r\n\r\nHIDDEN"
    )

    def test_strict_parser_frames_by_content_length(self):
        request = parse_request_bytes(self.SMUGGLE, ParserOptions())
        assert request.body == b"0\r\n\r\nHIDDEN"

    def test_lenient_parser_honours_obfuscated_te(self):
        request = parse_request_bytes(
            self.SMUGGLE, ParserOptions(lenient_te_whitespace=True)
        )
        assert request.body == b""  # chunked body terminates at the 0-chunk

    def test_te_ignoring_parser_frames_by_content_length(self):
        raw = (
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
            b"Content-Length: 4\r\n\r\nBODY"
        )
        request = parse_request_bytes(
            raw, ParserOptions(honor_transfer_encoding=False)
        )
        assert request.body == b"BODY"


class TestResponseParsing:
    def test_simple_response(self):
        response = parse_response_bytes(
            b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi"
        )
        assert response.status == 200
        assert response.body == b"hi"

    def test_head_response_has_no_body(self):
        response = parse_response_bytes(
            b"HTTP/1.1 200 OK\r\n\r\n", request_method="HEAD"
        )
        assert response.body == b""

    def test_204_has_no_body(self):
        assert parse_response_bytes(b"HTTP/1.1 204 No Content\r\n\r\n").body == b""

    def test_read_to_eof_without_framing(self):
        response = parse_response_bytes(b"HTTP/1.1 200 OK\r\n\r\nuntil eof")
        assert response.body == b"until eof"

    def test_gzip_decompression(self):
        body = gzip.compress(b"payload", mtime=0)
        response = Response(
            status=200,
            headers=HeaderMap([("Content-Encoding", "gzip")]),
            body=body,
        )
        assert response.decompressed_body() == b"payload"

    def test_malformed_status_line(self):
        with pytest.raises(HttpParseError):
            parse_response_bytes(b"NOT-HTTP\r\n\r\n")


class TestSerialization:
    def test_request_round_trip(self):
        request = Request(
            method="POST",
            target="/x",
            headers=HeaderMap([("Host", "h"), ("X-Custom", "v")]),
            body=b"data",
        )
        parsed = parse_request_bytes(serialize_request(request))
        assert parsed.method == "POST"
        assert parsed.body == b"data"
        assert parsed.header("X-Custom") == "v"

    def test_response_round_trip(self):
        response = Response(status=404, body=b"missing")
        parsed = parse_response_bytes(serialize_response(response))
        assert parsed.status == 404
        assert parsed.body == b"missing"

    def test_content_length_supplied_automatically(self):
        data = serialize_response(Response(status=200, body=b"abc"))
        assert b"Content-Length: 3" in data

    def test_existing_framing_headers_respected(self):
        response = Response(
            status=200,
            headers=HeaderMap([("Content-Length", "3")]),
            body=b"abc",
        )
        assert serialize_response(response).count(b"Content-Length") == 1

    @given(
        method=st.sampled_from(["GET", "POST", "PUT", "DELETE"]),
        target=st.text(
            alphabet="abcdefghijklmnopqrstuvwxyz/0123456789", min_size=1, max_size=20
        ).map(lambda s: "/" + s),
        body=st.binary(max_size=128),
    )
    def test_property_request_round_trip(self, method, target, body):
        request = Request(method=method, target=target, body=body)
        parsed = parse_request_bytes(serialize_request(request))
        assert parsed.method == method
        assert parsed.target == target
        assert parsed.body == body

    @given(status=st.sampled_from([200, 201, 204, 301, 403, 404, 500]), body=st.binary(max_size=128))
    def test_property_response_round_trip(self, status, body):
        if status == 204:
            body = b""
        response = Response(status=status, body=body)
        parsed = parse_response_bytes(serialize_response(response))
        assert parsed.status == status
        assert parsed.body == body
