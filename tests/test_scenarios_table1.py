"""Integration tests: every Table I scenario mitigates its CVE.

These are the headline claims of the paper — each scenario must show the
exploit working against a bare instance AND being blocked behind RDDR
while benign traffic flows.
"""

from __future__ import annotations

import pytest

from repro.scenarios import registry
from tests.helpers import run

ALL_SCENARIOS = registry.names()


def test_registry_has_all_ten_rows():
    assert len(ALL_SCENARIOS) == 10


@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_scenario_mitigated(name):
    result = run(registry.run(name), timeout=60)
    assert result.leak_without_rddr, f"{name}: exploit did not leak directly"
    assert result.benign_ok, f"{name}: benign traffic failed through RDDR"
    assert result.mitigated, f"{name}: exploit not mitigated by RDDR"
    assert result.divergences > 0
    assert result.passed


def test_scenario_results_carry_table1_metadata():
    result = run(registry.run("cve_2019_18277"), timeout=60)
    assert result.cve == "CVE-2019-18277"
    assert result.cwe == "444"
    assert result.owasp == "4"
    assert "HAProxy" in result.microservice
