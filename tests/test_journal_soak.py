"""Stateful chaos soak: seeded kills over a journaled kvstore deployment.

The acceptance run for the durable exchange journal: an N=3 RESP
deployment serves a seeded SET/GET/DEL mix while connect faults flap
instance dials and two seeded kill points close currently-LIVE pods
mid-write.  Tiny segment/compaction budgets force rotation and
snapshot-anchored compaction *during* the run, so catch-up exercises the
restore-then-replay path, not just raw replay.

Must-hold invariants at the end:

* every instance is LIVE again, and every killed instance traversed
  CATCHING_UP on its way back;
* the on-disk journal verifies clean (CRCs, id monotonicity, snapshots);
* a full key scan of each instance — KEYS plus every GET — is
  byte-identical across all three.

``RDDR_SOAK_SEED`` picks the run (default 1); ``RDDR_JOURNAL_SOAK_DIR``
persists the journal for the CI failure artifact (and post-run
``python -m repro.journal verify``); ``RDDR_SOAK_TRACE_DIR`` dumps the
trace-sink JSONL.
"""

from __future__ import annotations

import asyncio
import os
import random

from repro.apps.kvstore import RedisLikeServer, kv_command
from repro.core.config import RddrConfig
from repro.faults import CONNECT_KINDS, FaultSchedule, connect_fault_hook
from repro.journal import ExchangeJournal
from repro.orchestrator import Cluster, deploy_nversioned
from repro.recovery import CATCHING_UP, LIVE
from repro.transport import install_connect_hook
from tests.helpers import run

SEED = int(os.environ.get("RDDR_SOAK_SEED", "1"))
OPERATIONS = 150
N = 3


async def _kv_factory(ctx):
    return await RedisLikeServer(host=ctx.host, port=ctx.port).start()


async def _op(address, rng: random.Random, sequence: int) -> None:
    """One seeded client operation; failures mid-kill are tolerated."""
    roll = rng.random()
    key = f"k{rng.randrange(40)}"
    try:
        if roll < 0.55:
            await kv_command(address, "SET", key, f"v{sequence}")
        elif roll < 0.7:
            await kv_command(address, "SET", f"unique{sequence}", f"u{sequence}")
        elif roll < 0.85:
            await kv_command(address, "GET", key)
        else:
            await kv_command(address, "DEL", key)
    except (ConnectionError, OSError, asyncio.TimeoutError):
        pass


async def _instance_scan(address) -> bytes:
    listing = await kv_command(address, "KEYS", "*")
    keys = [
        line
        for line in listing.split(b"\r\n")
        if line and not line.startswith((b"*", b"$"))
    ]
    chunks = [listing]
    for key in keys:
        chunks.append(await kv_command(address, "GET", key))
    return b"".join(chunks)


async def _soak(journal_dir: str) -> None:
    rng = random.Random(SEED)
    flaps = FaultSchedule.random(
        SEED,
        instances=N,
        exchanges=5,
        kinds=CONNECT_KINDS,
        rate=0.3,
        delay_choices=(5.0, 15.0),
    )
    kill_points = sorted(rng.sample(range(20, OPERATIONS - 30), 2))
    config = RddrConfig(
        protocol="resp",
        exchange_timeout=2.0,
        instance_response_deadline=0.5,
        divergence_policy="vote",
        degraded_quorum=True,
        quarantine_minority=True,
        ephemeral_state=False,
        recovery_enabled=True,
        probe_period=0.05,
        probe_timeout=0.3,
        probe_failure_threshold=2,
        restart_backoff=0.05,
        rejoin_clean_exchanges=2,
        connect_attempts=3,
        connect_backoff_max=0.05,
        journal_dir=journal_dir,
        journal_segment_bytes=512,
        journal_compact_bytes=2048,
    )
    async with Cluster() as cluster:
        instance_of: dict[tuple[str, int], int] = {}
        hook = connect_fault_hook(flaps, instance_of)
        with install_connect_hook(hook):
            service = await deploy_nversioned(
                cluster,
                "kv-soak",
                [_kv_factory for _ in range(N)],
                config=config,
            )
            supervisor = service.supervisor
            _SINK[0] = service.rddr.observer.sink
            instance_of.update(
                {pod.address: pod.index for pod in cluster.pods("kv-soak")}
            )
            address = service.address
            victims: list[int] = []
            kills_done = 0
            for sequence in range(OPERATIONS):
                if (
                    kills_done < len(kill_points)
                    and sequence == kill_points[kills_done]
                ):
                    live = [
                        index
                        for index in range(N)
                        if supervisor.state(index) == LIVE
                    ]
                    victim = rng.choice(live)
                    victims.append(victim)
                    pod = next(
                        p
                        for p in cluster.pods("kv-soak")
                        if p.index == victim
                    )
                    await pod.runtime.close()
                    kills_done += 1
                await _op(address, rng, sequence)
                await asyncio.sleep(0.005)
            assert kills_done == 2

            # Keep writing until every instance has warm-rejoined.
            deadline = asyncio.get_running_loop().time() + 45.0
            extra = 0
            while not supervisor.all_live:
                assert (
                    asyncio.get_running_loop().time() < deadline
                ), f"states: {supervisor.states}"
                try:
                    await kv_command(
                        address, "SET", f"drain{extra}", f"d{extra}"
                    )
                except (ConnectionError, OSError, asyncio.TimeoutError):
                    pass
                extra += 1
                await asyncio.sleep(0.02)

            # Every killed instance came back through CATCHING_UP.
            transitions = [
                (record["instance"], record["to"])
                for record in service.rddr.observer.traces()
                if record.get("type") == "recovery"
            ]
            for victim in victims:
                assert (victim, CATCHING_UP) in transitions, victims
                assert (victim, LIVE) in transitions, victims

            # Rotation and snapshot-anchored compaction actually happened.
            journal = service.rddr.journal
            assert journal.last_id > 0
            assert journal.latest_snapshot() is not None

            # Converged state: byte-identical full scans per instance.
            scans = []
            for index in range(N):
                entry = service.directory.entry(index)
                scans.append(await _instance_scan(entry.address))
            assert scans[0] == scans[1] == scans[2]

            await service.close()

    # The on-disk journal survives teardown and verifies clean.
    survivor = ExchangeJournal(journal_dir)
    assert survivor.verify() == []
    assert survivor.stat()["records"] > 0


#: Trace sink stashed so a failed run still dumps the CI artifact.
_SINK: list = [None]


class TestJournalSoak:
    def test_stateful_soak_converges(self, tmp_path):
        journal_dir = os.environ.get("RDDR_JOURNAL_SOAK_DIR") or str(
            tmp_path / "journal"
        )

        async def main():
            try:
                await _soak(journal_dir)
            finally:
                trace_dir = os.environ.get("RDDR_SOAK_TRACE_DIR")
                if trace_dir and _SINK[0] is not None:
                    path = os.path.join(
                        trace_dir, f"journal-soak-seed{SEED}.jsonl"
                    )
                    _SINK[0].write_jsonl(path)

        run(main(), timeout=150.0)
