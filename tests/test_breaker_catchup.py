"""Outgoing-proxy circuit breaker vs a recovering backend.

The scenario recovery creates routinely: a backend that died (tripping
the breaker), then comes back in a CATCHING_UP-like phase — it accepts
connections but is too busy replaying state to answer.  The breaker's
half-open probe must judge *connectivity* (what the breaker guards),
not read latency: a slow-but-accepting backend closes the breaker and
stays closed, with the slow reads contained by the edge policy instead
of flapping the breaker open again."""

from __future__ import annotations

import asyncio
import socket

from repro.core.config import RddrConfig
from repro.core.outgoing import OutgoingRequestProxy
from repro.graph.policy import EdgePolicy
from repro.protocols import get as get_protocol
from repro.recovery.breaker import CircuitBreaker
from tests.helpers import run


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class _PhasedBackend:
    """A backend with operator-controlled phases on one fixed port:
    down (no listener), catching_up (accepts, reads, never replies),
    live (answers ``ok <line>``)."""

    def __init__(self, port: int) -> None:
        self.port = port
        self.server: asyncio.AbstractServer | None = None
        self.replying = False

    async def start(self, *, replying: bool) -> None:
        await self.stop()
        self.replying = replying
        self.server = await asyncio.start_server(
            self._handle, "127.0.0.1", self.port
        )

    async def stop(self) -> None:
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()
            self.server = None

    async def _handle(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if self.replying:
                    writer.write(b"ok " + line)
                    await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()


class _Group:
    def __init__(self) -> None:
        self.streams = []

    async def connect(self, proxy: OutgoingRequestProxy) -> None:
        for address in proxy.addresses:
            self.streams.append(await asyncio.open_connection(*address))

    async def exchange(self, line: bytes) -> list[bytes]:
        async def one(stream):
            reader, writer = stream
            writer.write(line)
            await writer.drain()
            return await asyncio.wait_for(reader.readline(), timeout=10.0)

        return list(await asyncio.gather(*(one(s) for s in self.streams)))

    async def close(self) -> None:
        for _reader, writer in self.streams:
            writer.close()


class TestBreakerAgainstCatchingUpBackend:
    def test_half_open_probe_does_not_flap_on_slow_backend(self):
        async def main():
            port = _free_port()
            transitions: list[tuple[str, str]] = []
            breaker = CircuitBreaker(
                failure_threshold=2,
                reset_timeout=0.3,
                on_transition=lambda old, new: transitions.append((old, new)),
            )
            proxy = OutgoingRequestProxy(
                ("127.0.0.1", port),
                2,
                get_protocol("tcp"),
                RddrConfig(
                    protocol="tcp",
                    exchange_timeout=2.0,
                    connect_attempts=1,
                    connect_backoff_max=0.01,
                ),
                name="api-out-db",
                breaker=breaker,
                edge=EdgePolicy(mode="degrade", deadline_s=0.3),
            )
            await proxy.start()
            backend = _PhasedBackend(port)
            group = _Group()
            try:
                await group.connect(proxy)

                # Phase 1: backend down.  Two failed dials trip the breaker.
                for payload in (b"a\n", b"b\n"):
                    replies = await group.exchange(payload)
                    assert all(r.startswith(b"rddr-degraded") for r in replies)
                assert breaker.state == "open"

                # Phase 2: breaker open — contained fast-fail, no dial.
                replies = await group.exchange(b"c\n")
                assert all(r.startswith(b"rddr-degraded") for r in replies)
                assert breaker.state == "open"

                # Phase 3: backend accepts but is catching up (never
                # replies).  After the reset timeout the half-open probe
                # connects — connectivity restored, breaker closes — and
                # the stalled read is contained by the edge deadline
                # WITHOUT re-tripping the breaker.
                await backend.start(replying=False)
                await asyncio.sleep(0.35)
                for payload in (b"d\n", b"e\n"):
                    replies = await group.exchange(payload)
                    assert all(r.startswith(b"rddr-degraded") for r in replies)
                    assert breaker.state == "closed", payload

                # Phase 4: backend fully live — the edge serves for real.
                await backend.start(replying=True)
                replies = await group.exchange(b"f\n")
                assert replies == [b"ok f\n", b"ok f\n"]
                assert breaker.state == "closed"

                # One clean trip and one clean close — no flapping.
                assert transitions == [
                    ("closed", "open"),
                    ("open", "half_open"),
                    ("half_open", "closed"),
                ]
            finally:
                await group.close()
                await backend.stop()
                await proxy.close()

        run(main(), timeout=30.0)
