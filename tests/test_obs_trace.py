"""Exchange-level tracing: span trees, the sink ring, and the public API.

Unit-tests the trace primitives with a fake clock, then drives real
proxies and asserts the exported span trees have the documented shapes
(``replicate → send* → collect → recv* → denoise → diff → respond``
incoming; ``collect → merge → backend → fan-back`` outgoing) for the
unanimous / divergent / timed-out verdicts.  Also covers the
``repro.deploy`` facade, the protocol plugin registry, and the ISSUE's
acceptance scenario: a diverging Table I run observed through
``repro.obs.use`` yields a JSON trace with per-instance latencies and an
incremented ``rddr_exchanges_total{verdict="divergent"}`` series.
"""

from __future__ import annotations

import asyncio
import json

import pytest

import repro
from repro import obs
from repro.apps.echo import EchoServer
from repro.core.config import RddrConfig
from repro.core.incoming import IncomingRequestProxy
from repro.core.outgoing import OutgoingRequestProxy
from repro.obs import ExchangeTrace, Observer, TraceSink, Tracer
from repro.protocols import ProtocolModule, get, register
from repro.protocols.tcp import TcpLineProtocol
from repro.transport.retry import open_connection_retry
from repro.transport.streams import close_writer
from tests.helpers import run


class _FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


async def _tcp_exchange(address, line: bytes, timeout: float = 3.0) -> bytes:
    reader, writer = await open_connection_retry(*address)
    try:
        writer.write(line + b"\n")
        await writer.drain()
        return await asyncio.wait_for(reader.readline(), timeout)
    except asyncio.TimeoutError:
        return b""
    finally:
        await close_writer(writer)


def _top_level_spans(trace: dict) -> list[str]:
    return [child["name"] for child in trace["spans"]["children"]]


class TestTracePrimitives:
    def test_span_tree_and_export(self):
        clock = _FakeClock()
        trace = ExchangeTrace(
            exchange_id="p-000007",
            proxy="p",
            protocol="tcp",
            direction="incoming",
            exchange=7,
            clock=clock,
        )
        with trace.span("replicate") as replicate:
            with trace.span("send", parent=replicate, instance=0):
                clock.now += 0.25
        clock.now += 0.5
        trace.set_verdict("unanimous")
        clock.now += 0.25
        exported = trace.to_dict()
        assert exported["exchange_id"] == "p-000007"
        assert exported["verdict"] == "unanimous"
        assert exported["reason"] is None
        assert exported["duration_s"] == pytest.approx(1.0)
        assert exported["spans"]["name"] == "exchange"
        replicate_span = exported["spans"]["children"][0]
        assert replicate_span["name"] == "replicate"
        assert replicate_span["duration_s"] == pytest.approx(0.25)
        send = replicate_span["children"][0]
        assert send["attrs"]["instance"] == 0
        assert exported["instances"]["0"]["send_s"] == pytest.approx(0.25)

    def test_cancelled_span_keeps_its_timing(self):
        clock = _FakeClock()
        trace = ExchangeTrace(
            exchange_id="p-000000", proxy="p", protocol="tcp",
            direction="incoming", exchange=0, clock=clock,
        )
        with pytest.raises(asyncio.CancelledError):
            with trace.span("recv", instance=1):
                clock.now += 2.0
                raise asyncio.CancelledError
        timings = trace.instance_timings()
        assert timings[1]["recv_s"] == pytest.approx(2.0)
        assert timings[1]["recv_cancelled"] is True

    def test_error_span_records_exception_type(self):
        trace = ExchangeTrace(
            exchange_id="p-000000", proxy="p", protocol="tcp",
            direction="incoming", exchange=0, clock=_FakeClock(),
        )
        with pytest.raises(RuntimeError):
            with trace.span("backend"):
                raise RuntimeError("boom")
        assert trace.root.children[0].attrs["error"] == "RuntimeError"

    def test_sink_is_a_ring_buffer(self):
        sink = TraceSink(capacity=2)
        for i in range(5):
            sink.emit({"exchange": i})
        assert len(sink) == 2
        assert sink.emitted == 5
        assert sink.traces() == [{"exchange": 3}, {"exchange": 4}]
        assert sink.last() == {"exchange": 4}
        lines = sink.jsonl().splitlines()
        assert [json.loads(line)["exchange"] for line in lines] == [3, 4]
        sink.clear()
        assert sink.last() is None
        with pytest.raises(ValueError):
            TraceSink(capacity=0)

    def test_sink_write_jsonl(self, tmp_path):
        sink = TraceSink(capacity=4)
        sink.emit({"exchange": 1})
        path = tmp_path / "traces.jsonl"
        assert sink.write_jsonl(str(path)) == 1
        assert json.loads(path.read_text())["exchange"] == 1

    def test_tracer_skips_discarded_traces(self):
        sink = TraceSink(capacity=4)
        tracer = Tracer(sink)
        trace = tracer.begin(proxy="p", protocol="tcp", direction="outgoing", exchange=3)
        assert trace.exchange_id == "p-000003"
        trace.discard = True
        assert tracer.finish(trace) is None
        assert len(sink) == 0


class TestIncomingProxyTraces:
    def test_unanimous_span_tree(self):
        async def main():
            servers = [await EchoServer().start() for _ in range(3)]
            observer = Observer()
            proxy = IncomingRequestProxy(
                [s.address for s in servers],
                "tcp",
                RddrConfig(protocol="tcp", exchange_timeout=2.0),
                observer=observer,
            )
            await proxy.start()
            assert await _tcp_exchange(proxy.address, b"hi") == b"hi\n"
            await proxy.close()
            for server in servers:
                await server.close()
            return observer

        observer = run(main())
        trace = observer.sink.last()
        assert trace["verdict"] == "unanimous"
        assert trace["direction"] == "incoming"
        assert trace["protocol"] == "tcp"
        assert trace["exchange_id"] == "rddr-incoming-000000"
        assert _top_level_spans(trace) == [
            "replicate", "collect", "denoise", "diff", "respond",
        ]
        replicate, collect = trace["spans"]["children"][:2]
        assert [c["name"] for c in replicate["children"]] == ["send"] * 3
        assert [c["name"] for c in collect["children"]] == ["recv"] * 3
        assert set(trace["instances"]) == {"0", "1", "2"}
        for timings in trace["instances"].values():
            assert timings["send_s"] >= 0.0
            assert timings["recv_s"] >= 0.0
        assert observer.registry.total(
            "rddr_exchanges_total", verdict="unanimous"
        ) == 1

    def test_divergent_span_tree(self):
        async def main():
            servers = [
                await EchoServer().start(),
                await EchoServer(tag="buggy-v2").start(),
            ]
            observer = Observer()
            proxy = IncomingRequestProxy(
                [s.address for s in servers],
                "tcp",
                RddrConfig(protocol="tcp", exchange_timeout=2.0),
                observer=observer,
            )
            await proxy.start()
            await _tcp_exchange(proxy.address, b"hi")
            await proxy.close()
            for server in servers:
                await server.close()
            return observer

        observer = run(main())
        trace = observer.sink.last()
        assert trace["verdict"] == "divergent"
        assert trace["reason"]
        # blocked exchanges never reach the respond stage
        assert _top_level_spans(trace) == ["replicate", "collect", "denoise", "diff"]
        diff_span = trace["spans"]["children"][3]
        assert diff_span["attrs"]["divergent"] is True
        assert observer.registry.total(
            "rddr_exchanges_total", verdict="divergent"
        ) == 1

    def test_timeout_keeps_partial_instance_timings(self):
        class SlowEcho(EchoServer):
            async def _serve(self, reader, writer):
                while True:
                    try:
                        line = await reader.readuntil(b"\n")
                    except (asyncio.IncompleteReadError, ConnectionError):
                        return
                    await asyncio.sleep(5.0)
                    writer.write(line)
                    await writer.drain()

        async def main():
            fast = await EchoServer().start()
            slow = await SlowEcho().start()
            observer = Observer()
            proxy = IncomingRequestProxy(
                [fast.address, slow.address],
                "tcp",
                RddrConfig(protocol="tcp", exchange_timeout=0.3),
                observer=observer,
            )
            await proxy.start()
            await _tcp_exchange(proxy.address, b"hi")
            await proxy.close()
            await fast.close()
            await slow.close()
            return observer

        observer = run(main())
        trace = observer.sink.last()
        assert trace["verdict"] == "timeout"
        assert "0.3" in trace["reason"]
        # the fast instance answered; the slow one's read was cancelled
        assert trace["instances"]["0"]["recv_s"] < 0.3
        assert trace["instances"]["1"]["recv_cancelled"] is True
        # the cancelled read must not pollute the latency histogram
        assert observer.registry.total(
            "rddr_instance_latency_seconds", instance="1"
        ) == 0
        assert observer.registry.total(
            "rddr_instance_latency_seconds", instance="0"
        ) == 1


class TestOutgoingProxyTraces:
    def test_merged_group_span_tree(self):
        async def main():
            backend = await EchoServer().start()
            observer = Observer()
            proxy = OutgoingRequestProxy(
                backend.address,
                2,
                "tcp",
                RddrConfig(protocol="tcp", exchange_timeout=2.0),
                observer=observer,
            )
            await proxy.start()
            replies = await asyncio.gather(
                _tcp_exchange(proxy.address_for_instance(0), b"q"),
                _tcp_exchange(proxy.address_for_instance(1), b"q"),
            )
            assert replies == [b"q\n", b"q\n"]
            await proxy.close()
            await backend.close()
            return observer

        observer = run(main())
        traces = [t for t in observer.traces() if t["verdict"] == "unanimous"]
        assert traces, "merged outgoing exchange must export a trace"
        trace = traces[-1]
        assert trace["direction"] == "outgoing"
        assert _top_level_spans(trace) == ["collect", "merge", "backend", "fan-back"]
        merge = trace["spans"]["children"][1]
        assert [c["name"] for c in merge["children"]] == ["denoise", "diff"]
        fan_back = trace["spans"]["children"][3]
        assert [c["name"] for c in fan_back["children"]] == ["send"] * 2


class TestPublicApi:
    def test_deploy_facade(self):
        async def main():
            servers = [await EchoServer().start() for _ in range(2)]
            deployment = await repro.deploy(
                instances=[s.address for s in servers], protocol="tcp"
            )
            async with deployment:
                assert await _tcp_exchange(deployment.address, b"ping") == b"ping\n"
            for server in servers:
                await server.close()
            return deployment

        deployment = run(main())
        assert deployment.config.protocol == "tcp"
        assert 'rddr_exchanges_total{protocol="tcp",proxy="rddr-in",verdict="unanimous"} 1' in (
            deployment.metrics_text()
        )
        assert deployment.traces()[-1]["verdict"] == "unanimous"
        snapshot = deployment.metrics_snapshot()
        assert snapshot["rddr_exchanges_total"]["type"] == "counter"

    def test_deploy_requires_keywords_and_two_instances(self):
        with pytest.raises(TypeError):
            run(repro.deploy([("127.0.0.1", 1)]))  # positional not allowed
        with pytest.raises(ValueError):
            run(repro.deploy(instances=[("127.0.0.1", 1)], protocol="tcp"))

    def test_protocol_registry_get_and_register(self):
        assert isinstance(get("tcp"), TcpLineProtocol)

        @register
        class FramedProtocol(TcpLineProtocol):
            name = "framed-test"

        assert isinstance(get("framed-test"), FramedProtocol)
        with pytest.raises(KeyError):
            get("no-such-protocol")
        with pytest.raises(TypeError):
            register(object)

    def test_proxies_accept_protocol_names(self):
        proxy = IncomingRequestProxy(
            [("127.0.0.1", 1), ("127.0.0.1", 2)],
            "http",
            RddrConfig(protocol="http"),
        )
        assert proxy.protocol.name == "http"

    def test_active_observer_via_use(self):
        async def main():
            servers = [await EchoServer().start() for _ in range(2)]
            observer = Observer()
            with obs.use(observer):
                assert obs.active_observer() is observer
                deployment = await repro.deploy(
                    instances=[s.address for s in servers], protocol="tcp"
                )
            assert obs.active_observer() is None
            async with deployment:
                await _tcp_exchange(deployment.address, b"x")
            for server in servers:
                await server.close()
            return observer, deployment

        observer, deployment = run(main())
        # the deployment created inside use() reports into our observer
        assert deployment.observer is observer
        assert observer.registry.total("rddr_exchanges_total") == 1
        assert observer.sink.last()["verdict"] == "unanimous"


class TestTable1Acceptance:
    def test_diverging_scenario_produces_trace_and_verdict_metric(self):
        """ISSUE acceptance: run a diverging Table I scenario, get a JSON
        trace with per-instance latencies and the divergence verdict, and
        see ``rddr_exchanges_total{verdict="divergent"}`` incremented."""
        from repro.scenarios import registry as scenarios

        observer = Observer()
        with obs.use(observer):
            result = run(scenarios.run("cve_2014_3146"), timeout=60)
        assert result.passed

        divergent = [
            json.loads(line)
            for line in observer.sink.jsonl().splitlines()
            if json.loads(line)["verdict"] == "divergent"
        ]
        assert divergent, "the exploit exchange must export a divergent trace"
        trace = divergent[-1]
        assert trace["proxy"] == "cve_2014_3146-in"
        assert trace["instances"], "trace must carry per-instance latencies"
        for timings in trace["instances"].values():
            assert timings["send_s"] >= 0.0
            assert timings["recv_s"] >= 0.0

        exposition = observer.metrics_text()
        assert any(
            line.startswith("rddr_exchanges_total{")
            and 'verdict="divergent"' in line
            and not line.endswith(" 0")
            for line in exposition.splitlines()
        )
        assert observer.registry.total("rddr_exchanges_total", verdict="divergent") >= 1
        # the unanimous benign exchange is in there too
        assert observer.registry.total("rddr_exchanges_total", verdict="unanimous") >= 1


class TestConcurrentInterleaving:
    """Span trees and instance timings stay per-exchange-correct when
    many exchanges are in flight at once."""

    def test_interleaved_traces_keep_their_own_timings(self):
        # Two traces advanced turn-by-turn on one shared clock: spans
        # opened while the *other* trace is mid-span must not leak.
        clock = _FakeClock()
        traces = [
            ExchangeTrace(
                exchange_id=f"p-{i:06d}", proxy="p", protocol="tcp",
                direction="incoming", exchange=i, clock=clock,
            )
            for i in range(2)
        ]
        context_a = traces[0].span("recv", instance=0)
        with context_a:
            clock.now += 1.0
            with traces[1].span("recv", instance=0):
                clock.now += 2.0
            with traces[1].span("send", instance=1):
                clock.now += 4.0
            clock.now += 8.0
        # trace 0's recv stayed open across trace 1's whole exchange
        with traces[0].span("send", instance=1):
            clock.now += 16.0
        timings_a = traces[0].instance_timings()
        timings_b = traces[1].instance_timings()
        assert timings_a[0]["recv_s"] == pytest.approx(15.0)
        assert timings_a[1]["send_s"] == pytest.approx(16.0)
        assert timings_b[0]["recv_s"] == pytest.approx(2.0)
        assert timings_b[1]["send_s"] == pytest.approx(4.0)

    def test_concurrent_exchanges_produce_complete_distinct_trees(self):
        clients, per_client = 6, 5

        async def main():
            servers = [await EchoServer().start() for _ in range(3)]
            observer = Observer()
            config = RddrConfig(protocol="tcp", exchange_timeout=5.0)
            deployment = await repro.deploy(
                instances=[s.address for s in servers],
                config=config,
                observer=observer,
                name="weave",
            )

            async def client(index: int) -> None:
                reader, writer = await asyncio.open_connection(*deployment.address)
                for i in range(per_client):
                    writer.write(f"c{index} r{i}\n".encode())
                    await writer.drain()
                    assert await reader.readline()
                    # stagger so exchanges genuinely overlap
                    await asyncio.sleep(0.001 * (index % 3))
                writer.close()
                await writer.wait_closed()

            await asyncio.gather(*(client(i) for i in range(clients)))
            await deployment.close()
            for server in servers:
                await server.close()
            return observer

        observer = run(main())
        traces = observer.traces()
        assert len(traces) == clients * per_client
        assert sorted(t["exchange"] for t in traces) == list(
            range(clients * per_client)
        )
        assert len({t["exchange_id"] for t in traces}) == clients * per_client
        for trace in traces:
            assert trace["verdict"] == "unanimous"
            assert _top_level_spans(trace) == [
                "replicate", "collect", "denoise", "diff", "respond",
            ]
            replicate, collect = trace["spans"]["children"][:2]
            assert [c["name"] for c in replicate["children"]] == ["send"] * 3
            assert [c["name"] for c in collect["children"]] == ["recv"] * 3
            assert set(trace["instances"]) == {"0", "1", "2"}
            for timings in trace["instances"].values():
                assert timings["send_s"] >= 0.0
                assert timings["recv_s"] >= 0.0


def test_module_exports():
    assert repro.__version__ == "1.1.0"
    for name in ("deploy", "Observer", "MetricsRegistry", "TraceSink"):
        assert name in repro.__all__
    assert isinstance(ProtocolModule, type)
