"""Journal group commit: coalesced fsyncs, ACK-after-durability, crashes.

The :class:`~repro.journal.batch.GroupCommitBatcher` must (1) coalesce
records appended within one window into a single fsync, (2) never
release a caller before that fsync returns, (3) degrade to pass-through
appends when batching is off, and (4) leave the on-disk crash-consistency
story exactly as per-record fsync had it: a crash inside the window loses
only unacknowledged records, a torn tail truncates cleanly at reopen, and
``verify()`` stays green throughout.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

import repro
import repro.journal.log as log_mod
from repro.apps.echo import EchoServer
from repro.core.config import RddrConfig
from repro.journal import ExchangeJournal, GroupCommitBatcher, response_digest
from tests.helpers import run


@pytest.fixture()
def fsync_counter(monkeypatch):
    """Counts os.fsync calls made by the journal module."""
    calls = {"count": 0}
    real = log_mod.os.fsync

    def counting(fd):
        calls["count"] += 1
        return real(fd)

    monkeypatch.setattr(log_mod.os, "fsync", counting)
    return calls


class TestCoalescing:
    def test_one_window_one_fsync(self, tmp_path, fsync_counter):
        async def main():
            journal = ExchangeJournal.open(tmp_path, fsync=True)
            batcher = GroupCommitBatcher(journal, window_s=0.02)
            records = await asyncio.gather(
                *(
                    batcher.append(f"req {i}\n".encode(), digest=i)
                    for i in range(10)
                )
            )
            await batcher.close()
            journal.close()
            return records, batcher.flushes

        records, flushes = run(main())
        # Ten concurrent appends landed in far fewer barriers than ten.
        assert flushes < 10
        assert fsync_counter["count"] < 10
        assert [record.id for record in records] == list(range(1, 11))
        reopened = ExchangeJournal.open(tmp_path)
        assert reopened.verify() == []
        assert sum(1 for _ in reopened.records()) == 10
        reopened.close()

    def test_appends_across_windows_fsync_separately(self, tmp_path):
        async def main():
            journal = ExchangeJournal.open(tmp_path, fsync=True)
            batcher = GroupCommitBatcher(journal, window_s=0.005)
            await batcher.append(b"first\n", digest=1)
            await asyncio.sleep(0.02)  # let the first window close
            await batcher.append(b"second\n", digest=2)
            flushes = batcher.flushes
            await batcher.close()
            journal.close()
            return flushes

        assert run(main()) == 2

    def test_ack_waits_for_the_fsync_barrier(self, tmp_path, monkeypatch):
        """No caller may be released before journal.sync() returns."""

        async def main():
            journal = ExchangeJournal.open(tmp_path, fsync=True)
            gate = threading.Event()
            synced = threading.Event()
            real_sync = journal.sync

            def gated_sync():
                gate.wait(timeout=5.0)
                real_sync()
                synced.set()

            monkeypatch.setattr(journal, "sync", gated_sync)
            batcher = GroupCommitBatcher(journal, window_s=0.001)
            task = asyncio.ensure_future(batcher.append(b"req\n", digest=7))
            await asyncio.sleep(0.05)  # window long past; fsync gated
            assert not task.done()
            gate.set()
            record = await task
            assert synced.is_set()
            assert record.id == 1
            monkeypatch.setattr(journal, "sync", real_sync)
            await batcher.close()
            journal.close()

        run(main())

    def test_append_during_inflight_fsync_still_flushes(
        self, tmp_path, monkeypatch
    ):
        """An append landing while a flush is already inside its fsync
        sees a not-done flush task and arms nothing; the completing flush
        must re-arm a window for it, or the caller hangs forever."""

        async def main():
            journal = ExchangeJournal.open(tmp_path, fsync=True)
            gate = threading.Event()
            real_sync = journal.sync
            calls = {"count": 0}

            def gated_sync():
                calls["count"] += 1
                if calls["count"] == 1:
                    gate.wait(timeout=5.0)
                real_sync()

            monkeypatch.setattr(journal, "sync", gated_sync)
            batcher = GroupCommitBatcher(journal, window_s=0.001)
            first = asyncio.ensure_future(batcher.append(b"first\n", digest=1))
            await asyncio.sleep(0.05)  # flush task is inside the gated fsync
            second = asyncio.ensure_future(batcher.append(b"second\n", digest=2))
            await asyncio.sleep(0.01)
            assert not second.done()
            gate.set()
            # The second caller must be released by a re-armed window, with
            # no further append or manual flush on its behalf.
            records = await asyncio.wait_for(
                asyncio.gather(first, second), timeout=2.0
            )
            assert [record.id for record in records] == [1, 2]
            assert batcher.flushes == 2
            await batcher.close()
            journal.close()

        run(main())

    def test_close_mid_fsync_releases_parked_callers(self, tmp_path, monkeypatch):
        """close() cancelling a flush task mid-fsync must not orphan the
        waiters that flush had already swapped out of the shared list."""

        async def main():
            journal = ExchangeJournal.open(tmp_path, fsync=True)
            gate = threading.Event()
            real_sync = journal.sync
            calls = {"count": 0}

            def gated_sync():
                calls["count"] += 1
                if calls["count"] == 1:
                    gate.wait(timeout=5.0)
                real_sync()

            monkeypatch.setattr(journal, "sync", gated_sync)
            batcher = GroupCommitBatcher(journal, window_s=0.001)
            parked = asyncio.ensure_future(batcher.append(b"req\n", digest=1))
            await asyncio.sleep(0.05)  # flush task is inside the gated fsync
            await batcher.close()
            record = await asyncio.wait_for(parked, timeout=2.0)
            assert record.id == 1
            gate.set()
            await asyncio.sleep(0.05)  # let the abandoned fsync drain
            journal.close()

        run(main())

    def test_fsync_failure_fails_every_parked_caller(self, tmp_path, monkeypatch):
        async def main():
            journal = ExchangeJournal.open(tmp_path, fsync=True)

            def broken_sync():
                raise OSError("disk on fire")

            monkeypatch.setattr(journal, "sync", broken_sync)
            batcher = GroupCommitBatcher(journal, window_s=0.001)
            results = await asyncio.gather(
                batcher.append(b"a\n", digest=1),
                batcher.append(b"b\n", digest=2),
                return_exceptions=True,
            )
            assert all(isinstance(r, OSError) for r in results)
            assert batcher.flushes == 0
            journal.close()

        run(main())


class TestPassThrough:
    def test_zero_window_is_per_record_fsync(self, tmp_path, fsync_counter):
        async def main():
            journal = ExchangeJournal.open(tmp_path, fsync=True)
            batcher = GroupCommitBatcher(journal, window_s=0.0)
            assert not batcher.batching
            for i in range(3):
                await batcher.append(f"req {i}\n".encode(), digest=i)
            await batcher.close()
            journal.close()

        run(main())
        assert fsync_counter["count"] >= 3

    def test_fsync_off_never_batches(self, tmp_path, fsync_counter):
        async def main():
            journal = ExchangeJournal.open(tmp_path, fsync=False)
            batcher = GroupCommitBatcher(journal, window_s=0.01)
            assert not batcher.batching
            record = await batcher.append(b"req\n", digest=1)
            assert record.id == 1
            await batcher.close()
            journal.close()

        run(main())
        assert fsync_counter["count"] == 0
        assert ExchangeJournal.open(tmp_path).verify() == []

    def test_negative_window_rejected(self, tmp_path):
        journal = ExchangeJournal.open(tmp_path)
        with pytest.raises(ValueError):
            GroupCommitBatcher(journal, window_s=-0.001)
        journal.close()


class TestCrashConsistency:
    def test_torn_tail_after_acked_window_keeps_acked_records(self, tmp_path):
        """Crash mid-append of a later record: every ACKed record survives
        reopen, the torn frame is truncated, verify stays green."""

        async def main():
            journal = ExchangeJournal.open(tmp_path, fsync=True)
            batcher = GroupCommitBatcher(journal, window_s=0.005)
            await asyncio.gather(
                *(
                    batcher.append(f"req {i}\n".encode(), digest=i)
                    for i in range(3)
                )
            )
            await batcher.close()
            # Simulated crash mid-append: half a frame hits the disk.
            segment = journal.segments()[-1]
            journal.close()
            with open(segment, "ab") as handle:
                handle.write(b"\x00\x01torn-frame-garbage")

        run(main())
        reopened = ExchangeJournal.open(tmp_path)
        assert reopened.verify() == []
        assert [record.id for record in reopened.records()] == [1, 2, 3]
        reopened.close()

    def test_unfsynced_tail_reopens_clean(self, tmp_path):
        """A crash inside the window (appended+flushed, fsync never ran)
        must reopen clean — those records were never acknowledged, so
        losing *or* keeping them is correct; corruption is not."""
        journal = ExchangeJournal.open(tmp_path, fsync=True)
        journal.append(b"acked\n", digest=1)  # per-record fsync
        journal.append(b"in-window\n", digest=2, sync=False)
        journal.close()
        reopened = ExchangeJournal.open(tmp_path)
        assert reopened.verify() == []
        ids = [record.id for record in reopened.records()]
        assert ids[0] == 1  # the acknowledged record can never be lost
        reopened.close()

    def test_rotation_inside_window_fsyncs_sealed_segment(
        self, tmp_path, fsync_counter
    ):
        """Deferred-fsync appends that trigger rotation must barrier the
        sealed segment before closing it."""
        journal = ExchangeJournal.open(tmp_path, fsync=True, segment_bytes=256)
        payload = b"x" * 120 + b"\n"
        for i in range(6):
            journal.append(payload, digest=i, sync=False)
        assert len(journal.segments()) > 1
        assert fsync_counter["count"] >= len(journal.segments()) - 1
        journal.sync()
        journal.close()
        reopened = ExchangeJournal.open(tmp_path)
        assert reopened.verify() == []
        assert sum(1 for _ in reopened.records()) == 6
        reopened.close()


class TestProxyIntegration:
    def test_proxied_exchanges_group_commit_and_verify(self, tmp_path):
        """End to end: a deployment with ``journal_group_commit_ms`` set
        journals every exchange durably and the journal verifies clean."""

        async def main():
            servers = [await EchoServer().start() for _ in range(2)]
            config = RddrConfig(
                protocol="tcp",
                journal_dir=str(tmp_path),
                journal_fsync=True,
                journal_group_commit_ms=5.0,
            )
            deployment = await repro.deploy(
                config, instances=[s.address for s in servers]
            )
            async with deployment:
                reader, writer = await asyncio.open_connection(
                    *deployment.address
                )
                replies = []
                for i in range(5):
                    writer.write(f"req {i}\n".encode())
                    await writer.drain()
                    replies.append(await reader.readline())
                writer.close()
                await writer.wait_closed()
            for server in servers:
                await server.close()
            return replies

        replies = run(main())
        assert replies == [f"req {i}\n".encode() for i in range(5)]
        journal = ExchangeJournal.open(tmp_path)
        assert journal.verify() == []
        records = list(journal.records())
        assert [record.id for record in records] == [1, 2, 3, 4, 5]
        # The journaled digest is of the response actually served.
        assert [record.digest for record in records] == [
            response_digest(reply) for reply in replies
        ]
        journal.close()
