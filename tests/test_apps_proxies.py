"""Tests for the HAProxy/nginx/Envoy simulators."""

from __future__ import annotations

import asyncio

from repro.apps.proxies import EnvoySim, HaproxySim, NginxSim, build_smuggling_payload
from repro.transport.retry import open_connection_retry
from repro.transport.streams import close_writer
from repro.web import App, HttpClient, serve_app, text_response
from repro.web.http11 import ParserOptions
from repro.web.server import HttpServer
from tests.helpers import run


def _backend_app() -> App:
    app = App("s1")

    @app.route("/public", methods=("GET", "POST"))
    async def public(ctx):
        return text_response("public ok")

    @app.route("/internal/secret")
    async def secret(ctx):
        return text_response("SECRET-DATA")

    return app


async def _lenient_backend() -> HttpServer:
    server = HttpServer(
        _backend_app(), parser_options=ParserOptions(lenient_te_whitespace=True)
    )
    await server.start()
    return server


class TestReverseProxying:
    def test_haproxy_forwards_benign_traffic(self):
        async def main():
            backend = await _lenient_backend()
            proxy = await HaproxySim(backend.address, deny_paths=["/internal"]).start()
            async with HttpClient(*proxy.address) as client:
                response = await client.get("/public")
            assert response.body == b"public ok"
            await proxy.close()
            await backend.close()

        run(main())

    def test_both_proxies_enforce_acl(self):
        async def main():
            backend = await _lenient_backend()
            for cls in (HaproxySim, NginxSim):
                proxy = await cls(backend.address, deny_paths=["/internal"]).start()
                async with HttpClient(*proxy.address) as client:
                    response = await client.get("/internal/secret")
                assert response.status == 403
                assert b"SECRET" not in response.body
                await proxy.close()
            await backend.close()

        run(main())

    def test_vulnerable_haproxy_desyncs(self):
        async def main():
            backend = await _lenient_backend()
            proxy = await HaproxySim(
                backend.address, version="1.5.3", deny_paths=["/internal"]
            ).start()
            assert proxy.vulnerable
            reader, writer = await open_connection_retry(*proxy.address)
            writer.write(build_smuggling_payload())
            await writer.drain()
            await asyncio.wait_for(reader.read(300), 2)
            writer.write(b"GET /public HTTP/1.1\r\nHost: x\r\n\r\n")
            await writer.drain()
            poisoned = await asyncio.wait_for(reader.read(500), 2)
            assert b"SECRET-DATA" in poisoned  # the queued smuggled response
            await close_writer(writer)
            await proxy.close()
            await backend.close()

        run(main())

    def test_fixed_haproxy_does_not_desync(self):
        async def main():
            backend = await _lenient_backend()
            proxy = await HaproxySim(
                backend.address, version="2.0.0", deny_paths=["/internal"]
            ).start()
            assert not proxy.vulnerable
            reader, writer = await open_connection_retry(*proxy.address)
            writer.write(build_smuggling_payload())
            await writer.drain()
            await asyncio.wait_for(reader.read(300), 2)
            writer.write(b"GET /public HTTP/1.1\r\nHost: x\r\n\r\n")
            await writer.drain()
            response = await asyncio.wait_for(reader.read(500), 2)
            assert b"SECRET-DATA" not in response
            await close_writer(writer)
            await proxy.close()
            await backend.close()

        run(main())

    def test_nginx_normalisation_defeats_smuggling(self):
        async def main():
            backend = await _lenient_backend()
            proxy = await NginxSim(backend.address, deny_paths=["/internal"]).start()
            reader, writer = await open_connection_retry(*proxy.address)
            writer.write(build_smuggling_payload())
            await writer.drain()
            await asyncio.wait_for(reader.read(300), 2)
            writer.write(b"GET /public HTTP/1.1\r\nHost: x\r\n\r\n")
            await writer.drain()
            response = await asyncio.wait_for(reader.read(500), 2)
            assert b"public ok" in response
            assert b"SECRET-DATA" not in response
            await close_writer(writer)
            await proxy.close()
            await backend.close()

        run(main())


class TestNginxStatic:
    FILES = {"/doc.bin": bytes(range(100)) + b"z" * 56}

    def test_full_document(self):
        async def main():
            server = await NginxSim(None, static_files=self.FILES).start()
            async with HttpClient(*server.address) as client:
                response = await client.get("/doc.bin")
            assert response.status == 200
            assert response.body == self.FILES["/doc.bin"]
            await server.close()

        run(main())

    def test_explicit_range(self):
        async def main():
            server = await NginxSim(None, static_files=self.FILES).start()
            async with HttpClient(*server.address) as client:
                response = await client.get("/doc.bin", headers={"Range": "bytes=10-19"})
            assert response.status == 206
            assert response.body == self.FILES["/doc.bin"][10:20]
            assert "bytes 10-19" in (response.header("Content-Range") or "")
            await server.close()

        run(main())

    def test_suffix_range_within_bounds(self):
        async def main():
            server = await NginxSim(None, static_files=self.FILES).start()
            async with HttpClient(*server.address) as client:
                response = await client.get("/doc.bin", headers={"Range": "bytes=-10"})
            assert response.status == 206
            assert response.body == self.FILES["/doc.bin"][-10:]
            await server.close()

        run(main())

    def test_vulnerable_version_leaks_on_overflow(self):
        async def main():
            server = await NginxSim(
                None, version="1.13.2", static_files=self.FILES
            ).start()
            assert server.range_vulnerable
            async with HttpClient(*server.address) as client:
                response = await client.get("/doc.bin", headers={"Range": "bytes=-500"})
            assert response.status == 206
            assert b"cached-secret" in response.body
            await server.close()

        run(main())

    def test_fixed_version_rejects_overflow(self):
        async def main():
            server = await NginxSim(
                None, version="1.13.4", static_files=self.FILES
            ).start()
            assert not server.range_vulnerable
            async with HttpClient(*server.address) as client:
                response = await client.get("/doc.bin", headers={"Range": "bytes=-500"})
            assert response.status == 416
            assert b"cached-secret" not in response.body
            await server.close()

        run(main())

    def test_invalid_ranges_rejected(self):
        async def main():
            server = await NginxSim(None, static_files=self.FILES).start()
            async with HttpClient(*server.address) as client:
                for bad in ("chunks=1-2", "bytes=abc-def", "bytes=200-300", "bytes=9-2"):
                    response = await client.get("/doc.bin", headers={"Range": bad})
                    assert response.status == 416, bad
            await server.close()

        run(main())


class TestEnvoySim:
    def test_transparent_http_forwarding(self):
        async def main():
            backend = await serve_app(_backend_app())
            envoy = await EnvoySim(backend.address).start()
            async with HttpClient(*envoy.address) as client:
                response = await client.get("/public")
            assert response.body == b"public ok"
            assert envoy.connections_total == 1
            assert envoy.bytes_proxied > 0
            await envoy.close()
            await backend.close()

        run(main())

    def test_transparent_pgwire_forwarding(self):
        async def main():
            from repro.pgwire import PgClient, serve_database
            from repro.sqlengine import Database

            db = Database()
            db.execute("CREATE TABLE t (a int); INSERT INTO t VALUES (7)")
            backend = await serve_database(db)
            envoy = await EnvoySim(backend.address).start()
            async with await PgClient.connect(*envoy.address) as client:
                outcome = await client.query("SELECT a FROM t")
            assert outcome.rows == [["7"]]
            await envoy.close()
            await backend.close()

        run(main())

    def test_dead_upstream_closes_client(self):
        async def main():
            backend = await serve_app(_backend_app())
            address = backend.address
            await backend.close()
            envoy = await EnvoySim(address).start()
            reader, writer = await open_connection_retry(*envoy.address)
            writer.write(b"GET / HTTP/1.1\r\n\r\n")
            await writer.drain()
            data = await asyncio.wait_for(reader.read(100), 5)
            assert data == b""
            await close_writer(writer)
            await envoy.close()

        run(main())
