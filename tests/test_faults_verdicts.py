"""Exact verdict/event coverage for the failure paths of both proxies:
per-instance deadline timeouts, instance_error, and a voting deployment
whose minority instance dies mid-exchange.
"""

from __future__ import annotations

import asyncio

from repro.apps.echo import EchoServer
from repro.core import events as ev
from repro.core.config import RddrConfig
from repro.core.incoming import IncomingRequestProxy
from repro.core.outgoing import OutgoingRequestProxy
from repro.obs import Observer
from repro.protocols import get_protocol
from repro.transport.retry import open_connection_retry
from repro.transport.server import start_server
from repro.transport.streams import close_writer, drain_write
from tests.helpers import run


async def _settled_traces(observer: Observer, proxy_name: str) -> list[dict]:
    """Traces for one proxy, after the sink has stopped growing."""
    previous = -1
    for _ in range(100):
        current = len(observer.traces())
        if current and current == previous:
            break
        previous = current
        await asyncio.sleep(0.02)
    return [t for t in observer.traces() if t["proxy"] == proxy_name]


async def _client_lines(address, lines, timeout: float = 3.0) -> list[bytes]:
    reader, writer = await open_connection_retry(*address)
    replies: list[bytes] = []
    try:
        for line in lines:
            writer.write(line + b"\n")
            await writer.drain()
            try:
                replies.append(await asyncio.wait_for(reader.readline(), timeout))
            except (asyncio.TimeoutError, ConnectionError):
                replies.append(b"")
    except ConnectionError:
        pass
    finally:
        await close_writer(writer)
    replies.extend(b"" for _ in range(len(lines) - len(replies)))
    return replies


class TestIncomingVerdicts:
    def test_deadline_timeout_verdict_and_event(self):
        async def main():
            async def silent(reader, writer):
                await reader.readline()
                await asyncio.sleep(30)

            observer = Observer()
            echo = await EchoServer().start()
            stuck = await start_server(silent)
            proxy = IncomingRequestProxy(
                [echo.address, stuck.address],
                get_protocol("tcp"),
                RddrConfig(
                    protocol="tcp",
                    exchange_timeout=5.0,
                    instance_response_deadline=0.2,
                ),
                observer=observer,
            )
            await proxy.start()
            assert await _client_lines(proxy.address, [b"hi"]) == [b""]
            traces = await _settled_traces(observer, proxy.name)
            assert traces[-1]["verdict"] == "timeout"
            # The *per-instance* deadline, not the exchange timeout.
            assert "0.2" in traces[-1]["reason"]
            timeouts = proxy.events.events(ev.TIMEOUT)
            assert len(timeouts) == 1
            assert proxy.metrics.timeouts == 1
            assert proxy.metrics.exchanges_blocked == 1
            await proxy.close()
            await echo.close()
            await stuck.close()

        run(main())

    def test_instance_closing_before_response_is_instance_error(self):
        async def main():
            async def mute(reader, writer):
                await reader.readline()
                # Close without answering: a crashed instance.

            observer = Observer()
            echo = await EchoServer().start()
            crashed = await start_server(mute)
            proxy = IncomingRequestProxy(
                [echo.address, crashed.address],
                get_protocol("tcp"),
                RddrConfig(protocol="tcp", exchange_timeout=2.0),
                observer=observer,
            )
            await proxy.start()
            assert await _client_lines(proxy.address, [b"hi"]) == [b""]
            traces = await _settled_traces(observer, proxy.name)
            assert traces[-1]["verdict"] == "instance_error"
            errors = proxy.events.events(ev.INSTANCE_ERROR)
            assert len(errors) == 1
            assert "instance 1" in errors[0].detail
            assert proxy.metrics.timeouts == 0
            await proxy.close()
            await echo.close()
            await crashed.close()

        run(main())

    def test_minority_death_under_vote_quarantine_blocks(self):
        async def main():
            async def one_shot(reader, writer):
                line = await reader.readline()
                writer.write(line)
                await drain_write(writer)
                # Dies after its first answer, mid-session.

            observer = Observer()
            servers = [await EchoServer().start() for _ in range(2)]
            dying = await start_server(one_shot)
            proxy = IncomingRequestProxy(
                [servers[0].address, servers[1].address, dying.address],
                get_protocol("tcp"),
                RddrConfig(
                    protocol="tcp",
                    exchange_timeout=2.0,
                    divergence_policy="vote",
                    quarantine_minority=True,
                    ephemeral_state=False,
                ),
                observer=observer,
            )
            await proxy.start()
            replies = await _client_lines(proxy.address, [b"a", b"b"])
            # Exchange 0 is unanimous; the death surfaces in exchange 1 and,
            # without degraded_quorum, voting cannot rescue a silent member.
            assert replies == [b"a\n", b""]
            traces = await _settled_traces(observer, proxy.name)
            assert [t["verdict"] for t in traces] == ["unanimous", "instance_error"]
            assert proxy.events.events(ev.INSTANCE_ERROR)
            assert proxy.events.events(ev.DEGRADED) == []
            assert proxy.metrics.exchanges_blocked == 1
            await proxy.close()
            for server in servers:
                await server.close()
            await dying.close()

        run(main())


class TestOutgoingVerdicts:
    def test_missing_instance_request_is_a_timeout(self):
        async def main():
            observer = Observer()
            backend = await EchoServer().start()
            proxy = OutgoingRequestProxy(
                backend.address, 2, get_protocol("tcp"),
                RddrConfig(
                    protocol="tcp",
                    exchange_timeout=2.0,
                    instance_response_deadline=0.25,
                ),
                observer=observer,
            )
            await proxy.start()

            async def talker() -> bytes:
                reader, writer = await open_connection_retry(
                    *proxy.address_for_instance(0)
                )
                try:
                    writer.write(b"x\n")
                    await writer.drain()
                    try:
                        return await asyncio.wait_for(reader.readline(), 5.0)
                    except (asyncio.TimeoutError, ConnectionError):
                        return b""
                finally:
                    await close_writer(writer)

            async def mute() -> bytes:
                reader, writer = await open_connection_retry(
                    *proxy.address_for_instance(1)
                )
                try:
                    return await asyncio.wait_for(reader.read(), 10.0)
                finally:
                    await close_writer(writer)

            replies = await asyncio.gather(talker(), mute())
            assert replies == [b"", b""]  # group torn down, no responses
            traces = await _settled_traces(observer, proxy.name)
            assert traces[-1]["verdict"] == "timeout"
            assert proxy.metrics.timeouts == 1
            divergences = proxy.events.events(ev.DIVERGENCE)
            assert len(divergences) == 1
            assert "missing/late instance request" in divergences[0].detail
            await proxy.close()
            await backend.close()

        run(main())

    def test_backend_death_is_an_instance_error(self):
        async def main():
            async def vanishing_backend(reader, writer):
                await reader.readline()
                # Closes without responding.

            observer = Observer()
            backend = await start_server(vanishing_backend)
            proxy = OutgoingRequestProxy(
                backend.address, 2, get_protocol("tcp"),
                RddrConfig(protocol="tcp", exchange_timeout=2.0),
                observer=observer,
            )
            await proxy.start()

            async def instance(index: int) -> bytes:
                reader, writer = await open_connection_retry(
                    *proxy.address_for_instance(index)
                )
                try:
                    writer.write(b"x\n")
                    await writer.drain()
                    try:
                        return await asyncio.wait_for(reader.readline(), 5.0)
                    except (asyncio.TimeoutError, ConnectionError):
                        return b""
                finally:
                    await close_writer(writer)

            replies = await asyncio.gather(instance(0), instance(1))
            assert replies == [b"", b""]
            errors = proxy.events.events(ev.INSTANCE_ERROR)
            assert len(errors) == 1
            assert "group 0" in errors[0].detail
            await proxy.close()
            await backend.close()

        run(main())
