"""Tests for the section IV-D extensions: signature learning and voting."""

from __future__ import annotations

import asyncio

import pytest

from repro.apps.echo import EchoServer
from repro.core import events as ev
from repro.core.config import RddrConfig
from repro.core.incoming import IncomingRequestProxy, _majority_indices
from repro.core.signatures import (
    DivergenceSignature,
    SignatureStore,
    normalize_request,
)
from repro.protocols import get_protocol
from repro.transport.retry import open_connection_retry
from repro.transport.streams import close_writer
from tests.helpers import run


class TestNormalization:
    def test_long_alnum_runs_wildcarded(self):
        a = normalize_request(b"GET /x?sid=AAAABBBBCCCC111 HTTP/1.1")
        b = normalize_request(b"GET /x?sid=ZZZZYYYYXXXX999 HTTP/1.1")
        assert a == b

    def test_short_runs_preserved(self):
        assert normalize_request(b"id=42") == b"id=42"

    def test_structure_differences_distinguish(self):
        assert normalize_request(b"GET /a HTTP/1.1") != normalize_request(
            b"GET /b HTTP/1.1"
        )


class TestSignatureStore:
    def test_learn_and_match(self):
        store = SignatureStore()
        store.learn(b"evil payload AAAABBBBCCCC", "token 0 differs")
        match = store.match(b"evil payload DDDDEEEEFFFF")
        assert isinstance(match, DivergenceSignature)
        assert match.reason == "token 0 differs"
        assert store.hits == 1

    def test_non_matching_request(self):
        store = SignatureStore()
        store.learn(b"evil payload", "r")
        assert store.match(b"benign request") is None
        assert store.hits == 0

    def test_eviction_bounds_memory(self):
        store = SignatureStore(max_signatures=3)
        for i in range(10):
            store.learn(f"pattern-{i}".encode(), "r")
        assert len(store) == 3

    def test_ttl_expiry(self):
        store = SignatureStore(ttl=100.0)
        ticks = iter([0.0, 50.0, 250.0])
        store._clock = lambda: next(ticks)  # type: ignore[assignment]
        store.learn(b"evil", "r")  # created at t=0
        assert store.match(b"evil") is not None  # t=50: still fresh
        assert store.match(b"evil") is None  # t=250: expired


async def _tcp_exchange(address, line: bytes, timeout: float = 2.0) -> bytes | None:
    reader, writer = await open_connection_retry(*address)
    try:
        writer.write(line + b"\n")
        await writer.drain()
        reply = await asyncio.wait_for(reader.readline(), timeout)
        return reply if reply else None
    except (asyncio.TimeoutError, ConnectionError):
        return None
    finally:
        await close_writer(writer)


class TestSignatureLearningEndToEnd:
    def test_repeat_exploit_blocked_without_replication(self):
        async def main():
            # v2 diverges only on lines containing "exploit"
            class SelectiveBug(EchoServer):
                async def _serve(self, reader, writer):
                    while True:
                        try:
                            line = await reader.readuntil(b"\n")
                        except (asyncio.IncompleteReadError, ConnectionError):
                            return
                        text = line.rstrip(b"\n")
                        if b"exploit" in text:
                            text += b" LEAKED-BYTES"
                        writer.write(text + b"\n")
                        await writer.drain()

            good = await EchoServer().start()
            bad = await SelectiveBug().start()
            proxy = IncomingRequestProxy(
                [good.address, bad.address],
                get_protocol("tcp"),
                RddrConfig(
                    protocol="tcp", exchange_timeout=2.0, signature_learning=True
                ),
            )
            await proxy.start()

            assert await _tcp_exchange(proxy.address, b"hello") == b"hello\n"

            # first exploit: replicated, diverges, learned.  The nonce is
            # long enough (>= 8 alnum chars) to be wildcarded, like the
            # session ids real exploit tooling rotates per attempt.
            assert await _tcp_exchange(proxy.address, b"exploit run AAAABBBB0001") is None
            assert len(proxy.signatures) == 1
            exchanges_after_first = proxy.metrics.exchanges_total

            # repeat with a different nonce: rejected pre-replication
            assert await _tcp_exchange(proxy.address, b"exploit run ZZZZYYYY9999") is None
            blocked = proxy.events.events(ev.SIGNATURE_BLOCKED)
            assert len(blocked) == 1
            assert proxy.signatures.hits == 1

            # benign traffic still flows afterwards
            assert await _tcp_exchange(proxy.address, b"still fine") == b"still fine\n"
            assert proxy.metrics.exchanges_total > exchanges_after_first

            await proxy.close()
            await good.close()
            await bad.close()

        run(main())

    def test_learning_disabled_by_default(self):
        async def main():
            good = await EchoServer().start()
            bad = await EchoServer(tag="bug").start()
            proxy = IncomingRequestProxy(
                [good.address, bad.address],
                get_protocol("tcp"),
                RddrConfig(protocol="tcp", exchange_timeout=2.0),
            )
            await proxy.start()
            await _tcp_exchange(proxy.address, b"anything")
            assert len(proxy.signatures) == 0
            await proxy.close()
            await good.close()
            await bad.close()

        run(main())


class TestMajority:
    def test_strict_majority_found(self):
        masked = [(b"a",), (b"a",), (b"b",)]
        assert _majority_indices(masked) == [0, 1]

    def test_no_majority_on_even_split(self):
        assert _majority_indices([(b"a",), (b"b",)]) is None

    def test_no_majority_three_way(self):
        assert _majority_indices([(b"a",), (b"b",), (b"c",)]) is None

    def test_unanimous_is_majority(self):
        assert _majority_indices([(b"a",)] * 3) == [0, 1, 2]


class TestVotingPolicy:
    async def _deployment(self, *, quarantine: bool):
        good1 = await EchoServer().start()
        good2 = await EchoServer().start()
        bad = await EchoServer(tag="compromised").start()
        proxy = IncomingRequestProxy(
            [good1.address, good2.address, bad.address],
            get_protocol("tcp"),
            RddrConfig(
                protocol="tcp",
                exchange_timeout=2.0,
                divergence_policy="vote",
                quarantine_minority=quarantine,
            ),
        )
        await proxy.start()
        return proxy, [good1, good2, bad]

    def test_majority_response_forwarded(self):
        async def main():
            proxy, servers = await self._deployment(quarantine=False)
            reply = await _tcp_exchange(proxy.address, b"hello")
            assert reply == b"hello\n"  # the majority's answer, not blocked
            votes = proxy.events.events(ev.VOTE_OVERRIDE)
            assert len(votes) == 1
            assert "instance 2" not in votes[0].detail or "outvoted" in votes[0].detail
            await proxy.close()
            for server in servers:
                await server.close()

        run(main())

    def test_quarantine_drops_minority(self):
        async def main():
            proxy, servers = await self._deployment(quarantine=True)
            reader, writer = await open_connection_retry(*proxy.address)
            writer.write(b"first\n")
            await writer.drain()
            assert await reader.readline() == b"first\n"
            assert len(proxy.events.events(ev.QUARANTINE)) == 1
            # subsequent exchanges on the same connection run on the
            # surviving pair and are unanimous
            writer.write(b"second\n")
            await writer.drain()
            assert await reader.readline() == b"second\n"
            assert len(proxy.events.events(ev.VOTE_OVERRIDE)) == 1
            await close_writer(writer)
            await proxy.close()
            for server in servers:
                await server.close()

        run(main())

    def test_two_instances_cannot_vote(self):
        async def main():
            good = await EchoServer().start()
            bad = await EchoServer(tag="bug").start()
            proxy = IncomingRequestProxy(
                [good.address, bad.address],
                get_protocol("tcp"),
                RddrConfig(
                    protocol="tcp", exchange_timeout=2.0, divergence_policy="vote"
                ),
            )
            await proxy.start()
            # 1 vs 1 has no strict majority: falls back to blocking
            assert await _tcp_exchange(proxy.address, b"x") is None
            assert len(proxy.events.divergences()) == 1
            await proxy.close()
            await good.close()
            await bad.close()

        run(main())

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            IncomingRequestProxy(
                [("127.0.0.1", 1), ("127.0.0.1", 2)],
                get_protocol("tcp"),
                RddrConfig(protocol="tcp", divergence_policy="retry"),
            )

    def test_config_round_trip_includes_extensions(self):
        config = RddrConfig(
            divergence_policy="vote",
            quarantine_minority=True,
            signature_learning=True,
            signature_ttl=30.0,
        )
        restored = RddrConfig.from_dict(config.to_dict())
        assert restored.divergence_policy == "vote"
        assert restored.quarantine_minority is True
        assert restored.signature_learning is True
        assert restored.signature_ttl == 30.0
