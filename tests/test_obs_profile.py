"""Tests for the performance-observability layer: StageProfiler,
RuntimeProbe, trace sampling, the null-trace fast path, and sink drop
accounting."""

from __future__ import annotations

import asyncio
import gc

import repro
from repro.apps.echo import EchoServer
from repro.core.config import RddrConfig
from repro.obs import (
    STAGE_BUCKETS,
    NullExchangeTrace,
    Observer,
    RuntimeProbe,
    StageProfiler,
    TraceSampler,
    TraceSink,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs import trace as trace_mod
from tests.helpers import run


def _make_trace(tracer, *, exchange=0, stages=("replicate", "diff")):
    trace = tracer.begin(
        proxy="p-in", protocol="tcp", direction="incoming", exchange=exchange
    )
    for name in stages:
        with trace.span(name):
            pass
    trace.set_verdict("unanimous")
    trace.finish()
    return trace


# ------------------------------------------------------------- profiler


class TestStageProfiler:
    def test_records_stages_and_root_exchange(self):
        registry = MetricsRegistry()
        profiler = StageProfiler(registry)
        sink = TraceSink()
        tracer = trace_mod.Tracer(sink)
        profiler.record_trace(_make_trace(tracer))
        summary = profiler.summary(proxy="p-in")
        assert set(summary) == {"exchange", "replicate", "diff"}
        assert summary["diff"]["count"] == 1
        assert summary["diff"]["p99_ms"] >= 0.0

    def test_exemplar_is_last_exchange_in_slowest_bucket(self):
        registry = MetricsRegistry()
        profiler = StageProfiler(registry)

        class _Clock:
            now = 0.0

            def __call__(self):
                return self.now

        clock = _Clock()
        tracer = trace_mod.Tracer(TraceSink(), clock=clock)
        # exchange 1 is far slower than 0 and 2, so the slowest populated
        # bucket holds exactly one observation — exchange 1's.
        for exchange, duration in ((0, 0.001), (1, 0.5), (2, 0.001)):
            trace = tracer.begin(
                proxy="p-in", protocol="tcp", direction="incoming",
                exchange=exchange,
            )
            clock.now += duration
            trace.set_verdict("unanimous")
            trace.finish()
            profiler.record_trace(trace)
        summary = profiler.summary(proxy="p-in")
        assert summary["exchange"]["slowest_exemplar"] == "p-in-000001"

    def test_histogram_exported_via_registry(self):
        registry = MetricsRegistry()
        profiler = StageProfiler(registry)
        tracer = trace_mod.Tracer(TraceSink())
        profiler.record_trace(_make_trace(tracer))
        text = registry.expose_text()
        assert "rddr_stage_seconds_bucket" in text
        assert 'stage="diff"' in text

    def test_buckets_are_increasing(self):
        assert list(STAGE_BUCKETS) == sorted(STAGE_BUCKETS)
        assert STAGE_BUCKETS[0] < 1e-5 and STAGE_BUCKETS[-1] > 1.0


# ---------------------------------------------------------------- probe


class TestRuntimeProbe:
    def test_probe_samples_lag_gc_and_rss(self):
        async def scenario():
            registry = MetricsRegistry()
            probe = RuntimeProbe(registry, interval=0.01, service="t")
            await probe.start()
            for _ in range(3):
                await asyncio.sleep(0.02)
                gc.collect()
            await probe.stop()
            return registry, probe.summary()

        registry, summary = run(scenario())
        assert summary["eventloop_lag_ms"]["samples"] >= 2
        assert summary["gc"]["pauses"] >= 3
        assert summary["rss_bytes"]["last"] > 0
        text = registry.expose_text()
        assert "rddr_eventloop_lag_seconds" in text
        assert "rddr_rss_bytes" in text

    def test_stop_removes_gc_callback(self):
        async def scenario():
            probe = RuntimeProbe(MetricsRegistry(), interval=0.01, service="t")
            await probe.start()
            await probe.stop()
            return probe

        probe = run(scenario())
        assert probe._on_gc not in gc.callbacks


# ------------------------------------------------------------- sampling


class TestTraceSampler:
    def test_rate_bounds(self):
        assert all(TraceSampler(1.0, 0).sampled(i) for i in range(64))
        assert not any(TraceSampler(0.0, 0).sampled(i) for i in range(64))

    def test_deterministic_across_instances(self):
        a = TraceSampler(0.5, 7)
        b = TraceSampler(0.5, 7)
        picks_a = [i for i in range(512) if a.sampled(i)]
        picks_b = [i for i in range(512) if b.sampled(i)]
        assert picks_a == picks_b
        assert 128 < len(picks_a) < 384  # roughly half

    def test_seed_changes_selection(self):
        picks_0 = {i for i in range(512) if TraceSampler(0.5, 0).sampled(i)}
        picks_1 = {i for i in range(512) if TraceSampler(0.5, 1).sampled(i)}
        assert picks_0 != picks_1

    def test_invalid_rate_rejected(self):
        for rate in (-0.1, 1.1):
            try:
                TraceSampler(rate, 0)
            except ValueError:
                continue
            raise AssertionError(f"rate {rate} accepted")


class TestNullTracePath:
    def test_sampled_out_exchange_gets_null_trace(self):
        observer = Observer()
        trace = observer.begin_exchange(
            proxy="p",
            protocol="tcp",
            direction="incoming",
            exchange=3,
            sampler=TraceSampler(0.0, 0),
        )
        assert isinstance(trace, NullExchangeTrace)
        assert not trace.sampled
        with trace.span("replicate", instance=0) as span:
            span.attrs["ignored"] = True
        assert trace.instance_timings() == {}

    def test_null_trace_verdict_still_counted_not_exported(self):
        observer = Observer()
        trace = observer.begin_exchange(
            proxy="p",
            protocol="tcp",
            direction="incoming",
            exchange=0,
            sampler=TraceSampler(0.0, 0),
        )
        trace.set_verdict("unanimous")
        assert observer.finish_exchange(trace) is None
        assert observer.traces() == []
        snapshot = observer.metrics_snapshot()
        series = snapshot["rddr_exchanges_total"]["series"]
        assert any(
            entry["labels"]["verdict"] == "unanimous" and entry["value"] == 1.0
            for entry in series
        )

    def test_zero_span_allocations_when_sampled_out(self, monkeypatch):
        """Acceptance: with ``trace_sample_rate=0`` the incoming proxy's
        per-exchange path performs zero Span allocations."""
        allocations = []
        real_init = trace_mod.Span.__init__

        def counting_init(self, *args, **kwargs):
            allocations.append(1)
            real_init(self, *args, **kwargs)

        monkeypatch.setattr(trace_mod.Span, "__init__", counting_init)

        async def scenario():
            servers = [await EchoServer(name=f"e{i}").start() for i in range(2)]
            config = RddrConfig(protocol="tcp", trace_sample_rate=0.0)
            deployment = await repro.deploy(
                instances=[s.address for s in servers],
                config=config,
                name="null-path",
            )
            baseline = len(allocations)
            reader, writer = await asyncio.open_connection(*deployment.address)
            for i in range(5):
                writer.write(f"ping {i}\n".encode())
                await writer.drain()
                assert await reader.readline()
            writer.close()
            await writer.wait_closed()
            await deployment.close()
            for server in servers:
                await server.close()
            return len(allocations) - baseline

        assert run(scenario()) == 0


# ------------------------------------------------------------ sink drop


class TestSinkDropAccounting:
    def test_ring_wrap_without_stream_counts_drops(self):
        sink = TraceSink(capacity=2)
        drops = []
        sink.on_drop = lambda: drops.append(1)
        for i in range(5):
            sink.emit({"exchange": i})
        assert sink.dropped == 3
        assert len(drops) == 3
        assert [t["exchange"] for t in sink.traces()] == [3, 4]

    def test_stream_attached_wrap_is_not_a_loss(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        with open(path, "w") as stream:
            sink = TraceSink(capacity=2, stream=stream)
            for i in range(5):
                sink.emit({"exchange": i})
        assert sink.dropped == 0
        assert len(path.read_text().splitlines()) == 5

    def test_observer_wires_drop_counter(self):
        observer = Observer(sink=TraceSink(capacity=1))
        tracer = observer.tracer
        for exchange in range(3):
            trace = tracer.begin(
                proxy="p", protocol="tcp", direction="incoming", exchange=exchange
            )
            trace.set_verdict("unanimous")
            observer.finish_exchange(trace)
        snapshot = observer.metrics_snapshot()
        series = snapshot["rddr_traces_dropped_total"]["series"]
        assert series and series[0]["value"] == 2.0
