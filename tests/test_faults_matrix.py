"""The fault x policy verdict matrix.

Every injectable fault kind is driven through a 3-instance incoming
deployment under each divergence policy, and the *exact* final verdict,
client-visible reply, and event kind are asserted.  The same
:class:`FaultSchedule` is handed to all three shims — only the addressed
instance fires, which is the per-instance addressability contract.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.apps.echo import EchoServer
from repro.core import events as ev
from repro.core.config import RddrConfig
from repro.core.incoming import IncomingRequestProxy
from repro.faults import FaultProxy, FaultSchedule, FaultSpec
from repro.obs import Observer
from repro.protocols import get_protocol
from repro.transport.retry import open_connection_retry
from repro.transport.streams import close_writer
from tests.helpers import run

DEADLINE = 0.3


def _config(policy: str) -> RddrConfig:
    return RddrConfig(
        protocol="tcp",
        exchange_timeout=5.0,
        instance_response_deadline=DEADLINE,
        ephemeral_state=False,
        divergence_policy="block" if policy == "block" else "vote",
        degraded_quorum=(policy == "degraded"),
    )


async def _client(address, lines: list[bytes], timeout: float = 3.0) -> list[bytes]:
    """One reply line per request line; ``b""`` for a closed/silent proxy."""
    reader, writer = await open_connection_retry(*address)
    replies: list[bytes] = []
    try:
        for line in lines:
            writer.write(line + b"\n")
            await writer.drain()
            try:
                replies.append(await asyncio.wait_for(reader.readline(), timeout))
            except (asyncio.TimeoutError, ConnectionError):
                replies.append(b"")
    except ConnectionError:
        pass
    finally:
        await close_writer(writer)
    replies.extend(b"" for _ in range(len(lines) - len(replies)))
    return replies


async def _run_case(policy: str, spec: FaultSpec, lines: list[bytes]):
    observer = Observer()
    schedule = FaultSchedule(specs=[spec])
    servers = [await EchoServer().start() for _ in range(3)]
    shims = [
        await FaultProxy(
            server.address, schedule, instance=index, observer=observer
        ).start()
        for index, server in enumerate(servers)
    ]
    proxy = IncomingRequestProxy(
        [shim.address for shim in shims],
        get_protocol("tcp"),
        _config(policy),
        observer=observer,
    )
    await proxy.start()
    try:
        replies = await _client(proxy.address, lines)
    finally:
        await proxy.close()
        for shim in shims:
            await shim.close()
        for server in servers:
            await server.close()
    # The client can observe EOF before the handler's finally block files
    # the trace; wait for the sink to settle.
    previous = -1
    for _ in range(100):
        current = len(observer.traces())
        if current and current == previous:
            break
        previous = current
        await asyncio.sleep(0.02)
    verdicts = [
        trace["verdict"]
        for trace in observer.traces()
        if trace["proxy"] == proxy.name
    ]
    return replies, verdicts, proxy


#: fault kind -> (spec, request lines, {policy: (final verdict, final reply)})
CASES = {
    "stall": (
        FaultSpec(kind="stall", instance=2, exchange=0, delay_ms=600.0),
        [b"hi"],
        {
            "block": ("timeout", b""),
            "vote": ("timeout", b""),
            "degraded": ("degraded", b"hi\n"),
        },
    ),
    "corrupt_bytes": (
        FaultSpec(kind="corrupt_bytes", instance=2, exchange=0, offset=0, xor_mask=0x01),
        [b"hi"],
        {
            "block": ("divergent", b""),
            "vote": ("vote_majority", b"hi\n"),
            "degraded": ("vote_majority", b"hi\n"),
        },
    ),
    "close_mid_response": (
        FaultSpec(kind="close_mid_response", instance=2, exchange=0),
        [b"hi"],
        {
            "block": ("divergent", b""),
            "vote": ("vote_majority", b"hi\n"),
            "degraded": ("vote_majority", b"hi\n"),
        },
    ),
    "truncate_response": (
        FaultSpec(kind="truncate_response", instance=2, exchange=0),
        [b"hi"],
        {
            "block": ("timeout", b""),
            "vote": ("timeout", b""),
            "degraded": ("degraded", b"hi\n"),
        },
    ),
    # A duplicated response poisons the *next* exchange: the stale line
    # sits buffered and answers exchange 1 in place of the real reply.
    "duplicate_response": (
        FaultSpec(kind="duplicate_response", instance=2, exchange=0),
        [b"one", b"two"],
        {
            "block": ("divergent", b""),
            "vote": ("vote_majority", b"two\n"),
            "degraded": ("vote_majority", b"two\n"),
        },
    ),
    # Accept-drop: the TCP connect succeeds but the shim hangs up before a
    # byte flows, so the loss surfaces inside exchange 0.
    "connect_refused": (
        FaultSpec(kind="connect_refused", instance=2, exchange=0),
        [b"hi"],
        {
            "block": ("instance_error", b""),
            "vote": ("instance_error", b""),
            "degraded": ("degraded", b"hi\n"),
        },
    ),
}

EVENT_FOR = {
    "timeout": ev.TIMEOUT,
    "divergent": ev.DIVERGENCE,
    "vote_majority": ev.VOTE_OVERRIDE,
    "degraded": ev.DEGRADED,
    "instance_error": ev.INSTANCE_ERROR,
}


@pytest.mark.parametrize("policy", ["block", "vote", "degraded"])
@pytest.mark.parametrize("kind", sorted(CASES))
def test_fault_policy_matrix(kind: str, policy: str):
    spec, lines, expectations = CASES[kind]
    verdict_expected, reply_expected = expectations[policy]

    async def main():
        replies, verdicts, proxy = await _run_case(policy, spec, lines)
        assert replies[-1] == reply_expected
        assert verdicts, "no exchange trace recorded"
        assert verdicts[-1] == verdict_expected
        assert proxy.events.events(EVENT_FOR[verdict_expected])
        if verdict_expected == "degraded":
            assert proxy.metrics.degraded_exchanges == 1
            assert proxy.metrics.exchanges_blocked == 0
        else:
            assert proxy.metrics.degraded_exchanges == 0
        if verdict_expected == "timeout":
            assert proxy.metrics.timeouts == 1

    run(main())


def test_duplicate_first_exchange_stays_unanimous():
    spec, lines, _ = CASES["duplicate_response"]

    async def main():
        _, verdicts, _ = await _run_case("block", spec, lines)
        assert verdicts[0] == "unanimous"

    run(main())
