"""Endpoint tests for the RESTful library servers."""

from __future__ import annotations

import json

from repro.apps.restful import (
    make_decrypt_server,
    make_markdown_server,
    make_sanitize_server,
    make_svg_server,
)
from repro.apps.restful.libs import (
    CairosvgLike,
    CryptoLike,
    LxmlCleanLike,
    Markdown2Like,
    PyRsaLike,
    SvglibLike,
    benign_svg,
    encrypt,
)
from repro.web import HttpClient, serve_app
from tests.helpers import run


def _post(server, path: str, payload: dict):
    async def main():
        http = await serve_app(server)
        async with HttpClient(*http.address) as client:
            response = await client.post(
                path,
                body=json.dumps(payload).encode(),
                headers={"Content-Type": "application/json"},
            )
        await http.close()
        return response

    return run(main())


class TestDecryptServer:
    def test_round_trip(self):
        response = _post(
            make_decrypt_server(CryptoLike()),
            "/decrypt",
            {"ciphertext_hex": encrypt(b"payload").hex()},
        )
        assert response.status == 200
        assert json.loads(response.body) == {"plaintext": "payload"}

    def test_bad_hex_is_400(self):
        response = _post(
            make_decrypt_server(PyRsaLike()), "/decrypt", {"ciphertext_hex": "zz"}
        )
        assert response.status == 400

    def test_missing_field_is_400(self):
        response = _post(make_decrypt_server(PyRsaLike()), "/decrypt", {})
        assert response.status == 400

    def test_decryption_error_is_clean_400(self):
        response = _post(
            make_decrypt_server(CryptoLike()), "/decrypt", {"ciphertext_hex": "00"}
        )
        assert response.status == 400
        assert json.loads(response.body)["error"] == "decryption failed"

    def test_health(self):
        async def main():
            http = await serve_app(make_decrypt_server(PyRsaLike()))
            async with HttpClient(*http.address) as client:
                response = await client.get("/health")
            await http.close()
            return response

        assert run(main()).status == 200


class TestMarkdownServer:
    def test_render(self):
        response = _post(
            make_markdown_server(Markdown2Like()), "/render", {"markdown": "# Hi"}
        )
        assert response.status == 200
        assert "<h1>Hi</h1>" in json.loads(response.body)["html"]

    def test_non_json_body_is_400(self):
        async def main():
            http = await serve_app(make_markdown_server(Markdown2Like()))
            async with HttpClient(*http.address) as client:
                response = await client.post("/render", body=b"not json")
            await http.close()
            return response

        assert run(main()).status == 400


class TestSvgServer:
    def test_convert(self):
        response = _post(
            make_svg_server(CairosvgLike()), "/convert", {"svg": benign_svg()}
        )
        assert response.status == 200
        png = bytes.fromhex(json.loads(response.body)["png_hex"])
        assert png.startswith(b"\x89PNG")

    def test_conversion_error_is_422(self):
        response = _post(
            make_svg_server(SvglibLike()), "/convert", {"svg": "<html></html>"}
        )
        assert response.status == 422


class TestSanitizeServer:
    def test_sanitize(self):
        response = _post(
            make_sanitize_server(LxmlCleanLike()),
            "/sanitize",
            {"html": "<p>x</p><script>evil()</script>"},
        )
        assert response.status == 200
        assert "<script>" not in json.loads(response.body)["html"]
