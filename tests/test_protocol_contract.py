"""The versioned protocol-plugin contract (PR 7's API redesign).

``ProtocolRegistry.register`` is the contract gate: a module missing a
required method, declaring no/an incompatible ``API_VERSION``, or
implementing half a capability pair must fail *at registration* with a
:class:`ProtocolContractError` that names the defect — never with an
``AttributeError`` mid-exchange.  Every in-tree module declares its
version and an explicit :class:`ProtocolCapabilities` descriptor that
matches what it implements.
"""

from __future__ import annotations

import pytest

from repro.protocols import get_protocol, registry
from repro.protocols.base import (
    PROTOCOL_API_VERSION,
    ProtocolCapabilities,
    ProtocolContractError,
    ProtocolModule,
    ProtocolRegistry,
    capabilities_of,
)

IN_TREE = ("tcp", "json", "http", "pgwire", "resp")


class _Complete(ProtocolModule):
    """Minimal valid module; subclasses break one thing at a time."""

    name = "contract-complete"
    API_VERSION = PROTOCOL_API_VERSION

    async def read_client_message(self, reader, state):
        return None

    async def read_server_message(self, reader, state, request):
        return b""

    def tokenize(self, message):
        return [message]

    def block_response(self, message):
        return b""


def _fresh() -> ProtocolRegistry:
    return ProtocolRegistry()


class TestRegisterValidation:
    def test_complete_module_registers(self):
        reg = _fresh()
        reg.register(_Complete)
        assert isinstance(reg.create("contract-complete"), _Complete)

    def test_non_subclass_rejected(self):
        with pytest.raises(ProtocolContractError, match="not a ProtocolModule"):
            _fresh().register(object)  # type: ignore[arg-type]

    def test_contract_error_is_a_type_error(self):
        # Callers that guarded register() with `except TypeError` keep
        # working across the redesign.
        assert issubclass(ProtocolContractError, TypeError)

    def test_missing_name_rejected(self):
        class NoName(_Complete):
            name = ""

        with pytest.raises(ProtocolContractError, match="'name'"):
            _fresh().register(NoName)

    def test_missing_required_method_named_in_error(self):
        class NoTokenize(ProtocolModule):
            name = "contract-no-tokenize"
            API_VERSION = PROTOCOL_API_VERSION

            async def read_client_message(self, reader, state):
                return None

            async def read_server_message(self, reader, state, request):
                return b""

            def block_response(self, message):
                return b""

        with pytest.raises(ProtocolContractError) as excinfo:
            _fresh().register(NoTokenize)
        assert "tokenize" in str(excinfo.value)
        assert PROTOCOL_API_VERSION in str(excinfo.value)

    def test_unversioned_module_rejected(self):
        class Legacy(ProtocolModule):
            name = "contract-legacy"

            async def read_client_message(self, reader, state):
                return None

            async def read_server_message(self, reader, state, request):
                return b""

            def tokenize(self, message):
                return [message]

            def block_response(self, message):
                return b""

        with pytest.raises(ProtocolContractError, match="API_VERSION"):
            _fresh().register(Legacy)

    def test_unparseable_version_rejected(self):
        class Garbled(_Complete):
            name = "contract-garbled"
            API_VERSION = "one-point-oh"

        with pytest.raises(ProtocolContractError, match="unparseable"):
            _fresh().register(Garbled)

    def test_major_mismatch_rejected(self):
        class FutureMajor(_Complete):
            name = "contract-future-major"
            API_VERSION = "2.0"

        with pytest.raises(ProtocolContractError, match="major"):
            _fresh().register(FutureMajor)

    def test_newer_minor_rejected(self):
        class FutureMinor(_Complete):
            name = "contract-future-minor"
            API_VERSION = "1.99"

        with pytest.raises(ProtocolContractError, match="newer"):
            _fresh().register(FutureMinor)

    def test_half_snapshot_pair_rejected(self):
        class HalfSnapshot(_Complete):
            name = "contract-half-snapshot"

            def snapshot_request(self):
                return b"SNAP\n"

        with pytest.raises(ProtocolContractError, match="restore_request"):
            _fresh().register(HalfSnapshot)

    def test_registry_package_wrapper_still_raises_type_error(self):
        from repro.protocols import register

        with pytest.raises(TypeError):
            register(object)  # type: ignore[arg-type]


class TestInTreeModules:
    def test_all_declare_current_api_version(self):
        for name in IN_TREE:
            protocol = get_protocol(name)
            assert type(protocol).API_VERSION == PROTOCOL_API_VERSION, name

    def test_all_declare_explicit_capabilities(self):
        for name in IN_TREE:
            caps = get_protocol(name).capabilities()
            assert isinstance(caps, ProtocolCapabilities), name

    def test_declared_capabilities_match_implemented_hooks(self):
        """The explicit descriptors agree with hook detection — a module
        cannot claim surface it does not implement (or vice versa)."""
        from repro.protocols.base import _detect_capabilities

        for name in IN_TREE:
            protocol = get_protocol(name)
            assert protocol.capabilities() == _detect_capabilities(
                type(protocol)
            ), name

    def test_expected_capability_matrix(self):
        rows = {
            name: capabilities_of(get_protocol(name)) for name in IN_TREE
        }
        assert rows["tcp"] == ProtocolCapabilities(
            liveness=True, mutation=True, execution_index=True
        )
        assert rows["json"] == ProtocolCapabilities(
            mutation=True, execution_index=True
        )
        assert rows["http"] == ProtocolCapabilities(
            state_classification=True,
            finish_exchange=True,
            mutation=True,
            execution_index=True,
        )
        assert rows["resp"] == ProtocolCapabilities(
            liveness=True,
            snapshots=True,
            state_classification=True,
            mutation=True,
            execution_index=True,
            state_digest=True,
        )
        assert rows["pgwire"] == ProtocolCapabilities(
            liveness=True,
            snapshots=True,
            state_classification=True,
            handshake=True,
            mutation=True,
            execution_index=True,
        )

    def test_in_tree_modules_pass_validation(self):
        for name in IN_TREE:
            registry.validate(type(get_protocol(name)))


class TestCapabilitiesOf:
    def test_duck_typed_object_falls_back_to_detection(self):
        class Ducky:
            def liveness_request(self):
                return b"PING\n"

        caps = capabilities_of(Ducky())
        assert caps.liveness
        assert not caps.snapshots

    def test_explicit_descriptor_wins(self):
        class Claims(_Complete):
            name = "contract-claims"

            def capabilities(self):
                return ProtocolCapabilities(liveness=True)

        assert capabilities_of(Claims()).liveness
