"""Integration tests for the HTTP server and client over real sockets."""

from __future__ import annotations

import asyncio

from repro.transport.tls import client_ssl_context, server_ssl_context
from repro.web import App, HttpClient, json_response, serve_app, text_response
from repro.web.sessions import SessionStore
from repro.web.csrf import generate_token, hidden_field, tokens_match
from tests.helpers import run


def _demo_app() -> App:
    app = App("demo")

    @app.route("/ping")
    async def ping(ctx):
        return text_response("pong")

    @app.route("/big")
    async def big(ctx):
        return text_response("x" * 2048)

    @app.route("/boom")
    async def boom(ctx):
        raise RuntimeError("handler bug")

    @app.route("/echo", methods=("POST",))
    async def echo(ctx):
        return json_response({"len": len(ctx.request.body)})

    return app


class TestServerClient:
    def test_basic_request(self):
        async def main():
            server = await serve_app(_demo_app())
            async with HttpClient(*server.address) as client:
                response = await client.get("/ping")
            assert response.status == 200
            assert response.body == b"pong"
            await server.close()

        run(main())

    def test_keep_alive_reuses_connection(self):
        async def main():
            server = await serve_app(_demo_app())
            async with HttpClient(*server.address) as client:
                for _ in range(5):
                    response = await client.get("/ping")
                    assert response.status == 200
            await server.close()

        run(main())

    def test_handler_exception_becomes_500(self):
        async def main():
            server = await serve_app(_demo_app())
            async with HttpClient(*server.address) as client:
                response = await client.get("/boom")
                assert response.status == 500
                # connection survives the handler crash
                response = await client.get("/ping")
                assert response.status == 200
            await server.close()

        run(main())

    def test_post_body(self):
        async def main():
            server = await serve_app(_demo_app())
            async with HttpClient(*server.address) as client:
                response = await client.post("/echo", body=b"x" * 100)
            assert response.body == b'{"len":100}'
            await server.close()

        run(main())

    def test_gzip_negotiated(self):
        async def main():
            server = await serve_app(_demo_app(), gzip_responses=True)
            async with HttpClient(*server.address) as client:
                response = await client.get("/big", headers={"Accept-Encoding": "gzip"})
                assert response.header("Content-Encoding") == "gzip"
                assert len(response.body) < 2048
                assert response.decompressed_body() == b"x" * 2048
                # without Accept-Encoding the body is plain
                response = await client.get("/big")
                assert response.header("Content-Encoding") is None
            await server.close()

        run(main())

    def test_small_responses_not_compressed(self):
        async def main():
            server = await serve_app(_demo_app(), gzip_responses=True)
            async with HttpClient(*server.address) as client:
                response = await client.get("/ping", headers={"Accept-Encoding": "gzip"})
            assert response.header("Content-Encoding") is None
            await server.close()

        run(main())

    def test_connection_close_honoured(self):
        async def main():
            server = await serve_app(_demo_app())
            async with HttpClient(*server.address) as client:
                response = await client.get("/ping", headers={"Connection": "close"})
                assert response.header("Connection") == "close"
                # client transparently reconnects
                response = await client.get("/ping")
                assert response.status == 200
            await server.close()

        run(main())

    def test_https_round_trip(self):
        async def main():
            server = await serve_app(_demo_app(), ssl_context=server_ssl_context())
            async with HttpClient(
                *server.address, ssl_context=client_ssl_context()
            ) as client:
                response = await client.get("/ping")
            assert response.body == b"pong"
            await server.close()

        run(main())

    def test_head_response_has_headers_but_no_body(self):
        """RFC 9110 §9.3.2 — a HEAD response advertises the GET body's
        Content-Length but must not send the body itself; a body on the
        wire desyncs every compliant keep-alive reader (regression found
        by the identical-instance fuzz)."""

        async def main():
            server = await serve_app(_demo_app())
            async with HttpClient(*server.address) as client:
                head = await client.request("HEAD", "/ping")
                assert head.status == 200
                assert head.headers.get("Content-Length") == "4"
                assert head.body == b""
                # The connection is still in sync: the next request on
                # the same keep-alive connection parses cleanly.
                follow_up = await client.get("/ping")
                assert follow_up.body == b"pong"
                # 405-to-HEAD (no HEAD route) is body-less too.
                rejected = await client.request("HEAD", "/echo")
                assert rejected.status == 405
                assert rejected.body == b""
                assert await client.get("/ping") is not None
            await server.close()

        run(main())

    def test_bad_request_returns_400(self):
        async def main():
            server = await serve_app(_demo_app())
            reader, writer = await asyncio.open_connection(*server.address)
            writer.write(b"NONSENSE\r\n\r\n")
            await writer.drain()
            data = await reader.read(64)
            assert b"400" in data
            writer.close()
            await server.close()

        run(main())


class TestSessions:
    def test_create_and_get(self):
        store = SessionStore()
        sid = store.create()
        assert store.get(sid) == {}
        assert store.get("missing") is None
        assert store.get(None) is None

    def test_get_or_create_reuses(self):
        store = SessionStore()
        sid, data, created = store.get_or_create(None)
        assert created
        data["k"] = 1
        sid2, data2, created2 = store.get_or_create(sid)
        assert sid2 == sid and not created2 and data2["k"] == 1

    def test_destroy(self):
        store = SessionStore()
        sid = store.create()
        store.destroy(sid)
        assert store.get(sid) is None

    def test_ids_are_unique_and_long(self):
        store = SessionStore()
        ids = {store.create() for _ in range(50)}
        assert len(ids) == 50
        assert all(len(i) == 32 for i in ids)


class TestCsrf:
    def test_token_is_alnum_and_long(self):
        token = generate_token()
        assert token.isalnum()
        assert len(token) >= 10  # always above RDDR's detection threshold

    def test_tokens_match(self):
        token = generate_token()
        assert tokens_match(token, token)
        assert not tokens_match(token, generate_token())
        assert not tokens_match(None, token)
        assert not tokens_match(token, None)

    def test_hidden_field_embeds_token(self):
        token = generate_token()
        assert token in hidden_field(token)
