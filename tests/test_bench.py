"""Tests for the repro.bench baseline harness and the repro.obs CLI."""

from __future__ import annotations

import asyncio
import json
import pathlib
from dataclasses import replace

import repro
from repro.apps.echo import EchoServer
from repro.bench import (
    SCHEMA,
    WORKLOADS,
    compare_reports,
    load_report,
    request_digest,
    run_bench,
    write_report,
)
from repro.bench.__main__ import main as bench_main
from repro.core.config import RddrConfig
from repro.protocols.tcp import TcpLineProtocol
from repro.obs.__main__ import main as obs_main
from repro.obs.__main__ import summarize
from tests.helpers import run


class TestSeededStreams:
    def test_same_seed_same_digest_every_workload(self):
        for name, spec in WORKLOADS.items():
            first = spec.streams(11, clients=3, requests=8)
            second = spec.streams(11, clients=3, requests=8)
            assert first == second, name
            assert request_digest(first) == request_digest(second), name

    def test_different_seed_different_digest(self):
        for name, spec in WORKLOADS.items():
            a = request_digest(spec.streams(11, clients=2, requests=8))
            b = request_digest(spec.streams(12, clients=2, requests=8))
            assert a != b, name

    def test_digest_sensitive_to_client_boundaries(self):
        # Same bytes split differently across clients must not collide.
        assert request_digest([[b"ab"], [b"cd"]]) != request_digest([[b"ab", b"cd"]])


class TestCompareReports:
    @staticmethod
    def _report(**overrides):
        report = {
            "schema": SCHEMA,
            "workload": "echo",
            "seed": 11,
            "config_fingerprint": "f" * 16,
            "request_digest": "d" * 64,
            "stage_set": ["diff", "exchange"],
            "totals": {"exchanges_per_second": 1000.0, "errors": 0},
        }
        report.update(overrides)
        return report

    def test_identical_reports_pass(self):
        assert compare_reports(self._report(), self._report()) == []

    def test_regression_beyond_tolerance_fails(self):
        slow = self._report(totals={"exchanges_per_second": 600.0, "errors": 0})
        problems = compare_reports(self._report(), slow, tolerance=0.30)
        assert any("throughput regression" in p for p in problems)
        assert compare_reports(self._report(), slow, tolerance=0.50) == []

    def test_identity_mismatches_fail(self):
        for key, value in (
            ("config_fingerprint", "0" * 16),
            ("request_digest", "0" * 64),
            ("seed", 12),
            ("stage_set", ["exchange"]),
        ):
            problems = compare_reports(self._report(), self._report(**{key: value}))
            assert problems, key

    def test_candidate_errors_fail(self):
        bad = self._report(totals={"exchanges_per_second": 1000.0, "errors": 3})
        assert any("client errors" in p for p in compare_reports(self._report(), bad))


class TestRunBench:
    def test_echo_end_to_end(self):
        report = run(
            run_bench("echo", seed=5, clients=2, requests=5, instances=3),
            timeout=60,
        )
        assert report["schema"] == SCHEMA
        assert report["totals"]["transactions"] == 10
        assert report["totals"]["errors"] == 0
        assert report["verdicts"] == {"unanimous": 10}
        assert {"exchange", "replicate", "diff", "respond"} <= set(
            report["stage_set"]
        )
        assert report["stages"]["exchange"]["count"] == 10
        assert report["runtime"]["rss_bytes"]["last"] > 0
        assert len(report["request_digest"]) == 64
        assert len(report["config_fingerprint"]) == 16

    def test_chain_end_to_end(self):
        report = run(
            run_bench("chain", seed=5, clients=2, requests=5, instances=3),
            timeout=60,
        )
        assert report["schema"] == SCHEMA
        assert report["totals"]["transactions"] == 10
        assert report["totals"]["errors"] == 0
        # The head hop's pipeline shows up under the harness name, same
        # stage set as any single-hop run — comparability preserved.
        assert {"exchange", "replicate", "diff", "respond"} <= set(
            report["stage_set"]
        )
        assert report["verdicts"] == {"unanimous": 10}
        # Same seed as echo → same client byte streams, by construction.
        echo = WORKLOADS["echo"].streams(5, clients=2, requests=5)
        chain = WORKLOADS["chain"].streams(5, clients=2, requests=5)
        assert request_digest(echo) == request_digest(chain)

    def test_cli_run_and_compare(self, tmp_path, capsys):
        baseline = tmp_path / "BENCH_echo.json"
        code = bench_main(
            [
                "--workload", "echo", "--seed", "5", "--clients", "2",
                "--requests", "5", "--out", str(baseline),
            ]
        )
        assert code == 0
        report = load_report(baseline)
        assert report["workload"] == "echo"

        # identical run compares clean
        candidate = tmp_path / "candidate.json"
        write_report(report, candidate)
        assert bench_main(["compare", str(baseline), str(candidate)]) == 0

        slow = dict(report)
        slow["totals"] = dict(report["totals"], exchanges_per_second=1.0)
        write_report(slow, candidate)
        assert bench_main(["compare", str(baseline), str(candidate)]) == 1
        assert "throughput regression" in capsys.readouterr().out


class TestObsCli:
    TRACE = {
        "exchange_id": "p-in-000000",
        "proxy": "p-in",
        "verdict": "unanimous",
        "spans": {
            "name": "exchange",
            "duration_s": 0.004,
            "children": [
                {"name": "diff", "duration_s": 0.001},
                {"name": "respond", "duration_s": 0.002},
            ],
        },
    }

    def test_summarize_counts_stages_and_verdicts(self):
        lines = [
            json.dumps(self.TRACE),
            json.dumps({"type": "recovery", "service": "x"}),  # skipped
            "not json",  # skipped, not fatal
        ]
        summary = summarize(lines)
        assert summary["traces"] == 1
        assert summary["skipped"] == 2
        assert summary["verdicts"] == {"unanimous": 1}
        assert summary["stages"]["diff"]["count"] == 1
        assert summary["stages"]["exchange"]["max_ms"] == 4.0
        assert summary["stages"]["exchange"]["slowest_exchange"] == "p-in-000000"

    def test_proxy_filter(self):
        summary = summarize([json.dumps(self.TRACE)], proxy="other-in")
        assert summary["traces"] == 0 and summary["skipped"] == 1

    def test_cli_renders_table(self, tmp_path, capsys):
        path = tmp_path / "traces.jsonl"
        path.write_text(json.dumps(self.TRACE) + "\n")
        assert obs_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "verdicts: unanimous=1" in out
        assert "diff" in out and "p99" in out
        # empty input exits nonzero so pipelines notice
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert obs_main([str(empty)]) == 1


class TestSingleHopBaselinesUnchanged:
    """Multi-hop support must not disturb the committed single-hop
    baselines: the chain-era config fields are fingerprint-neutral at
    their defaults, and the index hooks are never even *called* when
    ``execution_index`` is off."""

    REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

    def test_chain_era_fields_are_fingerprint_neutral_at_defaults(self):
        config = RddrConfig(protocol="tcp", filter_pair=(0, 1))
        # A config serialized before the fields existed must fingerprint
        # identically to one that carries them at their defaults.
        data = config.to_dict()
        for field in ("execution_index", "tree_policy", "probe_connect_only"):
            assert field in data
            del data[field]
        vintage = RddrConfig.from_dict(data)
        assert vintage.fingerprint() == config.fingerprint()
        # ...but actually *using* a field breaks comparability, loudly.
        assert (
            replace(config, execution_index=True).fingerprint()
            != config.fingerprint()
        )
        assert (
            replace(config, probe_connect_only=True).fingerprint()
            != config.fingerprint()
        )

    def test_committed_baseline_fingerprints_still_reproducible(self):
        # Recompute the exact config run_bench builds for each committed
        # single-hop baseline; a mismatch means `python -m repro.bench
        # compare` would reject every candidate as an identity mismatch.
        for workload in ("echo", "kvstore", "pgbench"):
            report = load_report(self.REPO_ROOT / f"BENCH_{workload}.json")
            config = RddrConfig(
                protocol=WORKLOADS[workload].protocol,
                filter_pair=(0, 1),
                exchange_timeout=60.0,
                trace_sample_rate=report["trace_sample_rate"],
                trace_sample_seed=report["seed"],
                runtime_probe_interval=0.02,
            )
            assert config.fingerprint() == report["config_fingerprint"], workload

    def test_index_hooks_unused_when_disabled(self, monkeypatch):
        """``execution_index=False`` (the default, and what every
        committed baseline ran with) must keep the hot path allocation
        free: attach/extract are never invoked, not merely no-ops."""
        calls: list[str] = []
        real_attach = TcpLineProtocol.attach_index
        real_extract = TcpLineProtocol.extract_index

        def counting_attach(self, request, token):
            calls.append("attach")
            return real_attach(self, request, token)

        def counting_extract(self, request):
            calls.append("extract")
            return real_extract(self, request)

        monkeypatch.setattr(TcpLineProtocol, "attach_index", counting_attach)
        monkeypatch.setattr(TcpLineProtocol, "extract_index", counting_extract)

        async def exchange(config: RddrConfig) -> bytes:
            servers = [await EchoServer(name=f"idx-{i}").start() for i in range(2)]
            deployment = await repro.deploy(
                config, instances=[s.address for s in servers], name="idx"
            )
            try:
                reader, writer = await asyncio.open_connection(*deployment.address)
                writer.write(b"ping\n")
                await writer.drain()
                response = await reader.readline()
                writer.close()
                return response
            finally:
                await deployment.close()
                for server in servers:
                    await server.close()

        disabled = RddrConfig(protocol="tcp", exchange_timeout=5.0)
        assert run(exchange(disabled), timeout=30.0) == b"ping\n"
        assert calls == []

        # Sanity: the counters do see the hooks once the feature is on.
        enabled = replace(disabled, execution_index=True)
        assert run(exchange(enabled), timeout=30.0) == b"ping\n"
        assert "extract" in calls
