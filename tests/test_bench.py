"""Tests for the repro.bench baseline harness and the repro.obs CLI."""

from __future__ import annotations

import json

from repro.bench import (
    SCHEMA,
    WORKLOADS,
    compare_reports,
    load_report,
    request_digest,
    run_bench,
    write_report,
)
from repro.bench.__main__ import main as bench_main
from repro.obs.__main__ import main as obs_main
from repro.obs.__main__ import summarize
from tests.helpers import run


class TestSeededStreams:
    def test_same_seed_same_digest_every_workload(self):
        for name, spec in WORKLOADS.items():
            first = spec.streams(11, clients=3, requests=8)
            second = spec.streams(11, clients=3, requests=8)
            assert first == second, name
            assert request_digest(first) == request_digest(second), name

    def test_different_seed_different_digest(self):
        for name, spec in WORKLOADS.items():
            a = request_digest(spec.streams(11, clients=2, requests=8))
            b = request_digest(spec.streams(12, clients=2, requests=8))
            assert a != b, name

    def test_digest_sensitive_to_client_boundaries(self):
        # Same bytes split differently across clients must not collide.
        assert request_digest([[b"ab"], [b"cd"]]) != request_digest([[b"ab", b"cd"]])


class TestCompareReports:
    @staticmethod
    def _report(**overrides):
        report = {
            "schema": SCHEMA,
            "workload": "echo",
            "seed": 11,
            "config_fingerprint": "f" * 16,
            "request_digest": "d" * 64,
            "stage_set": ["diff", "exchange"],
            "totals": {"exchanges_per_second": 1000.0, "errors": 0},
        }
        report.update(overrides)
        return report

    def test_identical_reports_pass(self):
        assert compare_reports(self._report(), self._report()) == []

    def test_regression_beyond_tolerance_fails(self):
        slow = self._report(totals={"exchanges_per_second": 600.0, "errors": 0})
        problems = compare_reports(self._report(), slow, tolerance=0.30)
        assert any("throughput regression" in p for p in problems)
        assert compare_reports(self._report(), slow, tolerance=0.50) == []

    def test_identity_mismatches_fail(self):
        for key, value in (
            ("config_fingerprint", "0" * 16),
            ("request_digest", "0" * 64),
            ("seed", 12),
            ("stage_set", ["exchange"]),
        ):
            problems = compare_reports(self._report(), self._report(**{key: value}))
            assert problems, key

    def test_candidate_errors_fail(self):
        bad = self._report(totals={"exchanges_per_second": 1000.0, "errors": 3})
        assert any("client errors" in p for p in compare_reports(self._report(), bad))


class TestRunBench:
    def test_echo_end_to_end(self):
        report = run(
            run_bench("echo", seed=5, clients=2, requests=5, instances=3),
            timeout=60,
        )
        assert report["schema"] == SCHEMA
        assert report["totals"]["transactions"] == 10
        assert report["totals"]["errors"] == 0
        assert report["verdicts"] == {"unanimous": 10}
        assert {"exchange", "replicate", "diff", "respond"} <= set(
            report["stage_set"]
        )
        assert report["stages"]["exchange"]["count"] == 10
        assert report["runtime"]["rss_bytes"]["last"] > 0
        assert len(report["request_digest"]) == 64
        assert len(report["config_fingerprint"]) == 16

    def test_cli_run_and_compare(self, tmp_path, capsys):
        baseline = tmp_path / "BENCH_echo.json"
        code = bench_main(
            [
                "--workload", "echo", "--seed", "5", "--clients", "2",
                "--requests", "5", "--out", str(baseline),
            ]
        )
        assert code == 0
        report = load_report(baseline)
        assert report["workload"] == "echo"

        # identical run compares clean
        candidate = tmp_path / "candidate.json"
        write_report(report, candidate)
        assert bench_main(["compare", str(baseline), str(candidate)]) == 0

        slow = dict(report)
        slow["totals"] = dict(report["totals"], exchanges_per_second=1.0)
        write_report(slow, candidate)
        assert bench_main(["compare", str(baseline), str(candidate)]) == 1
        assert "throughput regression" in capsys.readouterr().out


class TestObsCli:
    TRACE = {
        "exchange_id": "p-in-000000",
        "proxy": "p-in",
        "verdict": "unanimous",
        "spans": {
            "name": "exchange",
            "duration_s": 0.004,
            "children": [
                {"name": "diff", "duration_s": 0.001},
                {"name": "respond", "duration_s": 0.002},
            ],
        },
    }

    def test_summarize_counts_stages_and_verdicts(self):
        lines = [
            json.dumps(self.TRACE),
            json.dumps({"type": "recovery", "service": "x"}),  # skipped
            "not json",  # skipped, not fatal
        ]
        summary = summarize(lines)
        assert summary["traces"] == 1
        assert summary["skipped"] == 2
        assert summary["verdicts"] == {"unanimous": 1}
        assert summary["stages"]["diff"]["count"] == 1
        assert summary["stages"]["exchange"]["max_ms"] == 4.0
        assert summary["stages"]["exchange"]["slowest_exchange"] == "p-in-000000"

    def test_proxy_filter(self):
        summary = summarize([json.dumps(self.TRACE)], proxy="other-in")
        assert summary["traces"] == 0 and summary["skipped"] == 1

    def test_cli_renders_table(self, tmp_path, capsys):
        path = tmp_path / "traces.jsonl"
        path.write_text(json.dumps(self.TRACE) + "\n")
        assert obs_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "verdicts: unanimous=1" in out
        assert "diff" in out and "p99" in out
        # empty input exits nonzero so pipelines notice
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert obs_main([str(empty)]) == 1
