"""Graceful degradation acceptance tests (the `degraded_quorum` mode).

The headline behaviours: with N=3 and degraded quorum on, killing one
non-filter-pair instance mid-session keeps the client served by the
surviving pair (DEGRADED event, no client-visible block); with the mode
off, the same fault blocks exactly as before.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.apps.echo import EchoServer
from repro.core import events as ev
from repro.core.config import RddrConfig
from repro.core.incoming import IncomingRequestProxy
from repro.core.outgoing import OutgoingRequestProxy
from repro.faults import FaultProxy, FaultSchedule, FaultSpec, connect_fault_hook
from repro.protocols import get_protocol
from repro.transport import install_connect_hook
from repro.transport.retry import open_connection_retry
from repro.transport.streams import close_writer
from tests.helpers import run

DEADLINE = 0.3


def _config(**overrides) -> RddrConfig:
    base = dict(
        protocol="tcp",
        exchange_timeout=5.0,
        instance_response_deadline=DEADLINE,
        ephemeral_state=False,
        divergence_policy="vote",
        degraded_quorum=True,
    )
    base.update(overrides)
    return RddrConfig(**base)


async def _client(address, lines: list[bytes], timeout: float = 3.0) -> list[bytes]:
    reader, writer = await open_connection_retry(*address)
    replies: list[bytes] = []
    try:
        for line in lines:
            writer.write(line + b"\n")
            await writer.drain()
            try:
                replies.append(await asyncio.wait_for(reader.readline(), timeout))
            except (asyncio.TimeoutError, ConnectionError):
                replies.append(b"")
    except ConnectionError:
        pass
    finally:
        await close_writer(writer)
    replies.extend(b"" for _ in range(len(lines) - len(replies)))
    return replies


async def _deployment(config: RddrConfig, schedule: FaultSchedule, count: int = 3):
    servers = [await EchoServer().start() for _ in range(count)]
    shims = [
        await FaultProxy(server.address, schedule, instance=index).start()
        for index, server in enumerate(servers)
    ]
    proxy = IncomingRequestProxy(
        [shim.address for shim in shims], get_protocol("tcp"), config
    )
    await proxy.start()

    async def teardown():
        await proxy.close()
        for shim in shims:
            await shim.close()
        for server in servers:
            await server.close()

    return proxy, teardown


# The mid-session kill: instance 2 stops answering from exchange 1 on.
KILL_AT_1 = FaultSchedule(
    specs=[FaultSpec(kind="stall", instance=2, exchange=1, delay_ms=600.0)]
)


class TestIncomingDegradation:
    def test_mid_session_kill_keeps_serving_on_surviving_pair(self):
        async def main():
            proxy, teardown = await _deployment(
                _config(filter_pair=(0, 1)), KILL_AT_1
            )
            try:
                replies = await _client(proxy.address, [b"a", b"b", b"c"])
            finally:
                await teardown()
            # No client-visible block: every request got its echo.
            assert replies == [b"a\n", b"b\n", b"c\n"]
            degraded = proxy.events.events(ev.DEGRADED)
            assert len(degraded) == 1
            assert "instance 2" in degraded[0].detail
            assert proxy.metrics.degraded_exchanges == 1
            assert proxy.metrics.exchanges_blocked == 0
            assert proxy.metrics.timeouts == 0

        run(main())

    def test_same_kill_with_mode_off_blocks_as_before(self):
        async def main():
            proxy, teardown = await _deployment(
                _config(degraded_quorum=False), KILL_AT_1
            )
            try:
                replies = await _client(proxy.address, [b"a", b"b", b"c"])
            finally:
                await teardown()
            assert replies == [b"a\n", b"", b""]
            assert proxy.events.events(ev.DEGRADED) == []
            assert proxy.metrics.degraded_exchanges == 0
            assert proxy.metrics.timeouts == 1
            assert proxy.metrics.exchanges_blocked == 1

        run(main())

    def test_two_instances_never_degrade(self):
        async def main():
            kill = FaultSchedule(
                specs=[FaultSpec(kind="stall", instance=1, exchange=0, delay_ms=600.0)]
            )
            proxy, teardown = await _deployment(_config(), kill, count=2)
            try:
                replies = await _client(proxy.address, [b"a"])
            finally:
                await teardown()
            assert replies == [b""]
            assert proxy.events.events(ev.DEGRADED) == []
            assert proxy.metrics.timeouts == 1

        run(main())

    def test_block_policy_ignores_degraded_quorum(self):
        async def main():
            proxy, teardown = await _deployment(
                _config(divergence_policy="block"), KILL_AT_1
            )
            try:
                replies = await _client(proxy.address, [b"a", b"b"])
            finally:
                await teardown()
            assert replies == [b"a\n", b""]
            assert proxy.events.events(ev.DEGRADED) == []
            assert proxy.metrics.timeouts == 1

        run(main())


class TestConnectTimeDegradation:
    def test_refused_instance_is_dropped_at_connect(self):
        async def main():
            servers = [await EchoServer().start() for _ in range(3)]
            schedule = FaultSchedule(
                specs=[FaultSpec(kind="connect_refused", instance=2, times=None)]
            )
            records = []
            hook = connect_fault_hook(
                schedule, {servers[2].address: 2}, records=records
            )
            proxy = IncomingRequestProxy(
                [server.address for server in servers],
                get_protocol("tcp"),
                _config(connect_attempts=2),
            )
            # The hook travels by context: the accept callback captures the
            # context current at start(), so install before starting.
            with install_connect_hook(hook):
                await proxy.start()
                try:
                    replies = await _client(proxy.address, [b"hi"])
                finally:
                    await proxy.close()
                    for server in servers:
                        await server.close()
            assert replies == [b"hi\n"]
            degraded = proxy.events.events(ev.DEGRADED)
            assert len(degraded) == 1
            assert "dropped at connect" in degraded[0].detail
            # Both bounded attempts against instance 2 were refused.
            assert [r.kind for r in records] == ["connect_refused"] * 2

        run(main())

    def test_flapping_instance_recovers_within_retry_budget(self):
        async def main():
            echo = await EchoServer().start()
            schedule = FaultSchedule(
                specs=[FaultSpec(kind="connect_refused", instance=0, times=2)]
            )
            records = []
            hook = connect_fault_hook(schedule, {echo.address: 0}, records=records)
            with install_connect_hook(hook):
                reader, writer = await open_connection_retry(
                    *echo.address, attempts=4, initial_delay=0.01
                )
            writer.write(b"up\n")
            await writer.drain()
            assert await reader.readline() == b"up\n"
            await close_writer(writer)
            await echo.close()
            assert [r.as_tuple() for r in records] == [
                ("connect_refused", 0, 0, ""),
                ("connect_refused", 0, 1, ""),
            ]

        run(main())

    def test_dead_instance_exhausts_retry_budget(self):
        async def main():
            echo = await EchoServer().start()
            schedule = FaultSchedule(
                specs=[FaultSpec(kind="connect_refused", instance=0, times=None)]
            )
            hook = connect_fault_hook(schedule, {echo.address: 0})
            with install_connect_hook(hook):
                with pytest.raises(ConnectionError, match="after 2 attempts"):
                    await open_connection_retry(
                        *echo.address, attempts=2, initial_delay=0.01
                    )
            await echo.close()

        run(main())


class TestOutgoingDegradation:
    def test_group_forms_degraded_when_an_instance_never_connects(self):
        async def main():
            backend = await EchoServer().start()
            proxy = OutgoingRequestProxy(
                backend.address, 3, get_protocol("tcp"),
                _config(exchange_timeout=0.4),
            )
            await proxy.start()

            async def instance(index: int) -> bytes:
                reader, writer = await open_connection_retry(
                    *proxy.address_for_instance(index)
                )
                try:
                    writer.write(b"q\n")
                    await writer.drain()
                    return await asyncio.wait_for(reader.readline(), 5.0)
                finally:
                    await close_writer(writer)

            # Instance 2 never dials in; 0 and 1 still get served.
            replies = await asyncio.gather(instance(0), instance(1))
            assert replies == [b"q\n", b"q\n"]
            degraded = proxy.events.events(ev.DEGRADED)
            assert len(degraded) == 1
            assert "instance 2 never connected" in degraded[0].detail
            assert proxy.metrics.degraded_exchanges == 1
            await proxy.close()
            await backend.close()

        run(main())

    def test_member_dropped_mid_exchange_keeps_group_serving(self):
        async def main():
            backend = await EchoServer().start()
            proxy = OutgoingRequestProxy(
                backend.address, 3, get_protocol("tcp"),
                _config(exchange_timeout=1.0),
            )
            await proxy.start()

            async def talkative(index: int) -> list[bytes]:
                reader, writer = await open_connection_retry(
                    *proxy.address_for_instance(index)
                )
                replies = []
                try:
                    for line in (b"x", b"y"):
                        writer.write(line + b"\n")
                        await writer.drain()
                        replies.append(await asyncio.wait_for(reader.readline(), 5.0))
                finally:
                    await close_writer(writer)
                return replies

            async def silent_after_first() -> list[bytes]:
                reader, writer = await open_connection_retry(
                    *proxy.address_for_instance(2)
                )
                try:
                    writer.write(b"x\n")
                    await writer.drain()
                    first = await asyncio.wait_for(reader.readline(), 5.0)
                    # Goes quiet: the group drops it at the next deadline.
                    second = await asyncio.wait_for(reader.readline(), 5.0)
                    return [first, second]
                finally:
                    await close_writer(writer)

            results = await asyncio.gather(
                talkative(0), talkative(1), silent_after_first()
            )
            assert results[0] == [b"x\n", b"y\n"]
            assert results[1] == [b"x\n", b"y\n"]
            assert results[2] == [b"x\n", b""]  # dropped: EOF, not a reply
            degraded = proxy.events.events(ev.DEGRADED)
            assert len(degraded) == 1
            assert "instance 2 dropped: missed deadline" in degraded[0].detail
            assert proxy.metrics.degraded_exchanges == 1
            assert proxy.metrics.timeouts == 0
            await proxy.close()
            await backend.close()

        run(main())


class TestDegradationRule:
    def test_requires_vote_policy_and_mode(self):
        assert not RddrConfig(degraded_quorum=False).degradation_allowed(3, 2)
        assert not RddrConfig(
            degraded_quorum=True, divergence_policy="block"
        ).degradation_allowed(3, 2)

    def test_requires_strict_majority_of_at_least_three(self):
        config = RddrConfig(degraded_quorum=True, divergence_policy="vote")
        assert config.degradation_allowed(3, 2)
        assert config.degradation_allowed(5, 3)
        assert config.degradation_allowed(5, 4)
        assert not config.degradation_allowed(2, 1)
        assert not config.degradation_allowed(3, 1)
        assert not config.degradation_allowed(4, 2)  # tie is not a majority
        assert not config.degradation_allowed(5, 2)

    def test_round_trips_through_json(self):
        config = RddrConfig(
            degraded_quorum=True,
            instance_response_deadline=0.25,
            connect_attempts=3,
            connect_backoff_max=0.1,
        )
        loaded = RddrConfig.from_dict(config.to_dict())
        assert loaded.degraded_quorum is True
        assert loaded.instance_response_deadline == 0.25
        assert loaded.connect_attempts == 3
        assert loaded.connect_backoff_max == 0.1
        assert loaded.instance_deadline() == 0.25
        assert RddrConfig(exchange_timeout=7.0).instance_deadline() == 7.0
