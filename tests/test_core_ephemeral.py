"""Tests for ephemeral-state (CSRF token) handling (section IV-B3)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.ephemeral import EphemeralStateStore


def _form_line(token: str) -> bytes:
    return f"<input type='hidden' name='user_token' value='{token}' />".encode()


class TestCapture:
    def test_captures_equal_length_alnum_tokens(self):
        store = EphemeralStateStore(instance_count=2)
        captured = store.capture(
            [[_form_line("AAAABBBBCCCCDDDD")], [_form_line("EEEEFFFFGGGGHHHH")]]
        )
        assert len(captured) == 1
        assert captured[0].canonical == b"AAAABBBBCCCCDDDD"
        assert captured[0].per_instance == (b"AAAABBBBCCCCDDDD", b"EEEEFFFFGGGGHHHH")

    def test_short_runs_are_ignored(self):
        store = EphemeralStateStore(instance_count=2)
        captured = store.capture([[_form_line("AAA")], [_form_line("BBB")]])
        assert captured == []
        assert len(store) == 0

    def test_min_length_is_configurable(self):
        store = EphemeralStateStore(instance_count=2, min_length=3)
        captured = store.capture([[_form_line("AAA")], [_form_line("BBB")]])
        assert len(captured) == 1

    def test_non_alnum_ranges_are_ignored(self):
        store = EphemeralStateStore(instance_count=2)
        captured = store.capture(
            [[b"ptr=0x7ffe!0000!11112222"], [b"ptr=0x8ffe!1111!33334444"]]
        )
        # 'x' widens into hex runs but the '!' bytes break candidate runs
        for binding in captured:
            assert binding.canonical.isalnum()

    def test_identical_lines_not_captured(self):
        store = EphemeralStateStore(instance_count=3)
        captured = store.capture(
            [[_form_line("SAMESAMESAME")] for _ in range(3)]
        )
        assert captured == []

    def test_lines_equal_between_some_instances_not_captured(self):
        # paper: only lines that differ across *all* instances qualify
        store = EphemeralStateStore(instance_count=3)
        captured = store.capture(
            [
                [_form_line("AAAABBBBCCCCDDDD")],
                [_form_line("AAAABBBBCCCCDDDD")],
                [_form_line("EEEEFFFFGGGGHHHH")],
            ]
        )
        assert captured == []

    def test_length_mismatch_lines_skipped(self):
        store = EphemeralStateStore(instance_count=2)
        captured = store.capture([[b"token=" + b"A" * 20], [b"token=" + b"B" * 24]])
        assert captured == []

    def test_wrong_stream_count_rejected(self):
        store = EphemeralStateStore(instance_count=3)
        with pytest.raises(ValueError):
            store.capture([[b"a"], [b"b"]])


class TestRewrite:
    def _store_with_binding(self) -> EphemeralStateStore:
        store = EphemeralStateStore(instance_count=2)
        store.capture(
            [[_form_line("AAAABBBBCCCCDDDD")], [_form_line("EEEEFFFFGGGGHHHH")]]
        )
        return store

    def test_rewrites_for_each_instance(self):
        store = self._store_with_binding()
        request = b"POST / HTTP/1.1\r\n\r\ntoken=AAAABBBBCCCCDDDD"
        assert b"AAAABBBBCCCCDDDD" in store.rewrite_for_instance(request, 0)
        assert b"EEEEFFFFGGGGHHHH" in store.rewrite_for_instance(request, 1)

    def test_rewrite_preserves_length(self):
        store = self._store_with_binding()
        request = b"token=AAAABBBBCCCCDDDD"
        assert len(store.rewrite_for_instance(request, 1)) == len(request)

    def test_unrelated_data_untouched(self):
        store = self._store_with_binding()
        request = b"GET /other HTTP/1.1"
        assert store.rewrite_for_instance(request, 1) == request

    def test_consume_deletes_used_bindings(self):
        store = self._store_with_binding()
        assert len(store) == 1
        consumed = store.consume_used(b"token=AAAABBBBCCCCDDDD")
        assert consumed == 1
        assert len(store) == 0

    def test_consume_ignores_unused(self):
        store = self._store_with_binding()
        assert store.consume_used(b"nothing here") == 0
        assert len(store) == 1


@given(
    st.lists(
        st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=12, max_size=12),
        min_size=3,
        max_size=3,
        unique=True,
    )
)
def test_property_round_trip_capture_and_rewrite(tokens):
    """Whatever equal-length alnum tokens the instances mint, rewriting
    the canonical token yields each instance's own."""
    store = EphemeralStateStore(instance_count=3)
    streams = [[f"value='{t}'".encode()] for t in tokens]
    captured = store.capture(streams)
    assert len(captured) == 1
    canonical = tokens[0].encode()
    for index, token in enumerate(tokens):
        rewritten = store.rewrite_for_instance(b"x=" + canonical, index)
        assert rewritten == b"x=" + token.encode()
