"""Catch-up replay: restarted instances rejoin with converged state.

End-to-end over the kvstore pair (kill → CATCHING_UP → REJOINING → LIVE
with byte-identical state), replay idempotence against a live RESP
server, proxy crash consistency (a rebuilt deployment resumes exchange
ids from the same journal directory), pgwire simple-query replay, and
the idle-service rejoin probe (recovery completes with zero client
traffic).
"""

from __future__ import annotations

import asyncio

from repro.apps.kvstore import RedisLikeServer, kv_command
from repro.core.config import RddrConfig
from repro.core.rddr import RddrDeployment
from repro.journal import (
    ExchangeJournal,
    capture_snapshot,
    replay_into,
    response_digest,
)
from repro.orchestrator import Cluster, deploy_nversioned
from repro.protocols.base import resolve
from repro.protocols.resp import encode_command
from repro.recovery import CATCHING_UP, LIVE
from repro.transport.streams import close_writer
from tests.helpers import run

N = 3


async def _kv_factory(ctx):
    return await RedisLikeServer(host=ctx.host, port=ctx.port).start()


def _recovery_config(journal_dir: str, **extra) -> RddrConfig:
    return RddrConfig(
        protocol="resp",
        exchange_timeout=2.0,
        instance_response_deadline=0.5,
        divergence_policy="vote",
        degraded_quorum=True,
        quarantine_minority=True,
        ephemeral_state=False,
        recovery_enabled=True,
        probe_period=0.05,
        probe_timeout=0.3,
        probe_failure_threshold=2,
        restart_backoff=0.05,
        rejoin_clean_exchanges=2,
        connect_attempts=3,
        connect_backoff_max=0.05,
        journal_dir=journal_dir,
        **extra,
    )


async def _instance_scan(address) -> bytes:
    """Full deterministic state scan of one instance: KEYS + every GET."""
    listing = await kv_command(address, "KEYS", "*")
    keys = [
        line
        for line in listing.split(b"\r\n")
        if line and not line.startswith((b"*", b"$"))
    ]
    chunks = [listing]
    for key in keys:
        chunks.append(await kv_command(address, "GET", key))
    return b"".join(chunks)


async def _drain_until_live(supervisor, address, *, deadline=30.0) -> None:
    """Drive traffic until every instance is LIVE again."""
    stop = asyncio.get_running_loop().time() + deadline
    extra = 0
    while not supervisor.all_live:
        assert (
            asyncio.get_running_loop().time() < stop
        ), f"states: {supervisor.states}"
        try:
            await kv_command(address, "SET", f"drain{extra}", f"d{extra}")
        except (ConnectionError, OSError, asyncio.TimeoutError):
            pass
        extra += 1
        await asyncio.sleep(0.02)


class TestKvCatchup:
    def test_killed_instance_rejoins_with_converged_state(self, tmp_path):
        journal_dir = str(tmp_path / "journal")

        async def main():
            config = _recovery_config(journal_dir)
            async with Cluster() as cluster:
                service = await deploy_nversioned(
                    cluster, "kv", [_kv_factory] * N, config=config
                )
                try:
                    supervisor = service.supervisor
                    address = service.address
                    for i in range(20):
                        reply = await kv_command(
                            address, "SET", f"key{i:03d}", f"value{i:03d}"
                        )
                        assert reply == b"+OK\r\n"
                    # reads are not journaled
                    assert (
                        await kv_command(address, "GET", "key005")
                        == b"$8\r\nvalue005\r\n"
                    )
                    assert service.rddr.journal.last_id == 20

                    victim = 1
                    pod = next(
                        p for p in cluster.pods("kv") if p.index == victim
                    )
                    await pod.runtime.close()
                    await _drain_until_live(supervisor, address)

                    # one more write lands on everyone post-rejoin
                    await kv_command(address, "SET", "post", "rejoined")
                    await asyncio.sleep(0.05)

                    # the victim traversed CATCHING_UP, and the catch-up
                    # record shows a real replay
                    records = service.rddr.observer.traces()
                    transitions = [
                        (r["from"], r["to"])
                        for r in records
                        if r.get("type") == "recovery"
                        and r.get("instance") == victim
                    ]
                    assert ("RESTARTING", CATCHING_UP) in transitions
                    assert (CATCHING_UP, "REJOINING") in transitions
                    catchups = [
                        r for r in records if r.get("type") == "catchup"
                    ]
                    assert catchups and catchups[-1]["outcome"] == "ok"
                    assert catchups[-1]["replayed"] >= 20
                    assert catchups[-1]["mismatches"] == 0

                    snapshot = service.rddr.metrics_snapshot()
                    replayed = sum(
                        series["value"]
                        for series in snapshot["rddr_catchup_replayed_total"][
                            "series"
                        ]
                    )
                    assert replayed >= 20

                    # byte-identical full scans across all N instances
                    scans = []
                    for index in range(N):
                        entry = service.directory.entry(index)
                        scans.append(await _instance_scan(entry.address))
                    assert scans[0] == scans[1] == scans[2]
                    assert b"value019" in scans[0] and b"rejoined" in scans[0]
                finally:
                    await service.close()
            # the journal on disk is clean after the whole run
            journal = ExchangeJournal(journal_dir)
            assert journal.verify() == []

        run(main(), timeout=90.0)

    def test_idle_rejoin_probe_drives_recovery(self, tmp_path):
        """Satellite: with ``rejoin_probe_interval`` set, a killed
        instance reaches LIVE again with NO client traffic after the
        kill — synthetic liveness exchanges feed the shadow comparison."""
        journal_dir = str(tmp_path / "journal")

        async def main():
            config = _recovery_config(
                journal_dir, rejoin_probe_interval=0.05
            )
            async with Cluster() as cluster:
                service = await deploy_nversioned(
                    cluster, "kv-idle", [_kv_factory] * N, config=config
                )
                try:
                    supervisor = service.supervisor
                    for i in range(5):
                        await kv_command(
                            service.address, "SET", f"k{i}", f"v{i}"
                        )
                    victim = 0
                    pod = next(
                        p for p in cluster.pods("kv-idle") if p.index == victim
                    )
                    await pod.runtime.close()
                    # no client traffic from here on: the health monitor
                    # must notice the death, and the rejoin prober must
                    # then drive the shadow comparison on its own
                    stop = asyncio.get_running_loop().time() + 30.0
                    while supervisor.state(victim) == LIVE:
                        assert (
                            asyncio.get_running_loop().time() < stop
                        ), "kill never detected"
                        await asyncio.sleep(0.02)
                    while not supervisor.all_live:
                        assert (
                            asyncio.get_running_loop().time() < stop
                        ), f"states: {supervisor.states}"
                        await asyncio.sleep(0.05)
                    records = service.rddr.observer.traces()
                    assert any(
                        r.get("type") == "recovery"
                        and r.get("instance") == victim
                        and r.get("to") == CATCHING_UP
                        for r in records
                    )
                    # the replayed writes made it into the fresh pod
                    entry = service.directory.entry(victim)
                    assert (
                        await kv_command(entry.address, "GET", "k3")
                        == b"$2\r\nv3\r\n"
                    )
                finally:
                    await service.close()

        run(main(), timeout=90.0)


class TestReplayIdempotence:
    def test_replay_twice_converges_to_same_state(self, tmp_path):
        async def main():
            proto = resolve("resp")
            server = await RedisLikeServer().start()
            journal = ExchangeJournal.open(tmp_path)
            try:
                for i in range(10):
                    journal.append(
                        encode_command("SET", f"k{i}", f"v{i}"),
                        digest=response_digest(b"+OK\r\n"),
                    )
                journal.append(
                    encode_command("DEL", "k3"),
                    digest=response_digest(b":1\r\n"),
                )
                first = await replay_into(journal, server.address, proto)
                assert first.replayed == 11
                assert first.mismatches == 0
                # no snapshot yet: the restore was a reset-to-empty
                assert first.restored and first.epoch == 0
                state_after_first = server.snapshot()
                second = await replay_into(journal, server.address, proto)
                assert second.replayed == 11 and second.mismatches == 0
                assert server.snapshot() == state_after_first
                assert b"k3" not in server.snapshot()
            finally:
                journal.close()
                await server.close()

        run(main())

    def test_replay_resumes_from_snapshot_anchor(self, tmp_path):
        async def main():
            proto = resolve("resp")
            server = await RedisLikeServer().start()
            journal = ExchangeJournal.open(tmp_path)
            try:
                for i in range(6):
                    journal.append(
                        encode_command("SET", f"base{i}", f"b{i}"),
                        digest=response_digest(b"+OK\r\n"),
                    )
                await replay_into(journal, server.address, proto)
                blob = await capture_snapshot(server.address, proto)
                journal.install_snapshot(journal.last_id, blob)
                journal.append(
                    encode_command("SET", "tail", "suffix"),
                    digest=response_digest(b"+OK\r\n"),
                )
                fresh = await RedisLikeServer().start()
                stats = await replay_into(journal, fresh.address, proto)
                # only the suffix beyond the epoch is replayed
                assert stats.restored and stats.epoch == 6
                assert stats.replayed == 1 and stats.mismatches == 0
                expected = dict(server.data)
                expected[b"tail"] = b"suffix"
                assert fresh.data == expected
                await fresh.close()
            finally:
                journal.close()
                await server.close()

        run(main())


class TestProxyCrashConsistency:
    def test_rebuilt_deployment_resumes_exchange_ids(self, tmp_path):
        """A proxy restart (new RddrDeployment, same journal_dir) keeps
        appending after the last durable record."""

        async def main():
            servers = [await RedisLikeServer().start() for _ in range(2)]
            addresses = [s.address for s in servers]
            config = RddrConfig(protocol="resp", journal_dir=str(tmp_path))
            rddr = RddrDeployment("kv", config)
            await rddr.start_incoming_proxy(addresses)
            await kv_command(rddr.address, "SET", "a", "1")
            await kv_command(rddr.address, "GET", "a")  # not journaled
            assert rddr.journal.last_id == 1
            await rddr.close()

            again = RddrDeployment("kv", config)
            await again.start_incoming_proxy(addresses)
            await kv_command(again.address, "SET", "b", "2")
            assert again.journal.last_id == 2
            requests = [r.request for r in again.journal.records()]
            assert requests == [
                encode_command("SET", "a", "1"),
                encode_command("SET", "b", "2"),
            ]
            await again.close()
            for server in servers:
                await server.close()

        run(main())


class TestPgwireCatchup:
    def test_simple_query_journal_replays_into_fresh_engine(self, tmp_path):
        from repro.pgwire import messages as wire
        from repro.pgwire.server import PgWireServer
        from repro.sqlengine.database import Database

        async def main():
            proto = resolve("pgwire")
            source = PgWireServer(Database())
            await source.start()
            journal = ExchangeJournal.open(tmp_path)
            reader, writer = await asyncio.open_connection(*source.address)
            try:
                state = await proto.handshake(reader, writer)
                for sql in (
                    "CREATE TABLE t (id INT PRIMARY KEY, name TEXT)",
                    "INSERT INTO t VALUES (1, 'one')",
                    "INSERT INTO t VALUES (2, 'two')",
                    "UPDATE t SET name = 'uno' WHERE id = 1",
                ):
                    request = wire.query_message(sql).encode()
                    writer.write(request)
                    await writer.drain()
                    response = await proto.read_server_message(
                        reader, state, request
                    )
                    journal.append(request, digest=response_digest(response))
            finally:
                await close_writer(writer)

            target = PgWireServer(Database())
            await target.start()
            stats = await replay_into(journal, target.address, proto)
            assert stats.replayed == 4 and stats.mismatches == 0
            assert (
                target.database.dump_sql() == source.database.dump_sql()
            )
            assert "'uno'" in target.database.dump_sql()
            journal.close()
            await source.close()
            await target.close()

        run(main())
