"""Cross-campaign corpus merging: union, cluster dedup, minimal pick.

Pure corpus-file manipulation — no deployments — so these tests mint
synthetic reproducers directly and assert the merge semantics: one
reproducer per cluster across any number of input directories, the
minimal candidate wins (fewest requests, then fewest bytes, then
filename), pre-cluster files fall back to their positional signature,
exemplars to their content slug, and merging is deterministic down to
the bytes written.
"""

from __future__ import annotations

import json

import pytest

from repro.fuzz.__main__ import main as fuzz_main
from repro.fuzz.corpus import Reproducer, load_corpus
from repro.fuzz.merge import cluster_key, merge_corpora


def _reproducer(**overrides) -> Reproducer:
    fields = dict(
        target="kvstore",
        mode="diverse",
        verdict="divergent",
        requests=[b"GET a\r\n"],
        signature="sig-0",
        cluster="cluster-0",
        reason="token 1 differs",
        seed=1,
    )
    fields.update(overrides)
    return Reproducer(**fields)


class TestClusterField:
    def test_roundtrips_through_save_and_load(self, tmp_path):
        original = _reproducer()
        loaded = Reproducer.load(original.save(tmp_path))
        assert loaded.cluster == "cluster-0"
        assert loaded == original

    def test_absent_cluster_loads_as_none_and_stays_absent(self, tmp_path):
        """Pre-cluster corpus files keep loading, and a reproducer
        without a cluster re-mints without the key — byte-identical to
        what older builds wrote."""
        legacy = _reproducer(cluster=None)
        path = legacy.save(tmp_path)
        assert "cluster" not in json.loads(path.read_text())
        assert Reproducer.load(path).cluster is None


class TestClusterKey:
    def test_prefers_cluster_then_signature_then_slug(self):
        assert cluster_key(_reproducer()).endswith(":cluster-0")
        assert cluster_key(_reproducer(cluster=None)).endswith(":sig-0")
        exemplar = _reproducer(cluster=None, signature=None, verdict="match")
        assert cluster_key(exemplar).endswith(f":{exemplar.slug}")

    def test_scoped_by_target_and_mode(self):
        a = _reproducer()
        b = _reproducer(target="echo")
        c = _reproducer(mode="identical")
        assert len({cluster_key(r) for r in (a, b, c)}) == 3


class TestMergeCorpora:
    def test_unions_and_keeps_minimal_per_cluster(self, tmp_path):
        a, b, out = tmp_path / "a", tmp_path / "b", tmp_path / "out"
        # Same cluster found by two campaigns at different offsets: the
        # two-request reproducer loses to the one-request one.
        _reproducer(
            signature="sig-long", requests=[b"SET a 1\r\n", b"GET a\r\n"]
        ).save(a)
        _reproducer(signature="sig-short", requests=[b"GET a\r\n"]).save(b)
        # A different cluster survives alongside it.
        _reproducer(cluster="cluster-1", signature="sig-other").save(b)
        report = merge_corpora([a, b], out)
        assert report.scanned == 3
        assert report.dropped == 1
        kept = load_corpus(out)
        assert len(kept) == 2 == len(report.written)
        by_cluster = {r.cluster: r for _, r in kept}
        assert by_cluster["cluster-0"].signature == "sig-short"
        assert by_cluster["cluster-0"].requests == [b"GET a\r\n"]
        assert by_cluster["cluster-1"].signature == "sig-other"

    def test_byte_tiebreak_then_filename(self, tmp_path):
        a, out = tmp_path / "a", tmp_path / "out"
        _reproducer(signature="sig-fat", requests=[b"GET aaaaaa\r\n"]).save(a)
        _reproducer(signature="sig-slim", requests=[b"GET a\r\n"]).save(a)
        report = merge_corpora([a], out)
        (_, winner), = load_corpus(out)
        assert winner.signature == "sig-slim"
        assert report.dropped == 1
        # Identical size: lexicographically-first filename wins.
        b, out2 = tmp_path / "b", tmp_path / "out2"
        first = _reproducer(signature="aaa", requests=[b"GET a\r\n"]).save(b)
        _reproducer(signature="bbb", requests=[b"GET b\r\n"]).save(b)
        merge_corpora([b], out2)
        (_, winner2), = load_corpus(out2)
        assert winner2.filename == first.name

    def test_pre_cluster_files_dedup_by_signature(self, tmp_path):
        a, out = tmp_path / "a", tmp_path / "out"
        _reproducer(cluster=None, signature="sig-0").save(a)
        _reproducer(
            cluster=None,
            signature="sig-0",
            requests=[b"SET a 1\r\n", b"GET a\r\n"],
            # Distinct filename (slug = signature would collide): mimic a
            # second campaign dir by writing into a sibling directory.
        ).save(tmp_path / "b")
        report = merge_corpora([a, tmp_path / "b"], out)
        assert report.dropped == 1
        (_, winner), = load_corpus(out)
        assert winner.requests == [b"GET a\r\n"]

    def test_exemplars_survive_alongside_findings(self, tmp_path):
        a, out = tmp_path / "a", tmp_path / "out"
        _reproducer().save(a)
        _reproducer(
            cluster=None, signature=None, verdict="match", requests=[b"PING\r\n"]
        ).save(a)
        report = merge_corpora([a], out)
        assert report.dropped == 0
        assert sorted(r.verdict for _, r in load_corpus(out)) == [
            "divergent",
            "match",
        ]

    def test_merge_is_deterministic(self, tmp_path):
        a = tmp_path / "a"
        _reproducer(signature="sig-0").save(a)
        _reproducer(cluster="cluster-1", signature="sig-1").save(a)
        out1, out2 = tmp_path / "out1", tmp_path / "out2"
        merge_corpora([a], out1)
        merge_corpora([a], out2)
        files1 = sorted(out1.glob("*.json"))
        files2 = sorted(out2.glob("*.json"))
        assert [p.name for p in files1] == [p.name for p in files2]
        for p1, p2 in zip(files1, files2):
            assert p1.read_bytes() == p2.read_bytes()

    def test_rejects_missing_and_empty_inputs(self, tmp_path):
        with pytest.raises(ValueError, match="not a corpus directory"):
            merge_corpora([tmp_path / "missing"], tmp_path / "out")
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ValueError, match="no reproducers"):
            merge_corpora([empty], tmp_path / "out")


class TestMergeCli:
    def test_merge_subcommand(self, tmp_path, capsys):
        a = tmp_path / "a"
        _reproducer().save(a)
        _reproducer(signature="sig-1", requests=[b"X\r\n", b"Y\r\n"]).save(a)
        out = tmp_path / "merged"
        code = fuzz_main(["merge", str(a), "--out", str(out)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "merged 2 reproducer(s) -> 1 cluster(s)" in captured
        assert len(list(out.glob("*.json"))) == 1

    def test_merge_missing_dir_exits_2(self, tmp_path, capsys):
        code = fuzz_main(
            ["merge", str(tmp_path / "nope"), "--out", str(tmp_path / "out")]
        )
        assert code == 2
        assert "not a corpus directory" in capsys.readouterr().err
