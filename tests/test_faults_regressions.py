"""Regression tests: no leaked instance connections, no hung clients.

When dialing the instance set partially fails, the incoming proxy must
close the connections that *did* open (they used to leak) and close the
client cleanly after the intervention response (the client used to see
its side hang until its own timeout).
"""

from __future__ import annotations

import asyncio

from repro.apps.echo import EchoServer
from repro.core import events as ev
from repro.core.config import RddrConfig
from repro.core.incoming import IncomingRequestProxy
from repro.protocols import get_protocol
from repro.transport.retry import open_connection_retry
from repro.transport.server import ServerHandle, start_server
from repro.transport.streams import close_writer, drain_write
from tests.helpers import run


class CountingEcho:
    """Echo server that tracks its currently-open connection count."""

    def __init__(self) -> None:
        self.open = 0
        self.total = 0
        self.handle: ServerHandle | None = None

    @property
    def address(self) -> tuple[str, int]:
        assert self.handle is not None
        return self.handle.address

    async def start(self) -> "CountingEcho":
        self.handle = await start_server(self._serve, name="counting-echo")
        return self

    async def close(self) -> None:
        if self.handle is not None:
            await self.handle.close()

    async def _serve(self, reader, writer) -> None:
        self.open += 1
        self.total += 1
        try:
            while True:
                line = await reader.readuntil(b"\n")
                writer.write(line)
                await drain_write(writer)
        except (asyncio.IncompleteReadError, ConnectionError):
            return
        finally:
            self.open -= 1


async def _dead_address() -> tuple[str, int]:
    """An address that refuses connections (listener already gone)."""
    placeholder = await EchoServer().start()
    address = placeholder.address
    await placeholder.close()
    return address


async def _wait_until(predicate, timeout: float = 3.0) -> bool:
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(0.02)
    return predicate()


def _partial_failure_config() -> RddrConfig:
    return RddrConfig(
        protocol="tcp", exchange_timeout=1.0, connect_attempts=2,
        connect_backoff_max=0.02,
    )


class TestPartialConnectFailure:
    def test_surviving_instance_connections_are_closed(self):
        async def main():
            live = [await CountingEcho().start() for _ in range(2)]
            dead = await _dead_address()
            proxy = IncomingRequestProxy(
                [live[0].address, live[1].address, dead],
                get_protocol("tcp"),
                _partial_failure_config(),
            )
            await proxy.start()
            reader, writer = await open_connection_retry(*proxy.address)
            assert await asyncio.wait_for(reader.read(), 5.0) == b""
            await close_writer(writer)
            # Both live instances were dialed...
            assert await _wait_until(lambda: all(s.total == 1 for s in live))
            # ...and their connections released, not leaked.
            assert await _wait_until(lambda: all(s.open == 0 for s in live)), [
                s.open for s in live
            ]
            errors = proxy.events.events(ev.INSTANCE_ERROR)
            assert len(errors) == 1
            assert "connect failed: instance 2" in errors[0].detail
            await proxy.close()
            for server in live:
                await server.close()

        run(main())

    def test_client_is_closed_promptly_not_left_hanging(self):
        async def main():
            live = await CountingEcho().start()
            dead = await _dead_address()
            proxy = IncomingRequestProxy(
                [live.address, dead], get_protocol("tcp"), _partial_failure_config()
            )
            await proxy.start()
            started = asyncio.get_running_loop().time()
            reader, writer = await open_connection_retry(*proxy.address)
            # The client never sends a byte; it still must not hang.
            assert await asyncio.wait_for(reader.read(), 5.0) == b""
            elapsed = asyncio.get_running_loop().time() - started
            assert elapsed < 3.0
            await close_writer(writer)
            await proxy.close()
            await live.close()

        run(main())

    def test_successful_session_still_releases_connections(self):
        async def main():
            live = [await CountingEcho().start() for _ in range(2)]
            proxy = IncomingRequestProxy(
                [server.address for server in live],
                get_protocol("tcp"),
                _partial_failure_config(),
            )
            await proxy.start()
            reader, writer = await open_connection_retry(*proxy.address)
            writer.write(b"hello\n")
            await writer.drain()
            assert await asyncio.wait_for(reader.readline(), 5.0) == b"hello\n"
            await close_writer(writer)
            assert await _wait_until(lambda: all(s.open == 0 for s in live))
            await proxy.close()
            for server in live:
                await server.close()

        run(main())
