"""Tests for the transport substrate: ports, streams, server, retry, TLS."""

from __future__ import annotations

import asyncio

import pytest

from repro.transport import (
    ConnectionClosed,
    PortAllocator,
    allocate_port,
    client_ssl_context,
    open_connection_retry,
    read_exact,
    read_frame,
    read_until,
    server_ssl_context,
    start_server,
    write_frame,
)
from repro.transport.streams import MAX_FRAME_SIZE, close_writer
from tests.helpers import run


class TestPortAllocator:
    def test_allocates_distinct_ports(self):
        allocator = PortAllocator()
        ports = allocator.allocate_many(16)
        assert len(set(ports)) == 16

    def test_release_allows_reuse(self):
        allocator = PortAllocator()
        port = allocator.allocate()
        allocator.release(port)
        assert port not in allocator._allocated

    def test_default_allocator(self):
        assert isinstance(allocate_port(), int)


class TestStreams:
    def test_frame_round_trip(self):
        async def main():
            async def echo(reader, writer):
                payload = await read_frame(reader)
                await write_frame(writer, payload[::-1])

            server = await start_server(echo)
            reader, writer = await open_connection_retry(*server.address)
            await write_frame(writer, b"abc")
            assert await read_frame(reader) == b"cba"
            await close_writer(writer)
            await server.close()

        run(main())

    def test_oversized_frame_rejected_on_write(self):
        async def main():
            server = await start_server(lambda r, w: asyncio.sleep(0))
            _, writer = await open_connection_retry(*server.address)
            with pytest.raises(ValueError):
                await write_frame(writer, b"x" * (MAX_FRAME_SIZE + 1))
            await close_writer(writer)
            await server.close()

        run(main())

    def test_read_exact_raises_on_early_close(self):
        async def main():
            async def close_fast(reader, writer):
                writer.write(b"ab")
                await writer.drain()
                writer.close()

            server = await start_server(close_fast)
            reader, writer = await open_connection_retry(*server.address)
            with pytest.raises(ConnectionClosed) as info:
                await read_exact(reader, 10)
            assert info.value.partial == b"ab"
            await close_writer(writer)
            await server.close()

        run(main())

    def test_read_until_raises_on_early_close(self):
        async def main():
            async def close_fast(reader, writer):
                writer.write(b"no newline")
                await writer.drain()
                writer.close()

            server = await start_server(close_fast)
            reader, writer = await open_connection_retry(*server.address)
            with pytest.raises(ConnectionClosed):
                await read_until(reader, b"\n")
            await close_writer(writer)
            await server.close()

        run(main())

    def test_zero_length_read_exact(self):
        async def main():
            reader = asyncio.StreamReader()
            assert await read_exact(reader, 0) == b""

        run(main())


class TestServerHandle:
    def test_reports_bound_address(self):
        async def main():
            server = await start_server(lambda r, w: asyncio.sleep(0), name="t")
            host, port = server.address
            assert host == "127.0.0.1"
            assert port > 0
            await server.close()

        run(main())

    def test_close_is_idempotent(self):
        async def main():
            server = await start_server(lambda r, w: asyncio.sleep(0))
            await server.close()
            await server.close()

        run(main())

    def test_handler_error_does_not_kill_server(self):
        async def main():
            async def crashy(reader, writer):
                raise RuntimeError("boom")

            server = await start_server(crashy)
            # first connection crashes the handler...
            _, w1 = await open_connection_retry(*server.address)
            await close_writer(w1)
            # ...but the server still accepts more connections
            _, w2 = await open_connection_retry(*server.address)
            await close_writer(w2)
            await server.close()

        run(main())

    def test_async_context_manager(self):
        async def main():
            async with await start_server(lambda r, w: asyncio.sleep(0)) as server:
                assert server.port > 0

        run(main())


class TestRetry:
    def test_connect_failure_raises_connection_error(self):
        async def main():
            port = allocate_port()  # nothing listening there
            with pytest.raises(ConnectionError):
                await open_connection_retry("127.0.0.1", port, attempts=2, initial_delay=0.01)

        run(main())

    def test_connects_to_late_starting_server(self):
        async def main():
            port = allocate_port()

            async def start_late():
                await asyncio.sleep(0.1)
                return await start_server(
                    lambda r, w: asyncio.sleep(0), port=port
                )

            starter = asyncio.ensure_future(start_late())
            reader, writer = await open_connection_retry(
                "127.0.0.1", port, attempts=50, initial_delay=0.02
            )
            server = await starter
            await close_writer(writer)
            await server.close()

        run(main())


class TestTls:
    def test_encrypted_round_trip(self):
        async def main():
            async def echo(reader, writer):
                data = await read_frame(reader)
                await write_frame(writer, data)

            server = await start_server(echo, ssl_context=server_ssl_context())
            reader, writer = await open_connection_retry(
                *server.address, ssl_context=client_ssl_context()
            )
            await write_frame(writer, b"secret-payload")
            assert await read_frame(reader) == b"secret-payload"
            await close_writer(writer)
            await server.close()

        run(main())

    def test_plaintext_client_cannot_complete_tls_frame(self):
        async def main():
            async def echo(reader, writer):
                data = await read_frame(reader)
                await write_frame(writer, data)

            server = await start_server(echo, ssl_context=server_ssl_context())
            reader, writer = await open_connection_retry(*server.address)
            writer.write(b"plaintext nonsense\n")
            try:
                await writer.drain()
                data = await asyncio.wait_for(reader.read(64), timeout=2)
            except (ConnectionError, asyncio.TimeoutError):
                data = b""
            # server speaks TLS: the reply is a TLS alert or a hangup,
            # never an echo of our bytes
            assert b"plaintext nonsense" not in data
            await close_writer(writer)
            await server.close()

        run(main())
