"""Catalog internals and engine-level property tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqlengine import Database
from repro.sqlengine.ast_nodes import ColumnDef
from repro.sqlengine.catalog import Catalog, Table
from repro.sqlengine.errors import (
    ConstraintViolationError,
    UndefinedColumnError,
    UndefinedTableError,
)


def _table(name: str = "t") -> Table:
    return Table(
        name,
        (
            ColumnDef("id", "integer", primary_key=True),
            ColumnDef("label", "text"),
        ),
        owner="postgres",
    )


class TestTable:
    def test_insert_coerces_by_column_type(self):
        table = _table()
        table.insert(["7", 123])
        assert table.rows == [[7, "123"]]

    def test_pk_index_lookup(self):
        table = _table()
        table.insert([1, "a"])
        table.insert([2, "b"])
        assert table.lookup_pk(2) == [2, "b"]
        assert table.lookup_pk(9) is None
        assert table.single_pk_column == "id"

    def test_pk_duplicate_rejected(self):
        table = _table()
        table.insert([1, "a"])
        with pytest.raises(ConstraintViolationError):
            table.insert([1, "dup"])

    def test_rebuild_pk_index_after_mutation(self):
        table = _table()
        table.insert([1, "a"])
        table.rows[0][0] = 5  # simulate an in-place UPDATE
        table.rebuild_pk_index()
        assert table.lookup_pk(5) == [5, "a"]
        assert table.lookup_pk(1) is None

    def test_composite_pk_has_no_single_index(self):
        table = Table(
            "t2",
            (
                ColumnDef("a", "integer", primary_key=True),
                ColumnDef("b", "integer", primary_key=True),
            ),
            owner="postgres",
        )
        table.insert([1, 2])
        assert table.single_pk_column is None
        with pytest.raises(ConstraintViolationError):
            table.insert([1, 2])
        table.insert([1, 3])  # differs in the second key component

    def test_column_position_and_errors(self):
        table = _table()
        assert table.column_position("label") == 1
        assert table.has_column("id")
        with pytest.raises(UndefinedColumnError):
            table.column_position("ghost")

    def test_estimated_bytes_grows_with_rows(self):
        table = _table()
        empty = table.estimated_bytes()
        for i in range(100):
            table.insert([i, f"label-{i}"])
        assert table.estimated_bytes() > empty


class TestCatalog:
    def test_table_lookup_and_error(self):
        catalog = Catalog()
        catalog.add_table(_table())
        assert catalog.table("t").name == "t"
        with pytest.raises(UndefinedTableError):
            catalog.table("ghost")

    def test_if_not_exists_semantics(self):
        catalog = Catalog()
        assert catalog.add_table(_table()) is True
        assert catalog.add_table(_table(), if_not_exists=True) is False

    def test_can_select_rules(self):
        catalog = Catalog()
        table = _table()
        catalog.add_table(table)
        catalog.users.add("eve")
        assert catalog.can_select("postgres", table)  # superuser
        assert not catalog.can_select("eve", table)
        catalog.select_grants.setdefault("t", set()).add("eve")
        assert catalog.can_select("eve", table)

    def test_total_bytes_sums_tables(self):
        catalog = Catalog()
        catalog.add_table(_table("a"))
        catalog.add_table(_table("b"))
        assert catalog.total_bytes() >= 2 * 256


_ROWS = st.lists(
    st.tuples(st.integers(min_value=-1000, max_value=1000), st.text(max_size=8)),
    min_size=0,
    max_size=25,
    unique_by=lambda r: r[0],
)


class TestEngineProperties:
    @given(_ROWS)
    @settings(max_examples=50, deadline=None)
    def test_order_by_returns_sorted(self, rows):
        db = Database()
        db.execute("CREATE TABLE t (id integer PRIMARY KEY, label text)")
        table = db.catalog.table("t")
        for row_id, label in rows:
            table.insert([row_id, label])
        result = db.query("SELECT id FROM t ORDER BY id")
        values = [r[0] for r in result.rows]
        assert values == sorted(row_id for row_id, _ in rows)

    @given(_ROWS)
    @settings(max_examples=50, deadline=None)
    def test_count_matches_inserted(self, rows):
        db = Database()
        db.execute("CREATE TABLE t (id integer PRIMARY KEY, label text)")
        table = db.catalog.table("t")
        for row_id, label in rows:
            table.insert([row_id, label])
        assert db.query("SELECT count(*) FROM t").scalar() == len(rows)

    @given(_ROWS, st.integers(min_value=-1000, max_value=1000))
    @settings(max_examples=50, deadline=None)
    def test_pk_lookup_agrees_with_scan(self, rows, probe):
        db = Database()
        db.execute("CREATE TABLE t (id integer PRIMARY KEY, label text)")
        table = db.catalog.table("t")
        for row_id, label in rows:
            table.insert([row_id, label])
        indexed = db.query(f"SELECT label FROM t WHERE id = {probe}").rows
        scanned = db.query(f"SELECT label FROM t WHERE id + 0 = {probe}").rows
        assert indexed == scanned

    @given(_ROWS)
    @settings(max_examples=30, deadline=None)
    def test_delete_then_count_zero(self, rows):
        db = Database()
        db.execute("CREATE TABLE t (id integer PRIMARY KEY, label text)")
        table = db.catalog.table("t")
        for row_id, label in rows:
            table.insert([row_id, label])
        db.query("DELETE FROM t")
        assert db.query("SELECT count(*) FROM t").scalar() == 0
