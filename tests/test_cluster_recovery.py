"""Cluster lifecycle operations backing the recovery subsystem:
``restart_pod`` and health-aware, drain-bounded ``scale``."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.apps.echo import EchoServer
from repro.orchestrator import Cluster, ClusterError, DeploymentSpec
from repro.transport.retry import open_connection_retry
from repro.transport.server import start_server
from repro.transport.streams import close_writer, drain_write
from tests.helpers import run


async def _echo_factory(ctx):
    return await EchoServer(
        host=ctx.host, port=ctx.port, tag=f"i{ctx.index}"
    ).start()


async def _probe(address) -> bytes:
    reader, writer = await open_connection_retry(*address, attempts=2)
    try:
        writer.write(b"ping\n")
        await writer.drain()
        return await asyncio.wait_for(reader.readline(), 2.0)
    finally:
        await close_writer(writer)


class _SlowCloseRuntime:
    """A pod runtime whose close drains 'in-flight work' for far longer
    than any reasonable deadline."""

    def __init__(self, handle) -> None:
        self.handle = handle
        self.address = handle.address

    async def close(self) -> None:
        try:
            await asyncio.sleep(10.0)
        finally:
            await self.handle.close()


async def _slow_close_factory(ctx):
    async def serve(reader, writer):
        data = await reader.readline()
        writer.write(data)
        await drain_write(writer)

    handle = await start_server(serve, ctx.host, ctx.port, name="slow-close")
    return _SlowCloseRuntime(handle)


class TestRestartPod:
    def test_restart_keeps_identity_but_moves_port(self):
        async def main():
            async with Cluster() as cluster:
                spec = DeploymentSpec(name="svc", factories=[_echo_factory] * 3)
                await cluster.apply_deployment(spec)
                before = cluster.pods("svc")[1]
                old_address = before.address

                after = await cluster.restart_pod("svc", 1)
                assert after.name == "svc-1" and after.index == 1
                assert after.address != old_address
                assert cluster.pods("svc")[1] is after
                # The old port refuses; the new pod serves (same factory,
                # so the per-index tag proves the index carried over).
                with pytest.raises(ConnectionError):
                    await open_connection_retry(*old_address, attempts=1)
                assert await _probe(after.address) == b"ping [i1]\n"

        run(main())

    def test_restart_unknown_pod_or_deployment(self):
        async def main():
            async with Cluster() as cluster:
                with pytest.raises(ClusterError):
                    await cluster.restart_pod("ghost", 0)
                spec = DeploymentSpec(name="svc", factories=[_echo_factory] * 2)
                await cluster.apply_deployment(spec)
                with pytest.raises(ClusterError):
                    await cluster.restart_pod("svc", 9)

        run(main())


class TestHealthAwareScale:
    def test_scale_down_prefers_quarantined_pods(self):
        async def main():
            async with Cluster() as cluster:
                spec = DeploymentSpec(name="svc", factories=[_echo_factory] * 3)
                await cluster.apply_deployment(spec)
                cluster.set_pod_health("svc", 1, "QUARANTINED")
                remaining = await cluster.scale("svc", 2)
                assert [pod.index for pod in remaining] == [0, 2]
                assert cluster.pod_health("svc", 1) is None
                for pod in remaining:
                    assert await _probe(pod.address) == f"ping [i{pod.index}]\n".encode()

        run(main())

    def test_scale_down_prefers_suspect_over_healthy(self):
        async def main():
            async with Cluster() as cluster:
                spec = DeploymentSpec(name="svc", factories=[_echo_factory] * 3)
                await cluster.apply_deployment(spec)
                cluster.set_pod_health("svc", 0, "SUSPECT")
                cluster.set_pod_health("svc", 2, "LIVE")
                remaining = await cluster.scale("svc", 2)
                assert [pod.index for pod in remaining] == [1, 2]

        run(main())

    def test_scale_up_after_removal_allocates_unique_index(self):
        async def main():
            async with Cluster() as cluster:
                spec = DeploymentSpec(name="svc", factories=[_echo_factory] * 3)
                await cluster.apply_deployment(spec)
                cluster.set_pod_health("svc", 1, "QUARANTINED")
                await cluster.scale("svc", 2)  # indices {0, 2} remain
                grown = await cluster.scale("svc", 3)
                indices = [pod.index for pod in grown]
                names = [pod.name for pod in grown]
                assert indices == [0, 2, 3]  # never reuses a removed index
                assert len(set(names)) == 3

        run(main())

    def test_drain_deadline_bounds_a_stuck_close(self):
        async def main():
            async with Cluster() as cluster:
                spec = DeploymentSpec(
                    name="svc", factories=[_slow_close_factory] * 2
                )
                await cluster.apply_deployment(spec)
                started = time.monotonic()
                remaining = await cluster.scale("svc", 1, drain_deadline=0.2)
                assert time.monotonic() - started < 2.0
                assert len(remaining) == 1

        run(main())
