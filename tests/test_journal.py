"""Unit tests for the durable exchange journal (repro.journal.log).

The crash-consistency core: CRC32 framing, reopen-resume, torn-tail
detection at *every byte offset* of the final frame (both truncation and
corruption), segment rotation, snapshot-anchored compaction, and the
``python -m repro.journal`` CLI.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.journal import (
    FLAG_DEGRADED,
    FLAG_MAJORITY,
    ExchangeJournal,
    JournalCorruption,
    JournalRecord,
    response_digest,
    scan_segment,
)
from repro.journal.__main__ import main as journal_cli


def _fill(path, count, *, segment_bytes=1 << 20, start=0, **kwargs):
    journal = ExchangeJournal.open(path, segment_bytes=segment_bytes, **kwargs)
    for i in range(start, start + count):
        journal.append(
            b"SET key%04d value%04d\r\n" % (i, i),
            digest=response_digest(b"+OK\r\n"),
            directory_version=7,
        )
    journal.close()
    return journal


class TestFraming:
    def test_record_round_trip(self):
        record = JournalRecord(
            id=42,
            directory_version=9,
            digest=response_digest(b"reply"),
            flags=FLAG_MAJORITY | FLAG_DEGRADED,
            request=b"\x00binary\xffrequest\r\n",
        )
        frame = record.encode()
        path_records = None
        # decode through the segment scanner
        import tempfile, pathlib

        with tempfile.TemporaryDirectory() as tmp:
            seg = pathlib.Path(tmp) / "segment-0000000000000042.rjl"
            seg.write_bytes(frame)
            path_records, valid, tear = scan_segment(seg)
        assert tear is None and valid == len(frame)
        assert path_records == [record]

    def test_append_assigns_monotonic_ids(self, tmp_path):
        journal = ExchangeJournal.open(tmp_path)
        first = journal.append(b"a", digest=1)
        second = journal.append(b"b", digest=2)
        assert (first.id, second.id) == (1, 2)
        assert [r.request for r in journal.records()] == [b"a", b"b"]
        assert list(journal.records(after=1))[0].id == 2
        journal.close()

    def test_oversized_request_rejected(self, tmp_path):
        journal = ExchangeJournal.open(tmp_path)
        from repro.journal.log import MAX_PAYLOAD

        with pytest.raises(ValueError):
            journal.append(b"x" * (MAX_PAYLOAD + 1), digest=0)
        journal.close()


class TestReopen:
    def test_reopen_resumes_after_last_id(self, tmp_path):
        _fill(tmp_path, 5)
        journal = ExchangeJournal.open(tmp_path)
        assert journal.last_id == 5
        record = journal.append(b"more", digest=0)
        assert record.id == 6
        journal.close()
        again = ExchangeJournal.open(tmp_path)
        assert again.last_id == 6
        assert again.record_count == 6
        again.close()

    def test_fresh_directory(self, tmp_path):
        journal = ExchangeJournal.open(tmp_path / "new")
        assert journal.last_id == 0
        assert list(journal.records()) == []
        assert journal.verify() == []
        journal.close()

    def test_fsync_mode_appends(self, tmp_path):
        journal = ExchangeJournal.open(tmp_path, fsync=True)
        journal.append(b"durable", digest=0)
        journal.close()
        assert ExchangeJournal.open(tmp_path).last_id == 1


class TestTornTail:
    """A crash mid-append is recovered at *every* byte offset."""

    def _build(self, tmp_path):
        _fill(tmp_path, 4)
        journal = ExchangeJournal.open(tmp_path)
        segment = journal.segments()[-1]
        journal.close()
        whole = segment.read_bytes()
        records, _, _ = scan_segment(segment)
        last_frame = records[-1].encode()
        frame_start = len(whole) - len(last_frame)
        assert whole[frame_start:] == last_frame
        return segment, whole, frame_start

    def test_truncation_at_every_offset(self, tmp_path):
        segment, whole, frame_start = self._build(tmp_path)
        for cut in range(frame_start + 1, len(whole)):
            segment.write_bytes(whole[:cut])
            journal = ExchangeJournal.open(tmp_path)
            assert journal.truncated_tail is not None, f"cut at {cut}"
            assert journal.last_id == 3, f"cut at {cut}"
            # the tear is gone: the file now ends at the last valid record
            assert segment.stat().st_size == frame_start
            # appending resumes after the survivor
            assert journal.append(b"resume", digest=0).id == 4
            journal.close()
            segment.write_bytes(whole)  # restore for the next offset

    def test_corruption_at_every_offset(self, tmp_path):
        segment, whole, frame_start = self._build(tmp_path)
        for position in range(frame_start, len(whole)):
            mutated = bytearray(whole)
            mutated[position] ^= 0xFF
            segment.write_bytes(bytes(mutated))
            journal = ExchangeJournal.open(tmp_path)
            assert journal.truncated_tail is not None, f"flip at {position}"
            assert journal.last_id == 3, f"flip at {position}"
            journal.close()
            segment.write_bytes(whole)

    def test_corruption_before_final_segment_raises(self, tmp_path):
        _fill(tmp_path, 30, segment_bytes=256)
        journal = ExchangeJournal(tmp_path)
        segments = journal.segments()
        assert len(segments) >= 2
        first = segments[0]
        raw = bytearray(first.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        first.write_bytes(bytes(raw))
        with pytest.raises(JournalCorruption):
            ExchangeJournal.open(tmp_path)
        # verify() reports it instead of raising (CLI-friendly)
        assert ExchangeJournal(tmp_path).verify()


class TestRotationAndCompaction:
    def test_rotation_by_segment_bytes(self, tmp_path):
        _fill(tmp_path, 30, segment_bytes=256)
        journal = ExchangeJournal.open(tmp_path, segment_bytes=256)
        assert len(journal.segments()) > 1
        assert [r.id for r in journal.records()] == list(range(1, 31))
        assert journal.verify() == []
        journal.close()

    def test_snapshot_and_compaction(self, tmp_path):
        _fill(tmp_path, 40, segment_bytes=256)
        journal = ExchangeJournal.open(
            tmp_path, segment_bytes=256, compact_bytes=512
        )
        size_before = journal.size_bytes
        assert size_before > 512
        journal.install_snapshot(30, b"app snapshot bytes")
        assert journal.size_bytes < size_before
        # every surviving record is beyond the epoch (no record lost)
        survivors = [r.id for r in journal.records(after=30)]
        assert survivors == list(range(31, 41))
        snapshot = journal.latest_snapshot()
        assert snapshot is not None
        assert (snapshot.epoch, snapshot.data) == (30, b"app snapshot bytes")
        assert journal.verify() == []
        journal.close()
        # reopen: last_id still reflects the tail, not the epoch
        again = ExchangeJournal.open(tmp_path, segment_bytes=256)
        assert again.last_id == 40
        again.close()

    def test_snapshot_fully_covering_journal(self, tmp_path):
        _fill(tmp_path, 20, segment_bytes=256)
        journal = ExchangeJournal.open(
            tmp_path, segment_bytes=256, compact_bytes=64
        )
        journal.install_snapshot(20, b"everything")
        assert list(journal.records(after=20)) == []
        journal.close()
        # ids continue after the epoch even with all segments compacted
        again = ExchangeJournal.open(tmp_path, segment_bytes=256)
        assert again.last_id == 20
        assert again.append(b"next", digest=0).id == 21
        again.close()

    def test_newer_snapshot_sheds_older(self, tmp_path):
        _fill(tmp_path, 20, segment_bytes=256)
        journal = ExchangeJournal.open(tmp_path, segment_bytes=256)
        journal.install_snapshot(5, b"old")
        journal.install_snapshot(15, b"new")
        assert len(journal.snapshots()) == 1
        assert journal.latest_snapshot().epoch == 15
        journal.close()

    def test_snapshot_epoch_beyond_last_id_rejected(self, tmp_path):
        journal = ExchangeJournal.open(tmp_path)
        journal.append(b"x", digest=0)
        with pytest.raises(ValueError):
            journal.install_snapshot(2, b"future")
        journal.close()

    def test_small_journal_keeps_segments(self, tmp_path):
        """Size-bounded: below compact_bytes, segments stay (snapshots
        still shed their superseded predecessors)."""
        _fill(tmp_path, 10, segment_bytes=256)
        journal = ExchangeJournal.open(
            tmp_path, segment_bytes=256, compact_bytes=1 << 20
        )
        count_before = len(journal.segments())
        journal.install_snapshot(10, b"snap")
        assert len(journal.segments()) == count_before
        journal.close()


class TestCli:
    def test_stat_and_dump(self, tmp_path):
        _fill(tmp_path, 3)
        out = io.StringIO()
        assert journal_cli(["stat", str(tmp_path)], out=out) == 0
        stat = json.loads(out.getvalue())
        assert stat["records"] == 3 and stat["last_id"] == 3
        out = io.StringIO()
        assert journal_cli(["dump", str(tmp_path)], out=out) == 0
        lines = out.getvalue().strip().splitlines()
        assert len(lines) == 3
        assert "SET key0000" in lines[0]

    def test_verify_clean_and_corrupt(self, tmp_path):
        _fill(tmp_path, 3)
        out = io.StringIO()
        assert journal_cli(["verify", str(tmp_path)], out=out) == 0
        assert "journal OK" in out.getvalue()
        journal = ExchangeJournal(tmp_path)
        segment = journal.segments()[0]
        raw = bytearray(segment.read_bytes())
        raw[10] ^= 0xFF
        segment.write_bytes(bytes(raw))
        out = io.StringIO()
        assert journal_cli(["verify", str(tmp_path)], out=out) == 1
        assert "DEFECT" in out.getvalue()
