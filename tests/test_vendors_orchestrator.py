"""Tests for the vendor engines and the in-process orchestrator."""

from __future__ import annotations

import pytest

from repro.orchestrator import Cluster, ClusterError, DeploymentSpec, ServiceSpec
from repro.pgwire import PgClient, PgWireServer
from repro.sqlengine import FeatureNotSupportedError
from repro.vendors import (
    create_enterprisesim,
    create_postsim,
    create_roachsim,
    parse_version,
)
from tests.helpers import run


class TestPostsimVersions:
    def test_parse_version(self):
        assert parse_version("10.7") == (10, 7)
        assert parse_version("9.2.20") == (9, 2, 20)

    @pytest.mark.parametrize(
        "version,planner_leak,rls_leak",
        [
            ("9.2.19", True, False),
            ("9.2.20", True, False),
            ("9.2.21", False, False),
            ("10.0", False, True),
            ("10.7", False, True),
            ("10.8", False, False),
            ("10.9", False, False),
            ("13.0", False, False),
        ],
    )
    def test_cve_windows(self, version, planner_leak, rls_leak):
        db = create_postsim(version)
        assert db.profile.planner_stats_leak is planner_leak
        assert db.profile.rls_pushdown_leak is rls_leak

    def test_version_string_embeds_version(self):
        db = create_postsim("10.7")
        assert "10.7" in db.profile.version_string
        assert db.query("SELECT version()").scalar() == db.profile.version_string


class TestRoachsim:
    def test_rejects_udf_like_cockroachdb(self):
        db = create_roachsim()
        with pytest.raises(FeatureNotSupportedError, match="unimplemented"):
            db.query(
                "CREATE FUNCTION f() RETURNS int AS 'BEGIN RETURN 1; END' "
                "LANGUAGE plpgsql"
            )

    def test_serializable_default(self):
        db = create_roachsim()
        session = db.create_session()
        result = db.query("SHOW default_transaction_isolation", session)
        assert result.scalar() == "serializable"

    def test_same_sql_dialect_as_postsim(self):
        """Benign queries answer identically across vendors — the property
        implementation diversity depends on."""
        queries = [
            "CREATE TABLE t (a int, b text)",
            "INSERT INTO t VALUES (1, 'x'), (2, 'y')",
            "SELECT b FROM t WHERE a = 2",
            "SELECT count(*) FROM t",
        ]
        engines = [create_postsim("13.0"), create_roachsim(), create_enterprisesim()]
        for sql in queries:
            rows = []
            for engine in engines:
                rows.append(engine.query(sql).rows)
            assert rows[0] == rows[1] == rows[2]


class TestCluster:
    @staticmethod
    def _pg_factory(version: str):
        async def factory(ctx):
            server = PgWireServer(
                create_postsim(version), host=ctx.host, port=ctx.port
            )
            await server.start()
            return server

        return factory

    def test_deploy_and_resolve(self):
        async def main():
            async with Cluster() as cluster:
                await cluster.apply_deployment(
                    DeploymentSpec.homogeneous("db", self._pg_factory("13.0"), 2)
                )
                cluster.apply_service(ServiceSpec(name="db-svc", deployment="db"))
                addresses = cluster.resolve("db-svc")
                assert len(addresses) == 2
                for address in addresses:
                    async with await PgClient.connect(*address) as client:
                        assert (await client.query("SELECT 1")).rows == [["1"]]

        run(main())

    def test_heterogeneous_deployment(self):
        async def main():
            async with Cluster() as cluster:
                await cluster.apply_deployment(
                    DeploymentSpec(
                        name="db",
                        factories=[self._pg_factory("10.7"), self._pg_factory("10.9")],
                    )
                )
                versions = []
                for pod in cluster.pods("db"):
                    async with await PgClient.connect(*pod.address) as client:
                        versions.append((await client.query("SHOW server_version")).rows[0][0])
                assert versions == ["10.7", "10.9"]

        run(main())

    def test_scale_up_and_down(self):
        async def main():
            async with Cluster() as cluster:
                await cluster.apply_deployment(
                    DeploymentSpec.homogeneous("db", self._pg_factory("13.0"), 1)
                )
                pods = await cluster.scale("db", 3)
                assert len(pods) == 3
                pods = await cluster.scale("db", 1)
                assert len(pods) == 1
                assert len(cluster.pods("db")) == 1

        run(main())

    def test_duplicate_deployment_rejected(self):
        async def main():
            async with Cluster() as cluster:
                spec = DeploymentSpec.homogeneous("db", self._pg_factory("13.0"), 1)
                await cluster.apply_deployment(spec)
                with pytest.raises(ClusterError):
                    await cluster.apply_deployment(
                        DeploymentSpec.homogeneous("db", self._pg_factory("13.0"), 1)
                    )

        run(main())

    def test_service_to_unknown_deployment_rejected(self):
        async def main():
            async with Cluster() as cluster:
                with pytest.raises(ClusterError):
                    cluster.apply_service(ServiceSpec(name="s", deployment="nope"))

        run(main())

    def test_resolve_one(self):
        async def main():
            async with Cluster() as cluster:
                await cluster.apply_deployment(
                    DeploymentSpec.homogeneous("db", self._pg_factory("13.0"), 2)
                )
                cluster.apply_service(ServiceSpec(name="s", deployment="db"))
                with pytest.raises(ClusterError):
                    cluster.resolve_one("s")

        run(main())

    def test_delete_deployment_closes_pods(self):
        async def main():
            async with Cluster() as cluster:
                pods = await cluster.apply_deployment(
                    DeploymentSpec.homogeneous("db", self._pg_factory("13.0"), 1)
                )
                address = pods[0].address
                await cluster.delete_deployment("db")
                with pytest.raises(ClusterError):
                    cluster.pods("db")
                with pytest.raises(ConnectionError):
                    await PgClient.connect(*address)

        run(main())

    def test_unknown_deployment_queries_rejected(self):
        async def main():
            async with Cluster() as cluster:
                with pytest.raises(ClusterError):
                    cluster.pods("ghost")
                with pytest.raises(ClusterError):
                    await cluster.scale("ghost", 2)

        run(main())
