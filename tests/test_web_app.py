"""Tests for the routing micro-framework."""

from __future__ import annotations

import json

from repro.web.app import (
    App,
    html_response,
    json_response,
    redirect_response,
    set_cookie,
    text_response,
)
from repro.web.cookies import format_set_cookie, parse_cookie_header
from repro.web.forms import encode_urlencoded, html_escape, parse_urlencoded
from repro.web.http11 import HeaderMap, Request
from tests.helpers import run


def _request(method: str, target: str, body: bytes = b"", headers=None) -> Request:
    return Request(
        method=method,
        target=target,
        headers=HeaderMap.from_dict(headers or {}),
        body=body,
    )


class TestRouting:
    def _app(self) -> App:
        app = App("t")

        @app.route("/hello/<name>")
        async def hello(ctx):
            return text_response(f"hi {ctx.path_params['name']}")

        @app.route("/files/<path:rest>")
        async def files(ctx):
            return text_response(ctx.path_params["rest"])

        @app.route("/only-post", methods=("POST",))
        async def post_only(ctx):
            return text_response("posted")

        @app.route("/sync")
        def sync_handler(ctx):
            return text_response("sync ok")

        return app

    def test_path_param(self):
        response = run(self._app().handle(_request("GET", "/hello/world")))
        assert response.body == b"hi world"

    def test_multi_segment_param(self):
        response = run(self._app().handle(_request("GET", "/files/a/b/c.txt")))
        assert response.body == b"a/b/c.txt"

    def test_404_for_unknown_path(self):
        response = run(self._app().handle(_request("GET", "/nope")))
        assert response.status == 404

    def test_405_with_allow_header(self):
        response = run(self._app().handle(_request("GET", "/only-post")))
        assert response.status == 405
        assert "POST" in (response.header("Allow") or "")

    def test_sync_handler_supported(self):
        response = run(self._app().handle(_request("GET", "/sync")))
        assert response.body == b"sync ok"

    def test_url_decoding_in_path(self):
        response = run(self._app().handle(_request("GET", "/hello/a%20b")))
        assert response.body == b"hi a b"

    def test_server_header_applied(self):
        app = self._app()
        app.server_header = "unit/1.0"
        response = run(app.handle(_request("GET", "/sync")))
        assert response.header("Server") == "unit/1.0"


class TestRequestContext:
    def test_query_parsing(self):
        app = App("t")

        @app.route("/q")
        async def q(ctx):
            return json_response(ctx.query)

        response = run(app.handle(_request("GET", "/q?a=1&b=two&empty=")))
        assert json.loads(response.body) == {"a": "1", "b": "two", "empty": ""}

    def test_form_parsing(self):
        app = App("t")

        @app.route("/f", methods=("POST",))
        async def f(ctx):
            return json_response(ctx.form)

        body = encode_urlencoded({"x": "1", "y": "a b"})
        response = run(
            app.handle(
                _request(
                    "POST",
                    "/f",
                    body=body,
                    headers={"Content-Type": "application/x-www-form-urlencoded"},
                )
            )
        )
        assert json.loads(response.body) == {"x": "1", "y": "a b"}

    def test_form_requires_content_type(self):
        app = App("t")

        @app.route("/f", methods=("POST",))
        async def f(ctx):
            return json_response(ctx.form)

        response = run(app.handle(_request("POST", "/f", body=b"x=1")))
        assert json.loads(response.body) == {}

    def test_json_body(self):
        app = App("t")

        @app.route("/j", methods=("POST",))
        async def j(ctx):
            return json_response({"got": ctx.json()})

        response = run(app.handle(_request("POST", "/j", body=b'{"k": [1, 2]}')))
        assert json.loads(response.body) == {"got": {"k": [1, 2]}}

    def test_cookie_parsing(self):
        app = App("t")

        @app.route("/c")
        async def c(ctx):
            return json_response(ctx.cookies)

        response = run(
            app.handle(_request("GET", "/c", headers={"Cookie": "a=1; b=2"}))
        )
        assert json.loads(response.body) == {"a": "1", "b": "2"}


class TestResponses:
    def test_json_sorted_keys(self):
        a = json_response({"b": 1, "a": 2})
        b = json_response({"a": 2, "b": 1})
        assert a.body == b.body  # key order can never diverge

    def test_html_response_content_type(self):
        response = html_response("<p>x</p>")
        assert "text/html" in (response.header("Content-Type") or "")

    def test_redirect(self):
        response = redirect_response("/elsewhere")
        assert response.status == 302
        assert response.header("Location") == "/elsewhere"

    def test_set_cookie_appends(self):
        response = text_response("x")
        set_cookie(response, "sid", "abc")
        set_cookie(response, "other", "def")
        cookies = response.headers.get_all("Set-Cookie")
        assert len(cookies) == 2
        assert cookies[0].startswith("sid=abc")


class TestCookiesAndForms:
    def test_parse_cookie_header(self):
        assert parse_cookie_header("a=1; b=two;c=3") == {"a": "1", "b": "two", "c": "3"}
        assert parse_cookie_header(None) == {}
        assert parse_cookie_header("malformed") == {}

    def test_format_set_cookie(self):
        value = format_set_cookie("sid", "x", max_age=60)
        assert "sid=x" in value
        assert "Max-Age=60" in value
        assert "HttpOnly" in value

    def test_urlencoded_round_trip(self):
        fields = {"a": "1", "b": "hello world", "c": "sp&cial=chars"}
        assert parse_urlencoded(encode_urlencoded(fields)) == fields

    def test_html_escape(self):
        assert html_escape("<script>'\"&") == "&lt;script&gt;&#x27;&quot;&amp;"
