"""Tree-policy tests: the spec grammar, and the fault × policy matrix on
a live outgoing proxy (vote teardown vs degrade/passthrough/shed
containment, deadline and retry-budget enforcement, budget propagation
through the execution index)."""

from __future__ import annotations

import asyncio
import socket
import time

import pytest

from repro.core.config import RddrConfig
from repro.core.outgoing import OutgoingRequestProxy
from repro.core.rddr import RddrDeployment
from repro.graph.index import ExecutionIndex
from repro.graph.policy import EdgePolicy, TreePolicy, TreePolicyError
from repro.protocols import get as get_protocol
from tests.helpers import run


class TestPolicyGrammar:
    def test_none_and_empty_mean_all_vote(self):
        for spec in (None, {}):
            policy = TreePolicy.from_dict(spec)
            assert policy.edge("anything").mode == "vote"
            assert policy.edge("anything").diffs
            assert not policy.edge("anything").contains_failure

    def test_named_edge_overrides_default(self):
        policy = TreePolicy.from_dict(
            {
                "default": {"mode": "degrade", "deadline_s": 0.5},
                "edges": {"postgres": {"mode": "shed"}},
            }
        )
        assert policy.edge("postgres").mode == "shed"
        assert policy.edge("other").mode == "degrade"
        assert policy.edge("other").deadline_s == 0.5

    def test_round_trips_through_to_dict(self):
        spec = {
            "default": {"mode": "vote"},
            "edges": {
                "db": {
                    "mode": "degrade",
                    "deadline_s": 0.5,
                    "retry_budget": 2,
                    "on_failure": "shed",
                }
            },
        }
        policy = TreePolicy.from_dict(spec)
        assert TreePolicy.from_dict(policy.to_dict()) == policy

    def test_mode_properties(self):
        assert EdgePolicy(mode="vote").diffs
        assert EdgePolicy(mode="degrade").diffs
        assert not EdgePolicy(mode="passthrough").diffs
        assert not EdgePolicy(mode="shed").diffs
        assert not EdgePolicy(mode="vote").contains_failure
        for mode in ("degrade", "passthrough", "shed"):
            assert EdgePolicy(mode=mode).contains_failure

    def test_grammar_rejections(self):
        bad_specs = [
            {"edges": {"db": {"mode": "nope"}}},
            {"edges": {"db": {"mode": "vote", "typo_key": 1}}},
            {"edges": {"db": {"deadline_s": -1.0}}},
            {"edges": {"db": {"deadline_s": 0}}},
            {"edges": {"db": {"retry_budget": -1}}},
            {"edges": {"db": {"on_failure": "explode"}}},
            {"unknown_top": {}},
            {"edges": "not-a-dict"},
            {"edges": {"db": "not-a-dict"}},
            "not-a-dict",
        ]
        for spec in bad_specs:
            with pytest.raises(TreePolicyError):
                TreePolicy.from_dict(spec)

    def test_tree_policy_error_is_a_value_error(self):
        assert issubclass(TreePolicyError, ValueError)

    def test_bad_spec_fails_at_deployment_construction(self):
        config = RddrConfig(tree_policy={"edges": {"db": {"mode": "nope"}}})
        with pytest.raises(TreePolicyError):
            RddrDeployment("x", config)


# --------------------------------------------------------------------------
# Live-proxy matrix fixtures


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class _Backend:
    """Recording line server: replies ``ok <line>``; ``stall`` never replies."""

    def __init__(self, *, stall: bool = False) -> None:
        self.requests: list[bytes] = []
        self.stall = stall
        self.server: asyncio.AbstractServer | None = None
        self.address: tuple[str, int] | None = None

    async def start(self, port: int = 0) -> "tuple[str, int]":
        self.server = await asyncio.start_server(self._handle, "127.0.0.1", port)
        self.address = self.server.sockets[0].getsockname()[:2]
        return self.address

    async def _handle(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                self.requests.append(line)
                if self.stall:
                    continue
                writer.write(b"ok " + line)
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()

    async def close(self) -> None:
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()


class _Group:
    """Both instance connections of one outgoing connection group."""

    def __init__(self) -> None:
        self.streams: list[tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []

    async def connect(self, proxy: OutgoingRequestProxy) -> None:
        for address in proxy.addresses:
            self.streams.append(await asyncio.open_connection(*address))

    async def exchange(self, lines: list[bytes]) -> list[bytes]:
        async def one(stream, line):
            reader, writer = stream
            writer.write(line)
            await writer.drain()
            return await asyncio.wait_for(reader.readline(), timeout=10.0)

        return list(
            await asyncio.gather(
                *(one(s, line) for s, line in zip(self.streams, lines))
            )
        )

    async def close(self) -> None:
        for _reader, writer in self.streams:
            writer.close()


def _config(**overrides) -> RddrConfig:
    base = dict(
        protocol="tcp",
        exchange_timeout=5.0,
        connect_attempts=2,
        connect_backoff_max=0.01,
    )
    base.update(overrides)
    return RddrConfig(**base)


async def _start_proxy(
    backend_address, edge: EdgePolicy | None, *, config: RddrConfig | None = None
) -> OutgoingRequestProxy:
    proxy = OutgoingRequestProxy(
        backend_address,
        2,
        get_protocol("tcp"),
        config or _config(),
        name="up-out-next",
        edge=edge,
    )
    await proxy.start()
    return proxy


class TestPolicyMatrix:
    def test_vote_dead_backend_tears_group_down(self):
        async def main():
            dead = ("127.0.0.1", _free_port())
            proxy = await _start_proxy(dead, EdgePolicy(mode="vote"))
            group = _Group()
            try:
                await group.connect(proxy)
                # Eager dial fails; the group tears down and clients read EOF.
                replies = await group.exchange([b"ping\n", b"ping\n"])
                assert replies == [b"", b""]
            finally:
                await group.close()
                await proxy.close()

        run(main(), timeout=30.0)

    def test_degrade_contains_dead_backend_and_recovers(self):
        async def main():
            port = _free_port()
            proxy = await _start_proxy(
                ("127.0.0.1", port), EdgePolicy(mode="degrade")
            )
            group = _Group()
            backend = _Backend()
            try:
                await group.connect(proxy)
                replies = await group.exchange([b"ping\n", b"ping\n"])
                for reply in replies:
                    assert reply.startswith(b"rddr-degraded"), reply
                assert proxy.metrics.degraded_exchanges >= 1
                # The group survived containment: once the backend comes
                # up on the same port, the next exchange serves for real.
                await backend.start(port)
                replies = await group.exchange([b"pong\n", b"pong\n"])
                assert replies == [b"ok pong\n", b"ok pong\n"]
                assert backend.requests == [b"pong\n"]
            finally:
                await group.close()
                await backend.close()
                await proxy.close()

        run(main(), timeout=30.0)

    def test_passthrough_skips_diffing(self):
        async def main():
            backend = _Backend()
            address = await backend.start()
            proxy = await _start_proxy(address, EdgePolicy(mode="passthrough"))
            group = _Group()
            try:
                await group.connect(proxy)
                # Divergent instance requests: vote would block, but a
                # passthrough edge forwards the canonical without diffing.
                replies = await group.exchange([b"AAA\n", b"BBB\n"])
                assert replies == [b"ok AAA\n", b"ok AAA\n"]
                assert backend.requests == [b"AAA\n"]
                assert proxy.metrics.divergences == 0
            finally:
                await group.close()
                await backend.close()
                await proxy.close()

        run(main(), timeout=30.0)

    def test_shed_never_contacts_backend(self):
        async def main():
            backend = _Backend()
            address = await backend.start()
            proxy = await _start_proxy(address, EdgePolicy(mode="shed"))
            group = _Group()
            try:
                await group.connect(proxy)
                for _ in range(2):  # the group stays alive across sheds
                    replies = await group.exchange([b"ping\n", b"ping\n"])
                    assert replies == [
                        b"rddr-degraded edge policy: shed\n",
                        b"rddr-degraded edge policy: shed\n",
                    ]
                assert backend.requests == []
                assert proxy.metrics.exchanges_shed >= 2
            finally:
                await group.close()
                await backend.close()
                await proxy.close()

        run(main(), timeout=30.0)

    def test_edge_deadline_bounds_a_stalled_backend(self):
        async def main():
            backend = _Backend(stall=True)
            address = await backend.start()
            proxy = await _start_proxy(
                address, EdgePolicy(mode="degrade", deadline_s=0.3)
            )
            group = _Group()
            try:
                await group.connect(proxy)
                started = time.monotonic()
                replies = await group.exchange([b"ping\n", b"ping\n"])
                elapsed = time.monotonic() - started
                for reply in replies:
                    assert reply.startswith(b"rddr-degraded"), reply
                # The edge's 0.3s share bounded the wait, not the 5s
                # exchange timeout.
                assert elapsed < 2.0, elapsed
            finally:
                await group.close()
                await backend.close()
                await proxy.close()

        run(main(), timeout=30.0)

    def test_retry_budget_caps_lifetime_redials(self):
        async def main():
            dead = ("127.0.0.1", _free_port())
            proxy = await _start_proxy(
                dead,
                EdgePolicy(mode="degrade", retry_budget=2),
                config=_config(connect_attempts=3),
            )
            group = _Group()
            try:
                await group.connect(proxy)
                await group.exchange([b"a\n", b"a\n"])
                # First dial spent the whole budget (3 attempts = 2 redials).
                assert proxy._redials_used == 2
                await group.exchange([b"b\n", b"b\n"])
                # Budget exhausted: later dials are single-attempt.
                assert proxy._redials_used == 2
            finally:
                await group.close()
                await proxy.close()

        run(main(), timeout=30.0)


class TestBudgetPropagationThroughProxy:
    def test_forwarded_index_carries_min_budget(self):
        async def main():
            protocol = get_protocol("tcp")
            backend = _Backend()
            address = await backend.start()
            proxy = await _start_proxy(
                address,
                EdgePolicy(mode="degrade", deadline_s=0.5, retry_budget=2),
                config=_config(execution_index=True),
            )
            group = _Group()
            try:
                await group.connect(proxy)
                # The parent hop passed down a 0.2s budget — tighter than
                # both the 5s exchange timeout and the edge's 0.5s share.
                parent = (
                    ExecutionIndex.origin("up")
                    .child("up-in", 1)
                    .with_budget(deadline_s=0.2)
                )
                line = protocol.attach_index(b"ping\n", parent.encode())
                replies = await group.exchange([line, line])
                # The echo backend replies with the forwarded line verbatim
                # (index envelope included) — both instances see it.
                assert all(reply.startswith(b"ok ") for reply in replies)
                assert replies[0] == replies[1]
                token, bare = protocol.extract_index(backend.requests[0])
                assert bare == b"ping\n"
                forwarded = ExecutionIndex.parse(token)
                assert forwarded is not None
                assert forwarded.root == "up"
                assert forwarded.path[0] == ("up-in", 1)
                assert forwarded.path[-1] == ("up-out-next", 0)
                assert forwarded.deadline_s == 0.2  # min(5.0, 0.5, 0.2)
                assert forwarded.retries == 2
            finally:
                await group.close()
                await backend.close()
                await proxy.close()

        run(main(), timeout=30.0)

    def test_bare_request_mints_fresh_root(self):
        async def main():
            protocol = get_protocol("tcp")
            backend = _Backend()
            address = await backend.start()
            proxy = await _start_proxy(
                address,
                EdgePolicy(mode="degrade", deadline_s=0.5),
                config=_config(execution_index=True),
            )
            group = _Group()
            try:
                await group.connect(proxy)
                replies = await group.exchange([b"ping\n", b"ping\n"])
                assert all(reply.startswith(b"ok ") for reply in replies)
                token, _bare = protocol.extract_index(backend.requests[0])
                minted = ExecutionIndex.parse(token)
                assert minted is not None
                assert minted.root.startswith("up-out-next")
                assert minted.path == (("up-out-next", 0),)
                assert minted.deadline_s == 0.5  # the edge's share alone
            finally:
                await group.close()
                await backend.close()
                await proxy.close()

        run(main(), timeout=30.0)
