"""Tests for filter-pair de-noising (paper section IV-B2)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.denoise import (
    FilterPair,
    FilterPairDenoiser,
    learn_noise_mask,
    widen_over_alnum,
)
from repro.core.diff import TOKEN_WILDCARD, CharRange, diff_tokens


class TestFilterPair:
    def test_distinct_indices_required(self):
        with pytest.raises(ValueError):
            FilterPair(1, 1)

    def test_indices(self):
        assert FilterPair(0, 2).indices() == (0, 2)


class TestWidenOverAlnum:
    def test_widens_to_alnum_run_boundaries(self):
        token = b"sid=abc123; path=/"
        # only positions 6..8 differ, but the whole run "abc123" widens
        ranges = widen_over_alnum(token, [CharRange(6, 9)])
        assert ranges == [CharRange(4, 10)]

    def test_stops_at_non_alnum(self):
        token = b"x=a|b=c"
        assert widen_over_alnum(token, [CharRange(2, 3)]) == [CharRange(2, 3)]

    def test_merges_overlapping_results(self):
        token = b"abcdef"
        ranges = widen_over_alnum(token, [CharRange(1, 2), CharRange(3, 4)])
        assert ranges == [CharRange(0, 6)]

    def test_empty_input(self):
        assert widen_over_alnum(b"abc", []) == []


class TestLearnNoiseMask:
    def test_identical_streams_learn_nothing(self):
        mask = learn_noise_mask([b"a", b"b"], [b"a", b"b"])
        assert mask.token_ranges == {}
        assert mask.tail_from is None

    def test_equal_length_difference_masks_ranges(self):
        mask = learn_noise_mask([b"id=aaaa done"], [b"id=bbbb done"])
        ranges = mask.ranges_for(0)
        assert len(ranges) == 1
        # widened over the alnum run containing the difference
        assert ranges[0] == CharRange(3, 7)

    def test_length_difference_masks_whole_token(self):
        mask = learn_noise_mask([b"short"], [b"longer-token"])
        assert mask.token_ranges[0] == TOKEN_WILDCARD

    def test_count_difference_sets_tail(self):
        mask = learn_noise_mask([b"a"], [b"a", b"b"])
        assert mask.tail_from == 1

    def test_mask_admits_third_instance_random_token(self):
        # the core false-positive scenario: three random hex ids
        a = [b"session=0011223344556677 end"]
        b = [b"session=8899aabbccddeeff end"]
        c = [b"session=deadbeefcafef00d end"]
        mask = learn_noise_mask(a, b)
        assert not diff_tokens([a, b, c], mask).divergent

    def test_mask_still_catches_structural_change(self):
        a = [b"session=0011223344556677 end"]
        b = [b"session=8899aabbccddeeff end"]
        evil = [b"session=deadbeefcafef00d LEAKED-DATA"]
        mask = learn_noise_mask(a, b)
        assert diff_tokens([a, b, evil], mask).divergent


class TestFilterPairDenoiser:
    def test_disabled_denoiser_returns_empty_mask(self):
        denoiser = FilterPairDenoiser(None)
        assert not denoiser.enabled
        mask = denoiser.mask_for([[b"x"], [b"y"]])
        assert mask.token_ranges == {}

    def test_enabled_denoiser_learns_from_pair(self):
        denoiser = FilterPairDenoiser(FilterPair(0, 1))
        mask = denoiser.mask_for([[b"aaaa"], [b"bbbb"], [b"cccc"]])
        assert 0 in mask.token_ranges

    def test_out_of_range_pair_rejected(self):
        denoiser = FilterPairDenoiser(FilterPair(0, 5))
        with pytest.raises(IndexError):
            denoiser.mask_for([[b"a"], [b"b"]])


@given(
    st.lists(
        st.text(alphabet="abcdef0123456789", min_size=4, max_size=12),
        min_size=3,
        max_size=3,
        unique=True,
    )
)
def test_property_equal_length_random_fields_never_diverge(ids):
    """Any trio of equal-length alphanumeric ids passes under the mask."""
    padded = [i.ljust(12, "0") for i in ids]
    streams = [[f"token={p};fixed".encode()] for p in padded]
    mask = learn_noise_mask(streams[0], streams[1])
    assert not diff_tokens(streams, mask).divergent


@given(st.binary(min_size=1, max_size=32))
def test_property_learning_from_identical_pair_is_strict(payload):
    """An identical filter pair masks nothing, so any third-instance
    corruption is caught."""
    stream = [payload]
    mask = learn_noise_mask(stream, list(stream))
    corrupted = [payload + b"!"]
    assert diff_tokens([stream, stream, corrupted], mask).divergent
