"""The labeled metrics registry and the ProxyMetrics view over it.

Covers the registry's family/series model (idempotent creation, label
validation, bounded cardinality), the two export surfaces (Prometheus
text exposition — golden-tested — and the JSON snapshot), and the
regression guarantee that the legacy ``ProxyMetrics`` attribute API is
an exact view over the registry.  The reservoir-sampled
``LatencyHistogram`` is property-tested against the old unbounded
implementation, kept here verbatim as the oracle.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.metrics import DEFAULT_SAMPLE_CAP, LatencyHistogram, ProxyMetrics
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    OVERFLOW_LABEL_VALUE,
    MetricsRegistry,
)


class TestRegistryFamilies:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help", ("proxy",))
        counter.labels(proxy="a").inc()
        counter.labels(proxy="a").inc(2)
        assert counter.labels(proxy="a").value == 3

        gauge = registry.gauge("g", "help", ())
        gauge.labels().set(5)
        gauge.labels().dec(1.5)
        assert gauge.labels().value == 3.5

        histogram = registry.histogram("h_seconds", "help", (), buckets=(1.0, 2.0))
        series = histogram.labels()
        for value in (0.5, 1.5, 99.0):
            series.observe(value)
        assert series.count == 3
        assert series.sum == pytest.approx(101.0)
        assert series.bucket_counts == [1, 1, 1]
        assert series.cumulative_counts() == [1, 2, 3]

    def test_family_creation_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help", ("proxy",))
        assert registry.counter("c_total", "help", ("proxy",)) is first

    def test_kind_or_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help", ("proxy",))
        with pytest.raises(ValueError):
            registry.gauge("c_total", "help", ("proxy",))
        with pytest.raises(ValueError):
            registry.counter("c_total", "help", ("proxy", "verdict"))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("0bad", "help")
        with pytest.raises(ValueError):
            registry.counter("ok_total", "help", ("bad-label",))
        with pytest.raises(ValueError):
            registry.histogram("h", "help", buckets=(2.0, 1.0))

    def test_labels_must_match_declared_names_exactly(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help", ("proxy", "verdict"))
        with pytest.raises(ValueError):
            counter.labels(proxy="a")
        with pytest.raises(ValueError):
            counter.labels(proxy="a", verdict="ok", extra="no")

    def test_counters_cannot_decrease(self):
        registry = MetricsRegistry()
        series = registry.counter("c_total", "help", ()).labels()
        with pytest.raises(ValueError):
            series.inc(-1)


class TestCardinalityBound:
    def test_overflow_series_caps_label_cardinality(self):
        registry = MetricsRegistry(max_series_per_family=3)
        counter = registry.counter("c_total", "help", ("client",))
        for i in range(10):
            counter.labels(client=f"client-{i}").inc()
        # 3 real series plus one overflow series, never more
        assert len(counter) == 4
        assert counter.dropped_series == 7
        overflow = counter.labels(client=OVERFLOW_LABEL_VALUE)
        assert overflow.value == 7
        # nothing is lost in aggregate
        assert registry.total("c_total") == 10

    def test_existing_series_stay_usable_after_overflow(self):
        registry = MetricsRegistry(max_series_per_family=2)
        counter = registry.counter("c_total", "help", ("client",))
        first = counter.labels(client="a")
        counter.labels(client="b").inc()
        counter.labels(client="c").inc()  # overflows
        first.inc()
        assert counter.labels(client="a") is first
        assert first.value == 1


class TestExport:
    def test_exposition_golden(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "rddr_exchanges_total", "Exchanges completed.", ("proxy", "verdict")
        )
        counter.labels(proxy="demo-in", verdict="unanimous").inc(2)
        counter.labels(proxy="demo-in", verdict='div"ergent\n').inc()
        registry.gauge("rddr_up", "Proxy liveness.").labels().set(1)
        histogram = registry.histogram(
            "latency_seconds", "Latency.", ("proxy",), buckets=(0.3, 1.0)
        )
        series = histogram.labels(proxy="demo-in")
        for value in (0.25, 0.5, 4.0):
            series.observe(value)
        expected = (
            "# HELP latency_seconds Latency.\n"
            "# TYPE latency_seconds histogram\n"
            'latency_seconds_bucket{le="0.3",proxy="demo-in"} 1\n'
            'latency_seconds_bucket{le="1",proxy="demo-in"} 2\n'
            'latency_seconds_bucket{le="+Inf",proxy="demo-in"} 3\n'
            'latency_seconds_sum{proxy="demo-in"} 4.75\n'
            'latency_seconds_count{proxy="demo-in"} 3\n'
            "# HELP rddr_exchanges_total Exchanges completed.\n"
            "# TYPE rddr_exchanges_total counter\n"
            'rddr_exchanges_total{proxy="demo-in",verdict="div\\"ergent\\n"} 1\n'
            'rddr_exchanges_total{proxy="demo-in",verdict="unanimous"} 2\n'
            "# HELP rddr_up Proxy liveness.\n"
            "# TYPE rddr_up gauge\n"
            "rddr_up 1\n"
        )
        assert registry.expose_text() == expected

    def test_empty_registry_exposes_empty_text(self):
        assert MetricsRegistry().expose_text() == ""

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "counts", ("proxy",)).labels(proxy="p").inc(4)
        registry.histogram("h_seconds", "times", (), buckets=(1.0,)).labels().observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["c_total"] == {
            "type": "counter",
            "help": "counts",
            "series": [{"labels": {"proxy": "p"}, "value": 4.0}],
        }
        hist = snapshot["h_seconds"]["series"][0]
        assert hist["buckets"] == [1.0]
        assert hist["bucket_counts"] == [1, 0]
        assert hist["count"] == 1 and hist["sum"] == 0.5

    def test_total_filters_and_histogram_counts(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "", ("proxy", "verdict"))
        counter.labels(proxy="a", verdict="unanimous").inc(3)
        counter.labels(proxy="a", verdict="divergent").inc()
        counter.labels(proxy="b", verdict="divergent").inc()
        assert registry.total("c_total") == 5
        assert registry.total("c_total", proxy="a") == 4
        assert registry.total("c_total", verdict="divergent") == 2
        assert registry.total("c_total", proxy="b", verdict="unanimous") == 0
        assert registry.total("never_registered_total") == 0.0
        histogram = registry.histogram("h_seconds", "", ("proxy",))
        histogram.labels(proxy="a").observe(0.1)
        histogram.labels(proxy="a").observe(0.2)
        assert registry.total("h_seconds", proxy="a") == 2

    def test_histogram_quantile_estimates(self):
        registry = MetricsRegistry()
        series = registry.histogram("h", "", (), buckets=(1.0, 2.0, 4.0)).labels()
        assert series.quantile(50) == 0.0  # empty
        for value in (0.5, 0.5, 1.5, 3.0):
            series.observe(value)
        assert 0.0 <= series.quantile(50) <= 1.0
        assert 2.0 <= series.quantile(100) <= 4.0
        with pytest.raises(ValueError):
            series.quantile(101)


class TestProxyMetricsView:
    def test_view_matches_registry(self):
        registry = MetricsRegistry()
        metrics = ProxyMetrics(registry, proxy="demo-in", protocol="tcp")
        metrics.exchanges_total += 1
        metrics.divergences += 2
        metrics.bytes_from_clients += 10
        metrics.bytes_to_clients += 7
        metrics.latency.observe(0.2)
        assert registry.total("rddr_exchanges_started_total", proxy="demo-in") == 1
        assert registry.total("rddr_divergences_total", protocol="tcp") == 2
        assert registry.total("rddr_client_bytes_total", direction="in") == 10
        assert registry.total("rddr_client_bytes_total", direction="out") == 7
        assert registry.total("rddr_exchange_latency_seconds", proxy="demo-in") == 1
        # reads come back as ints (the legacy counter API)
        assert metrics.exchanges_total == 1
        assert isinstance(metrics.exchanges_total, int)
        # legacy attribute assignment still works and lands in the registry
        metrics.exchanges_total = 10
        assert registry.total("rddr_exchanges_started_total", proxy="demo-in") == 10
        assert "rddr_divergences_total" in registry.expose_text()
        assert metrics.registry is registry

    def test_two_proxies_share_one_registry_without_collisions(self):
        registry = MetricsRegistry()
        incoming = ProxyMetrics(registry, proxy="svc-in", protocol="http")
        outgoing = ProxyMetrics(registry, proxy="svc-out-db", protocol="pgwire")
        incoming.exchanges_total += 3
        outgoing.exchanges_total += 1
        assert registry.total("rddr_exchanges_started_total", proxy="svc-in") == 3
        assert registry.total("rddr_exchanges_started_total", proxy="svc-out-db") == 1
        assert registry.total("rddr_exchanges_started_total") == 4

    def test_standalone_view_creates_private_registry(self):
        metrics = ProxyMetrics()
        metrics.exchanges_total += 1
        metrics.exchanges_blocked += 1
        assert metrics.block_rate == 1.0
        assert metrics.registry.total("rddr_exchanges_started_total") == 1

    def test_block_rate_zero_without_traffic(self):
        assert ProxyMetrics().block_rate == 0.0


# --- LatencyHistogram: reservoir bound + oracle property tests ----------


class _UnboundedHistogram:
    """The pre-reservoir implementation, kept as the property-test oracle."""

    def __init__(self) -> None:
        self.samples: list[float] = []

    def observe(self, seconds: float) -> None:
        self.samples.append(seconds)

    def percentile(self, q: float) -> float:
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100) * (len(ordered) - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return ordered[low]
        weight = rank - low
        low_value, high_value = ordered[low], ordered[high]
        value = low_value + (high_value - low_value) * weight
        return min(max(value, low_value), high_value)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0


class TestLatencyHistogramReservoir:
    def test_memory_is_bounded_by_cap(self):
        histogram = LatencyHistogram(cap=64)
        for i in range(10_000):
            histogram.observe(i / 1000)
        assert len(histogram.samples) == 64
        assert histogram.count == 10_000
        assert histogram.mean == pytest.approx(
            sum(i / 1000 for i in range(10_000)) / 10_000
        )
        assert 0.0 <= histogram.percentile(50) <= 9.999

    def test_default_cap(self):
        histogram = LatencyHistogram()
        assert histogram.cap == DEFAULT_SAMPLE_CAP
        with pytest.raises(ValueError):
            LatencyHistogram(cap=0)

    def test_seeded_reservoir_is_reproducible(self):
        def fill(seed: int) -> list[float]:
            histogram = LatencyHistogram(cap=16, seed=seed)
            for i in range(1000):
                histogram.observe(float(i))
            return histogram.samples

        assert fill(7) == fill(7)
        assert fill(7) != fill(8)

    def test_empty_percentile_and_invalid_q(self):
        assert LatencyHistogram().percentile(99) == 0.0
        with pytest.raises(ValueError):
            LatencyHistogram([1.0, 2.0]).percentile(101)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=200,
        ),
        st.integers(min_value=0, max_value=100),
    )
    def test_property_exact_below_cap(self, samples, q):
        """Below the cap the reservoir holds every sample, so percentiles
        and the mean match the old unbounded implementation exactly."""
        new = LatencyHistogram(samples)
        old = _UnboundedHistogram()
        for sample in samples:
            old.observe(sample)
        assert new.count == len(samples)
        assert new.percentile(q) == old.percentile(q)
        assert new.mean == pytest.approx(old.mean)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=64,
        ),
        st.integers(min_value=0, max_value=100),
    )
    def test_property_bounded_above_cap(self, samples, q):
        """Past the cap percentiles are estimates, but they stay inside
        the observed range and mean/count stay exact."""
        histogram = LatencyHistogram(cap=8)
        for sample in samples:
            histogram.observe(sample)
        assert min(samples) <= histogram.percentile(q) <= max(samples)
        assert histogram.count == len(samples)
        assert histogram.mean == pytest.approx(sum(samples) / len(samples))


def test_latency_buckets_are_increasing():
    assert list(LATENCY_BUCKETS) == sorted(set(LATENCY_BUCKETS))
