"""Unit tests for execution indices: token codec, budget propagation,
the five protocol carriers, and call-tree stitching."""

from __future__ import annotations

import json

from repro.graph.index import ExecutionIndex
from repro.graph.stitch import (
    indexed_records,
    load_jsonl,
    render_trees,
    stitch,
)
from repro.protocols import get as get_protocol
from repro.protocols.resp import encode_command


class TestExecutionIndexCodec:
    def test_round_trip_full(self):
        index = (
            ExecutionIndex.origin("gw-in-000007")
            .child("gw-in", 7)
            .child("gw-out-next", 3)
            .with_budget(deadline_s=0.25, retries=2)
        )
        token = index.encode()
        assert token == "v1;gw-in-000007;gw-in/7.gw-out-next/3;d=250;r=2"
        parsed = ExecutionIndex.parse(token)
        assert parsed == index

    def test_round_trip_minimal(self):
        index = ExecutionIndex.origin("root")
        parsed = ExecutionIndex.parse(index.encode())
        assert parsed is not None
        assert parsed.root == "root"
        assert parsed.path == ()
        assert parsed.deadline_s is None and parsed.retries is None

    def test_parse_is_total_on_malformed(self):
        for bad in (
            None,
            "",
            "v0;root;a/1",          # unknown version
            "v1",                   # missing fields
            "v1;root",              # missing path section
            "v1;root;a/1;d=x",      # non-numeric budget
            "v1;root;a/b",          # non-numeric seq
            "v1;ro ot;a/1",         # forbidden character
            "v1;root;a/1;r=1;d=5",  # budgets out of order
            b"v1;root;a/1",         # wrong type
        ):
            assert ExecutionIndex.parse(bad) is None, bad

    def test_sanitize_folds_unsafe_characters(self):
        index = ExecutionIndex.origin("svc one*").child("hop;two./x", 1)
        token = index.encode()
        assert ExecutionIndex.parse(token) is not None
        assert index.root == "svc-one-"
        assert index.path[0][0] == "hop-two--x"

    def test_deadline_encodes_as_whole_milliseconds(self):
        index = ExecutionIndex.origin("r").with_budget(deadline_s=0.2)
        assert index.encode().endswith(";d=200")
        parsed = ExecutionIndex.parse(index.encode())
        assert parsed.deadline_s == 0.2

    def test_negative_deadline_clamps_to_zero(self):
        index = ExecutionIndex(root="r", deadline_s=-1.0)
        assert index.encode().endswith(";d=0")


class TestBudgetPropagation:
    def test_with_budget_never_loosens(self):
        index = ExecutionIndex.origin("r").with_budget(deadline_s=0.2, retries=1)
        looser = index.with_budget(deadline_s=5.0, retries=9)
        assert looser.deadline_s == 0.2
        assert looser.retries == 1

    def test_with_budget_tightens(self):
        index = ExecutionIndex.origin("r").with_budget(deadline_s=2.0, retries=5)
        tighter = index.with_budget(deadline_s=0.5, retries=2)
        assert tighter.deadline_s == 0.5
        assert tighter.retries == 2

    def test_child_carries_budgets_unchanged(self):
        index = ExecutionIndex.origin("r").with_budget(deadline_s=0.3, retries=2)
        child = index.child("hop", 4)
        assert child.deadline_s == 0.3 and child.retries == 2
        assert child.depth == 1
        assert child.parent_path == ()
        assert child.node_key() == ("r", (("hop", 4),))


class TestProtocolCarriers:
    TOKEN = "v1;root-1;a-in/1.a-out-next/1;d=500;r=2"

    def _round_trip(self, protocol_name: str, request: bytes) -> bytes:
        protocol = get_protocol(protocol_name)
        tagged = protocol.attach_index(request, self.TOKEN)
        token, stripped = protocol.extract_index(tagged)
        assert token == self.TOKEN, protocol_name
        # Absent index extracts as a no-op.
        assert protocol.extract_index(request) == (None, request)
        return stripped

    def test_tcp_line_field(self):
        stripped = self._round_trip("tcp", b"hello world\n")
        assert stripped == b"hello world\n"

    def test_http_header(self):
        request = b"GET /projects HTTP/1.1\r\nHost: x\r\n\r\n"
        stripped = self._round_trip("http", request)
        assert stripped == request

    def test_json_member(self):
        request = json.dumps({"op": "get", "key": "k"}).encode() + b"\n"
        stripped = self._round_trip("json", request)
        assert json.loads(stripped) == {"op": "get", "key": "k"}

    def test_resp_bulk_pair(self):
        request = encode_command(b"GET", b"k")
        stripped = self._round_trip("resp", request)
        assert stripped == request

    def test_pgwire_query_comment(self):
        body = b"SELECT 1\x00"
        request = b"Q" + (len(body) + 4).to_bytes(4, "big") + body
        stripped = self._round_trip("pgwire", request)
        assert stripped == request

    def test_pgwire_non_query_passes_unindexed(self):
        startup = b"\x00\x00\x00\x08\x04\xd2\x16\x2f"
        protocol = get_protocol("pgwire")
        assert protocol.attach_index(startup, self.TOKEN) == startup
        assert protocol.extract_index(startup) == (None, startup)

    def test_tcp_degrade_response_is_framed_line(self):
        protocol = get_protocol("tcp")
        response = protocol.degrade_response("edge policy: shed")
        assert response.startswith(b"rddr-degraded ")
        assert response.endswith(b"\n")


def _trace(token: str, verdict: str = "unanimous") -> dict:
    return {
        "proxy": "p-in",
        "verdict": verdict,
        "spans": {"name": "exchange", "attrs": {"exec_index": token}},
    }


def _journal(token: str, service: str = "leaf") -> dict:
    return {"type": "journal", "service": service, "exec_index": token}


class TestStitch:
    def test_one_tree_per_root_in_first_appearance_order(self):
        records = [
            _trace("v1;rootB;a/1"),
            _trace("v1;rootA;a/1"),
            _trace("v1;rootB;a/1.b/1"),
        ]
        trees = stitch(records)
        assert [t.root_id for t in trees] == ["rootB", "rootA"]
        assert trees[0].hops == 2

    def test_synthesized_interior_nodes(self):
        # Only the depth-3 leaf was sampled; its two ancestors are
        # synthesized so the tree shape survives sampling.
        trees = stitch([_trace("v1;r;a/1.b/2.c/3")])
        assert len(trees) == 1
        nodes = list(trees[0].nodes())
        assert len(nodes) == 3
        synthesized = [n for n in nodes if n.synthesized]
        assert {n.hop for n in synthesized} == {"a", "b"}
        rendered = render_trees(trees)
        assert "(unsampled)" in rendered
        assert "c/3" in rendered

    def test_journal_records_join_their_node(self):
        records = [
            _trace("v1;r;leaf-in/4"),
            _journal("v1;r;leaf-in/4"),
            _journal("v1;r;leaf-in/4"),
        ]
        trees = stitch(records)
        (node,) = list(trees[0].nodes())
        assert len(node.traces) == 1
        assert len(node.journal) == 2
        assert "journal×2" in render_trees(trees)

    def test_unindexed_and_malformed_records_skipped(self):
        records = [
            {"proxy": "p-in", "verdict": "unanimous", "spans": {"attrs": {}}},
            {"type": "recovery", "service": "x"},
            _trace("not-a-token"),
            _trace("v1;r;"),  # parseable but pathless: nothing to place
            "not a dict",
        ]
        assert list(indexed_records(records)) == []
        assert stitch(records) == []
        assert render_trees([]) == "(no indexed records)"

    def test_load_jsonl_skips_malformed_lines(self):
        lines = [
            json.dumps(_trace("v1;r;a/1")),
            "",
            "not json",
            "[1, 2]",  # JSON but not a dict
        ]
        records = list(load_jsonl(lines))
        assert len(records) == 1
        assert len(stitch(records)) == 1
