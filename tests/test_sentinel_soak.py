"""Seeded drift-injection chaos soak: the sentinel's acceptance run.

Drives live kvstore traffic through an N=3 recovery-enabled deployment
with the sentinel's periodic audit loop running for real, while seeded
silent corruption flips state inside LIVE instances — no crash, no
divergent response, nothing the exchange path can see.  The run must
end with every corruption detected (promptly, in audit periods), each
wounded instance repaired *in place* (REPAIRING in its timeline; never
RESTARTING or QUARANTINED), ``rddr_drift_repaired_total`` advanced, a
``type:"drift"`` record trail, byte-identical post-soak snapshots, and
clean teardown.

The seed comes from ``RDDR_SOAK_SEED`` (default 1) so the CI
sentinel-soak matrix replays distinct but reproducible runs; when
``RDDR_SOAK_TRACE_DIR`` is set the trace-sink JSONL is dumped there
(pass or fail) for the CI failure artifact.
"""

from __future__ import annotations

import asyncio
import os
import random
import time

from repro.apps.kvstore import RedisLikeServer, kv_command
from repro.core.config import RddrConfig
from repro.orchestrator import Cluster, deploy_nversioned
from repro.recovery import LIVE, QUARANTINED, RESTARTING
from repro.transport.streams import close_writer
from tests.helpers import run

SEED = int(os.environ.get("RDDR_SOAK_SEED", "1"))
EXCHANGES = 120
N = 3
AUDIT_PERIOD = 0.15
#: The corruption target: seeded through the proxy (so it is journaled
#: on every instance) and never touched by soak traffic again, so an
#: injected flip persists until the sentinel heals it.  It sorts before
#: every traffic key and its value spans several chunks, so the wound —
#: flipped bytes in the value's interior — lands in chunks no live
#: write ever touches (drift in a chunk under active write load is
#: indistinguishable from replication skew within one audit round; the
#: sentinel defers such chunks to later, quieter rounds).
CANARY = b"aa:sentinel-canary"
HEALTHY = b"h" * 256


def _wound(n: int) -> bytes:
    """Corrupted canary value for injection ``n`` — same length as
    :data:`HEALTHY` (stable chunk layout) but distinct per injection, so
    two wounds can never agree with each other and outvote the truth."""
    return b"h" * 100 + bytes([0x41 + n]) * 40 + b"h" * 116


async def _kv_factory(ctx):
    return await RedisLikeServer(host=ctx.host, port=ctx.port).start()


def _config(journal_dir: str) -> RddrConfig:
    return RddrConfig(
        protocol="resp",
        exchange_timeout=2.0,
        instance_response_deadline=0.5,
        divergence_policy="vote",
        degraded_quorum=True,
        quarantine_minority=True,
        ephemeral_state=False,
        recovery_enabled=True,
        probe_period=0.05,
        probe_timeout=0.3,
        probe_failure_threshold=3,
        restart_backoff=0.05,
        rejoin_clean_exchanges=2,
        connect_attempts=3,
        connect_backoff_max=0.05,
        journal_dir=journal_dir,
        sentinel_audit_period=AUDIT_PERIOD,
        sentinel_chunk_bytes=64,
    )


def _drift_records(sink) -> list[dict]:
    return [r for r in sink.traces() if r.get("type") == "drift"]


async def _soak(journal_dir: str, baseline_tasks: set) -> None:
    rng = random.Random(SEED)
    corruption_points = sorted(rng.sample(range(20, EXCHANGES - 30), 2))
    config = _config(journal_dir)
    async with Cluster() as cluster:
        service = await deploy_nversioned(
            cluster, "soak", [_kv_factory] * N, config=config
        )
        supervisor = service.supervisor
        sentinel = service.sentinel
        assert supervisor is not None and sentinel is not None
        _SINK[0] = service.rddr.observer.sink

        # Seed a fixed working set (constant-length values keep the
        # snapshot chunk layout stable) plus the canary key.
        for i in range(8):
            assert (
                await kv_command(
                    service.address, "SET", f"key:{i:02d}", "v000000"
                )
                == b"+OK\r\n"
            )
        assert (
            await kv_command(service.address, "SET", CANARY, HEALTHY)
            == b"+OK\r\n"
        )

        sink = service.rddr.observer.sink

        def _repaired_count() -> int:
            return len(
                [r for r in _drift_records(sink) if r["action"] == "repaired"]
            )

        corruptions: list[dict] = []
        injected = 0
        exchange = 0
        deadline = asyncio.get_running_loop().time() + 60.0

        def _maybe_inject() -> None:
            nonlocal injected
            if injected >= len(corruption_points):
                return
            if exchange < corruption_points[injected]:
                return
            # One open wound at a time: a second wound while the first
            # is unhealed can deny the group any majority on the canary
            # chunks (2 of 3 corrupted), which is exactly the unrepairable
            # regime majority voting cannot help with.
            if _repaired_count() < injected:
                return
            live = [i for i in range(N) if supervisor.state(i) == LIVE]
            victim = rng.choice(live)
            pod = next(p for p in cluster.pods("soak") if p.index == victim)
            # Silent corruption: same-length flip, no crash, no response
            # divergence — invisible to the exchange path.
            pod.runtime.data[CANARY] = _wound(injected)
            corruptions.append({"instance": victim, "wall": time.time()})
            injected += 1

        # Main soak: live traffic with seeded corruption injections, then
        # keep driving traffic until both wounds landed and healed.
        while exchange < EXCHANGES or injected < 2 or _repaired_count() < 2:
            assert asyncio.get_running_loop().time() < deadline, (
                f"exchange {exchange}, injected {injected}, drift records: "
                f"{[r['action'] for r in _drift_records(sink)]}"
            )
            _maybe_inject()
            key = f"key:{exchange % 8:02d}"
            try:
                await kv_command(
                    service.address, "SET", key, f"v{exchange:06d}"
                )
            except (ConnectionError, OSError, asyncio.TimeoutError):
                pass
            exchange += 1
            await asyncio.sleep(0.005)
        assert injected == 2

        # Let the audit loop settle: every instance LIVE again.
        while not supervisor.all_live:
            assert (
                asyncio.get_running_loop().time() < deadline
            ), f"states: {supervisor.states}"
            await asyncio.sleep(0.05)
        audits_before = sentinel.audits
        while sentinel.audits == audits_before:
            assert asyncio.get_running_loop().time() < deadline
            await asyncio.sleep(0.05)

        records = _drift_records(sink)
        detected = [r for r in records if r["action"] == "detected"]
        repaired = [r for r in records if r["action"] == "repaired"]
        assert len(detected) >= len(corruptions)
        assert len(repaired) >= len(corruptions)

        # Prompt detection: the first corruption was found within a few
        # audit periods of landing (one period to the next audit, plus
        # capture + confirmation time).
        first = corruptions[0]
        latency = min(
            r["started_wall"] - first["wall"]
            for r in detected
            if r["instance"] == first["instance"]
        )
        assert latency < 6 * AUDIT_PERIOD + 0.5, f"detection took {latency:.2f}s"

        # Repairs were in place: the wounded instances saw REPAIRING but
        # never a restart or a quarantine.
        wounded = {c["instance"] for c in corruptions}
        for record in sink.traces():
            if record.get("type") != "recovery":
                continue
            if record.get("instance") in wounded:
                assert record["to"] not in (RESTARTING, QUARANTINED), record

        # The drift trail carries journal context for stitching.
        assert all("last_id" in r and "exec_index" in r for r in records)

        # Metrics moved.
        snapshot = service.rddr.metrics_snapshot()
        repaired_total = sum(
            series["value"]
            for series in snapshot["rddr_drift_repaired_total"]["series"]
        )
        assert repaired_total >= len(corruptions)
        audits_total = sum(
            series["value"]
            for series in snapshot["rddr_sentinel_audits_total"]["series"]
        )
        assert audits_total >= 3

        # Quiesce, then assert byte-identical convergence: every
        # instance, canary healed.
        await asyncio.sleep(3 * AUDIT_PERIOD)
        snapshots = set()
        for pod in cluster.pods("soak"):
            snapshots.add(pod.runtime.snapshot())
            assert pod.runtime.get(CANARY) == HEALTHY
        assert len(snapshots) == 1

        address = service.address
        await service.close()

    # Teardown hygiene: nothing keeps running, nothing listens.
    await asyncio.sleep(0.1)
    leaked = [
        task
        for task in asyncio.all_tasks() - baseline_tasks
        if task is not asyncio.current_task()
    ]
    assert leaked == [], leaked
    try:
        _, writer = await asyncio.open_connection(*address)
    except OSError:
        pass
    else:
        await close_writer(writer)
        raise AssertionError("service address still listening")


#: The deployment's trace sink, stashed so a failed run can still dump
#: its JSONL for the CI artifact.
_SINK: list = [None]


class TestSentinelSoak:
    def test_seeded_drift_soak_converges(self, tmp_path):
        async def main():
            baseline_tasks = asyncio.all_tasks()
            try:
                await _soak(str(tmp_path / "journal"), baseline_tasks)
            finally:
                trace_dir = os.environ.get("RDDR_SOAK_TRACE_DIR")
                if trace_dir and _SINK[0] is not None:
                    path = os.path.join(
                        trace_dir, f"sentinel-soak-seed{SEED}.jsonl"
                    )
                    _SINK[0].write_jsonl(path)

        run(main(), timeout=120.0)
