"""Integration tests for the Incoming Request Proxy."""

from __future__ import annotations

import asyncio
import secrets

import pytest

from repro.apps.echo import EchoServer
from repro.core.config import RddrConfig
from repro.core.incoming import IncomingRequestProxy
from repro.core.variance import VarianceRule
from repro.protocols import get_protocol
from repro.transport.retry import open_connection_retry
from repro.transport.streams import close_writer
from repro.transport.tls import client_ssl_context, server_ssl_context
from repro.web import App, HttpClient, html_response, json_response, serve_app
from tests.helpers import run


async def _tcp_exchange(address, line: bytes, timeout: float = 3.0) -> bytes:
    reader, writer = await open_connection_retry(*address)
    try:
        writer.write(line + b"\n")
        await writer.drain()
        return await asyncio.wait_for(reader.readline(), timeout)
    except asyncio.TimeoutError:
        return b""
    finally:
        await close_writer(writer)


class TestTcpProxying:
    def test_identical_instances_pass_through(self):
        async def main():
            servers = [await EchoServer().start() for _ in range(3)]
            proxy = IncomingRequestProxy(
                [s.address for s in servers],
                get_protocol("tcp"),
                RddrConfig(protocol="tcp", exchange_timeout=2.0),
            )
            await proxy.start()
            assert await _tcp_exchange(proxy.address, b"hello") == b"hello\n"
            assert proxy.metrics.exchanges_total == 1
            assert proxy.metrics.exchanges_blocked == 0
            await proxy.close()
            for s in servers:
                await s.close()

        run(main())

    def test_divergent_instance_blocks(self):
        async def main():
            servers = [
                await EchoServer().start(),
                await EchoServer(tag="buggy-v2").start(),
            ]
            proxy = IncomingRequestProxy(
                [s.address for s in servers],
                get_protocol("tcp"),
                RddrConfig(protocol="tcp", exchange_timeout=2.0),
            )
            await proxy.start()
            reply = await _tcp_exchange(proxy.address, b"hello")
            assert reply == b""  # connection closed without data
            assert proxy.metrics.divergences == 1
            assert len(proxy.events.divergences()) == 1
            await proxy.close()
            for s in servers:
                await s.close()

        run(main())

    def test_requires_two_instances(self):
        with pytest.raises(ValueError):
            IncomingRequestProxy([("127.0.0.1", 1)], get_protocol("tcp"))

    def test_instance_down_blocks_exchange(self):
        async def main():
            live = await EchoServer().start()
            dead = await EchoServer().start()
            proxy = IncomingRequestProxy(
                [live.address, dead.address],
                get_protocol("tcp"),
                RddrConfig(protocol="tcp", exchange_timeout=1.0),
            )
            await proxy.start()
            await dead.close()  # dies after the proxy learned its address
            reply = await _tcp_exchange(proxy.address, b"hi")
            assert reply == b""
            await proxy.close()
            await live.close()

        run(main())

    def test_timeout_counts_as_divergence(self):
        async def main():
            from repro.transport.server import start_server

            async def silent(reader, writer):
                await reader.readline()
                await asyncio.sleep(30)  # never answers

            echo = await EchoServer().start()
            stuck = await start_server(silent)
            proxy = IncomingRequestProxy(
                [echo.address, stuck.address],
                get_protocol("tcp"),
                RddrConfig(protocol="tcp", exchange_timeout=0.3),
            )
            await proxy.start()
            reply = await _tcp_exchange(proxy.address, b"hi")
            assert reply == b""
            assert proxy.metrics.timeouts == 1
            await proxy.close()
            await echo.close()
            await stuck.close()

        run(main())

    def test_multiple_sequential_exchanges(self):
        async def main():
            servers = [await EchoServer().start() for _ in range(2)]
            proxy = IncomingRequestProxy(
                [s.address for s in servers],
                get_protocol("tcp"),
                RddrConfig(protocol="tcp", exchange_timeout=2.0),
            )
            await proxy.start()
            reader, writer = await open_connection_retry(*proxy.address)
            for i in range(10):
                writer.write(f"msg {i}\n".encode())
                await writer.drain()
                assert await reader.readline() == f"msg {i}\n".encode()
            await close_writer(writer)
            assert proxy.metrics.exchanges_total == 10
            assert proxy.metrics.latency.count == 10
            await proxy.close()
            for s in servers:
                await s.close()

        run(main())


def _version_app(version: int) -> App:
    app = App(f"v{version}")

    @app.route("/data")
    async def data(ctx):
        return json_response({"value": 42})

    @app.route("/banner")
    async def banner(ctx):
        return json_response({"server": f"app/{version}.0"})

    @app.route("/leak")
    async def leak(ctx):
        payload = {"value": 42}
        if version == 2:
            payload["secret"] = "internal-key-123"
        return json_response(payload)

    @app.route("/random")
    async def random_page(ctx):
        return html_response(f"<p>sid={secrets.token_hex(8)}</p>")

    return app


class TestHttpProxying:
    def test_benign_forwarded_with_canonical_bytes(self):
        async def main():
            servers = [await serve_app(_version_app(1)) for _ in range(2)]
            proxy = IncomingRequestProxy(
                [s.address for s in servers],
                get_protocol("http"),
                RddrConfig(protocol="http", exchange_timeout=2.0),
            )
            await proxy.start()
            async with HttpClient(*proxy.address) as client:
                response = await client.get("/data")
            assert response.status == 200
            assert response.body == b'{"value":42}'
            await proxy.close()
            for s in servers:
                await s.close()

        run(main())

    def test_leaking_version_blocked(self):
        async def main():
            servers = [await serve_app(_version_app(v)) for v in (1, 2)]
            proxy = IncomingRequestProxy(
                [s.address for s in servers],
                get_protocol("http"),
                RddrConfig(protocol="http", exchange_timeout=2.0),
            )
            await proxy.start()
            async with HttpClient(*proxy.address) as client:
                response = await client.get("/leak")
            assert response.status == 403
            assert b"internal-key-123" not in response.body
            await proxy.close()
            for s in servers:
                await s.close()

        run(main())

    def test_variance_rule_suppresses_banner_difference(self):
        async def main():
            servers = [await serve_app(_version_app(v)) for v in (1, 2)]
            config = RddrConfig(
                protocol="http",
                exchange_timeout=2.0,
                variance_rules=[VarianceRule(pattern=r"app/\d+\.\d+")],
            )
            proxy = IncomingRequestProxy(
                [s.address for s in servers], get_protocol("http"), config
            )
            await proxy.start()
            async with HttpClient(*proxy.address) as client:
                response = await client.get("/banner")
            assert response.status == 200
            assert b"app/1.0" in response.body  # canonical instance's bytes
            await proxy.close()
            for s in servers:
                await s.close()

        run(main())

    def test_filter_pair_absorbs_nondeterminism(self):
        async def main():
            servers = [await serve_app(_version_app(1)) for _ in range(3)]
            config = RddrConfig(
                protocol="http", exchange_timeout=2.0, filter_pair=(0, 1)
            )
            proxy = IncomingRequestProxy(
                [s.address for s in servers], get_protocol("http"), config
            )
            await proxy.start()
            async with HttpClient(*proxy.address) as client:
                for _ in range(20):
                    response = await client.get("/random")
                    assert response.status == 200
            assert proxy.metrics.divergences == 0
            await proxy.close()
            for s in servers:
                await s.close()

        run(main())

    def test_without_filter_pair_nondeterminism_blocks(self):
        """Ablation: the same nondeterministic app without a filter pair
        is unusable — every exchange diverges."""

        async def main():
            servers = [await serve_app(_version_app(1)) for _ in range(2)]
            config = RddrConfig(
                protocol="http", exchange_timeout=2.0, ephemeral_state=False
            )
            proxy = IncomingRequestProxy(
                [s.address for s in servers], get_protocol("http"), config
            )
            await proxy.start()
            async with HttpClient(*proxy.address) as client:
                response = await client.get("/random")
            assert response.status == 403
            await proxy.close()
            for s in servers:
                await s.close()

        run(main())

    def test_tls_termination(self):
        async def main():
            servers = [await serve_app(_version_app(1)) for _ in range(2)]
            proxy = IncomingRequestProxy(
                [s.address for s in servers],
                get_protocol("http"),
                RddrConfig(protocol="http", exchange_timeout=2.0),
                server_ssl=server_ssl_context(),
            )
            await proxy.start()
            async with HttpClient(
                *proxy.address, ssl_context=client_ssl_context()
            ) as client:
                response = await client.get("/data")
            assert response.status == 200
            await proxy.close()
            for s in servers:
                await s.close()

        run(main())

    def test_metrics_account_bytes(self):
        async def main():
            servers = [await serve_app(_version_app(1)) for _ in range(2)]
            proxy = IncomingRequestProxy(
                [s.address for s in servers],
                get_protocol("http"),
                RddrConfig(protocol="http", exchange_timeout=2.0),
            )
            await proxy.start()
            async with HttpClient(*proxy.address) as client:
                await client.get("/data")
            assert proxy.metrics.bytes_from_clients > 0
            assert proxy.metrics.bytes_to_clients > 0
            await proxy.close()
            for s in servers:
                await s.close()

        run(main())
