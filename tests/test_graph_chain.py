"""Multi-hop chain tests: a depth-3 relay chain whose exchanges stitch
into one call tree per client request, mid-chain policy containment
observed end-to-end, journal stitching, and the GitLab → PostgreSQL
composite deployed as a two-hop pgwire chain."""

from __future__ import annotations

import asyncio
import json
from urllib.parse import quote

from repro.apps.echo import EchoServer
from repro.apps.gitlab import CVE_2019_10130_STEPS, injection_for
from repro.apps.gitlab.services import RailsApp, load_gitlab_schema
from repro.apps.relay import relay_factory
from repro.core.config import RddrConfig
from repro.core.variance import POSTGRES_VERSION_RULES
from repro.graph import ChainHop, deploy_chain
from repro.graph.stitch import load_jsonl, stitch
from repro.obs import Observer
from repro.obs.__main__ import main as obs_main
from repro.orchestrator import Cluster
from repro.pgwire import PgWireServer
from repro.vendors import create_postsim
from repro.web import HttpClient
from repro.web.server import HttpServer
from tests.helpers import run


def _echo_factory():
    async def factory(ctx):
        server = EchoServer(
            host=ctx.host, port=ctx.port, name=f"{ctx.deployment}-{ctx.index}"
        )
        return await server.start()

    return factory


def _pg_factory(version: str):
    async def factory(ctx):
        engine = create_postsim(version)
        load_gitlab_schema(engine)
        server = PgWireServer(
            engine, host=ctx.host, port=ctx.port, name=f"{ctx.deployment}-{ctx.index}"
        )
        await server.start()
        return server

    return factory


def _tcp_config(**overrides) -> RddrConfig:
    base = dict(
        protocol="tcp",
        exchange_timeout=3.0,
        execution_index=True,
        connect_attempts=5,
        connect_backoff_max=0.05,
    )
    base.update(overrides)
    return RddrConfig(**base)


def _three_hops(**beta_overrides) -> list[ChainHop]:
    return [
        ChainHop("alpha", [relay_factory(), relay_factory()], _tcp_config()),
        ChainHop(
            "beta",
            [relay_factory(), relay_factory()],
            _tcp_config(**beta_overrides),
        ),
        ChainHop("gamma", [_echo_factory(), _echo_factory()], _tcp_config()),
    ]


DEEPEST = ["alpha-in", "alpha-out-next", "beta-in", "beta-out-next", "gamma-in"]


class TestThreeHopChain:
    def test_round_trip_stitches_one_tree_per_request(self, tmp_path, capsys):
        sink_lines: list[str] = []

        async def main():
            observer = Observer()
            async with Cluster() as cluster:
                chain = await deploy_chain(
                    cluster, _three_hops(), observer=observer
                )
                try:
                    reader, writer = await asyncio.open_connection(*chain.address)
                    for payload in (b"one\n", b"two\n", b"three\n"):
                        writer.write(payload)
                        await writer.drain()
                        reply = await asyncio.wait_for(
                            reader.readline(), timeout=10.0
                        )
                        assert reply == payload
                    writer.close()
                    assert chain.all_live
                finally:
                    await chain.close()
            sink_lines.extend(observer.sink.jsonl().splitlines())

        run(main(), timeout=60.0)

        trees = stitch(load_jsonl(sink_lines))
        assert len(trees) == 3
        for tree in trees:
            deep_paths = [
                [hop for hop, _seq in node.path]
                for node in tree.nodes()
                if len(node.path) == 5
            ]
            assert DEEPEST in deep_paths, tree.root_id
            # Full sampling: every hop was observed, nothing synthesized.
            assert not any(node.synthesized for node in tree.nodes())

        # The obs CLI renders the same forest from the dumped JSONL.
        dump = tmp_path / "traces.jsonl"
        dump.write_text("\n".join(sink_lines) + "\n")
        assert obs_main(["tree", str(dump)]) == 0
        out = capsys.readouterr().out
        assert out.count("root ") == 3
        assert "gamma-in" in out

        assert obs_main(["tree", "--json", str(dump)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 3

    def test_mid_hop_shed_contained_end_to_end(self):
        async def main():
            observer = Observer()
            async with Cluster() as cluster:
                chain = await deploy_chain(
                    cluster,
                    _three_hops(
                        tree_policy={"edges": {"next": {"mode": "shed"}}}
                    ),
                    observer=observer,
                )
                try:
                    reader, writer = await asyncio.open_connection(*chain.address)
                    for _ in range(2):  # the connection survives containment
                        writer.write(b"ping\n")
                        await writer.drain()
                        reply = await asyncio.wait_for(
                            reader.readline(), timeout=10.0
                        )
                        # The shed verdict minted at beta's outgoing edge
                        # arrives as a framed line, not a teardown.
                        assert reply == b"rddr-degraded edge policy: shed\n"
                    writer.close()
                    shed_proxy = chain.hop("beta").rddr.outgoing["next"]
                    assert shed_proxy.metrics.exchanges_shed >= 2
                    # Upstream hops saw clean exchanges throughout.
                    assert chain.hop("alpha").rddr.incoming.metrics.divergences == 0
                finally:
                    await chain.close()

        run(main(), timeout=60.0)

    def test_leaf_journal_records_stitch_into_the_tree(self, tmp_path):
        sink_lines: list[str] = []

        async def main():
            observer = Observer()
            hops = _three_hops()
            hops[2] = ChainHop(
                "gamma",
                [_echo_factory(), _echo_factory()],
                _tcp_config(journal_dir=str(tmp_path / "journal")),
            )
            async with Cluster() as cluster:
                chain = await deploy_chain(cluster, hops, observer=observer)
                try:
                    reader, writer = await asyncio.open_connection(*chain.address)
                    writer.write(b"persist me\n")
                    await writer.drain()
                    reply = await asyncio.wait_for(reader.readline(), timeout=10.0)
                    assert reply == b"persist me\n"
                    writer.close()
                finally:
                    await chain.close()
            sink_lines.extend(observer.sink.jsonl().splitlines())

        run(main(), timeout=60.0)

        trees = stitch(load_jsonl(sink_lines))
        journal_nodes = [
            node
            for tree in trees
            for node in tree.nodes()
            if node.journal and len(node.path) == 5
        ]
        assert journal_nodes, "leaf journal records did not stitch"
        assert all(node.hop == "gamma-in" for node in journal_nodes)


class TestGitlabPostgresChain:
    """The paper's GitLab composite with its database tier reached
    through a pooler hop: Rails → [pool: 2 relays] → [pg: 3 postsim]."""

    def test_cve_contained_and_exchanges_stitch(self):
        async def main():
            observer = Observer()
            pg_config = RddrConfig(
                protocol="pgwire",
                exchange_timeout=2.0,
                filter_pair=(0, 1),
                variance_rules=list(POSTGRES_VERSION_RULES),
                execution_index=True,
            )
            pool_config = RddrConfig(
                protocol="pgwire",
                exchange_timeout=3.0,
                execution_index=True,
            )
            hops = [
                ChainHop(
                    "gitlab-pg-pool",
                    [relay_factory(), relay_factory()],
                    pool_config,
                ),
                ChainHop(
                    "gitlab-pg",
                    [
                        _pg_factory("10.7"),
                        _pg_factory("10.7"),
                        _pg_factory("10.9"),
                    ],
                    pg_config,
                ),
            ]
            async with Cluster() as cluster:
                chain = await deploy_chain(cluster, hops, observer=observer)
                rails = RailsApp(chain.address)
                rails_server = HttpServer(rails.app)
                await rails_server.start()
                try:
                    # Benign traffic flows through both hops.
                    async with HttpClient(*rails_server.handle.address) as client:
                        response = await client.get("/projects")
                    assert response.status == 200

                    # The CVE-2019-10130 exploit diverges at the leaf and
                    # never leaks the protected token through the chain.
                    for step in CVE_2019_10130_STEPS:
                        async with HttpClient(
                            *rails_server.handle.address
                        ) as client:
                            response = await client.get(
                                "/search?q=" + quote(injection_for(step))
                            )
                        assert b"glpat-root-AAAA1111SECRET" not in response.body
                    assert len(chain.hop("gitlab-pg").rddr.events.divergences()) >= 1

                    # Benign traffic still works afterwards.
                    async with HttpClient(*rails_server.handle.address) as client:
                        response = await client.get("/projects")
                    assert response.status == 200
                finally:
                    await rails_server.close()
                    await chain.close()

            # Query exchanges stitched across both hops: pooler incoming →
            # pooler outgoing → database incoming.
            trees = stitch(load_jsonl(observer.sink.jsonl().splitlines()))
            deep_paths = [
                [hop for hop, _seq in node.path]
                for tree in trees
                for node in tree.nodes()
                if len(node.path) == 3
            ]
            assert [
                "gitlab-pg-pool-in",
                "gitlab-pg-pool-out-next",
                "gitlab-pg-in",
            ] in deep_paths

        run(main(), timeout=90.0)
