"""Tests for the RESP protocol module and the kvstore pair.

Together these validate the paper's extensibility claim (section IV-B1):
a new application-layer protocol plugs into both proxies untouched.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.kvstore import (
    KeyDbLikeServer,
    RedisLikeServer,
    kv_command,
)
from repro.core.config import RddrConfig
from repro.core.incoming import IncomingRequestProxy
from repro.protocols import get_protocol
from repro.protocols.resp import RespError, encode_command, read_value, split_elements
from tests.helpers import run


def _feed(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


class TestRespFraming:
    @pytest.mark.parametrize(
        "value",
        [
            b"+OK\r\n",
            b"-ERR nope\r\n",
            b":42\r\n",
            b"$5\r\nhello\r\n",
            b"$-1\r\n",
            b"$0\r\n\r\n",
            b"*2\r\n$3\r\nGET\r\n$3\r\nfoo\r\n",
            b"*0\r\n",
        ],
    )
    def test_read_value_round_trips(self, value):
        async def main():
            assert await read_value(_feed(value + b"TRAILER")) == value

        run(main())

    def test_eof_returns_none(self):
        async def main():
            assert await read_value(_feed(b"")) is None

        run(main())

    def test_bad_type_rejected(self):
        async def main():
            with pytest.raises(RespError):
                await read_value(_feed(b"?what\r\n"))

        run(main())

    def test_encode_command(self):
        assert encode_command("GET", "key") == b"*2\r\n$3\r\nGET\r\n$3\r\nkey\r\n"

    def test_split_elements(self):
        value = b"*2\r\n$3\r\nGET\r\n$3\r\nfoo\r\n"
        elements = split_elements(value)
        assert elements == [b"*2\r\n", b"$3\r\nGET\r\n", b"$3\r\nfoo\r\n"]

    def test_tokenizer_registered(self):
        protocol = get_protocol("resp")
        tokens = protocol.tokenize(b"+PONG\r\n")
        assert tokens == [b"+PONG\r\n"]

    def test_block_response_is_resp_error(self):
        block = get_protocol("resp").block_response("diverged\r\nbadly")
        assert block.startswith(b"-RDDRERR")
        assert b"\r\n" == block[-2:]
        assert block.count(b"\r\n") == 1  # newlines in the message sanitised

    @given(st.binary(min_size=0, max_size=128))
    @settings(max_examples=100)
    def test_tokenizer_total_on_garbage(self, data):
        tokens = get_protocol("resp").tokenize(data)
        assert isinstance(tokens, list)


class TestKvServers:
    def test_basic_commands(self):
        async def main():
            server = await RedisLikeServer().start()
            assert await kv_command(server.address, "PING") == b"+PONG\r\n"
            assert await kv_command(server.address, "SET", "k", "v") == b"+OK\r\n"
            assert await kv_command(server.address, "GET", "k") == b"$1\r\nv\r\n"
            assert await kv_command(server.address, "EXISTS", "k") == b":1\r\n"
            assert await kv_command(server.address, "DEL", "k") == b":1\r\n"
            assert await kv_command(server.address, "GET", "k") == b"$-1\r\n"
            assert (await kv_command(server.address, "BOGUS")).startswith(b"-ERR")
            await server.close()

        run(main())

    def test_keys_listing_sorted(self):
        async def main():
            server = await RedisLikeServer().start()
            await kv_command(server.address, "SET", "b", "2")
            await kv_command(server.address, "SET", "a", "1")
            reply = await kv_command(server.address, "KEYS", "*")
            assert reply == b"*2\r\n$1\r\na\r\n$1\r\nb\r\n"
            await server.close()

        run(main())

    def test_vulnerable_keydb_leaks_same_prefix_entry(self):
        async def main():
            server = await KeyDbLikeServer(version="6.0.0").start()
            assert server.vulnerable
            await kv_command(server.address, "SET", "tenant:alice:token", "SECRET-A")
            reply = await kv_command(server.address, "GET", "tenant:bob:token")
            assert b"SECRET-A" in reply  # the leak
            await server.close()

        run(main())

    def test_fixed_keydb_does_not_leak(self):
        async def main():
            server = await KeyDbLikeServer(version="6.2.0").start()
            assert not server.vulnerable
            await kv_command(server.address, "SET", "tenant:alice:token", "SECRET-A")
            reply = await kv_command(server.address, "GET", "tenant:bob:token")
            assert reply == b"$-1\r\n"
            await server.close()

        run(main())

    def test_pair_agrees_on_benign_traffic(self):
        async def main():
            redis = await RedisLikeServer().start()
            keydb = await KeyDbLikeServer(version="6.0.0").start()
            for server in (redis, keydb):
                await kv_command(server.address, "SET", "k1", "v1")
            for command in (("GET", "k1"), ("EXISTS", "k1"), ("PING",), ("KEYS", "*")):
                a = await kv_command(redis.address, *command)
                b = await kv_command(keydb.address, *command)
                assert a == b, command
            await redis.close()
            await keydb.close()

        run(main())


class TestRespBehindRddr:
    def test_cache_leak_mitigated_by_diversity(self):
        """The full extensibility demo: a brand-new protocol module
        N-versions a brand-new service class with zero proxy changes."""

        async def main():
            redis = await RedisLikeServer().start()
            keydb = await KeyDbLikeServer(version="6.0.0").start()
            proxy = IncomingRequestProxy(
                [redis.address, keydb.address],
                get_protocol("resp"),
                RddrConfig(protocol="resp", exchange_timeout=2.0),
            )
            await proxy.start()
            # benign writes/reads replicate to both implementations
            assert await kv_command(proxy.address, "SET", "tenant:alice:token", "SECRET-A") == b"+OK\r\n"
            reply = await kv_command(proxy.address, "GET", "tenant:alice:token")
            assert b"SECRET-A" in reply
            # the exploit: missing key under a shared prefix
            leaked = await kv_command(proxy.address, "GET", "tenant:bob:token")
            assert b"SECRET-A" not in leaked
            assert len(proxy.events.divergences()) == 1
            await proxy.close()
            await redis.close()
            await keydb.close()

        run(main())

    def test_benign_resp_traffic_not_blocked(self):
        async def main():
            servers = [await RedisLikeServer().start() for _ in range(2)]
            proxy = IncomingRequestProxy(
                [s.address for s in servers],
                get_protocol("resp"),
                RddrConfig(protocol="resp", exchange_timeout=2.0),
            )
            await proxy.start()
            for i in range(10):
                assert await kv_command(proxy.address, "SET", f"k{i}", f"v{i}") == b"+OK\r\n"
            assert await kv_command(proxy.address, "GET", "k3") == b"$2\r\nv3\r\n"
            assert proxy.metrics.divergences == 0
            await proxy.close()
            for server in servers:
                await server.close()

        run(main())
