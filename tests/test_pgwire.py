"""Tests for the PostgreSQL wire protocol codec, server, and client."""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pgwire import messages as wire
from repro.pgwire.client import PgClient
from repro.pgwire.server import serve_database
from repro.sqlengine import Database
from repro.transport.retry import open_connection_retry
from repro.transport.streams import close_writer
from tests.helpers import run


class TestCodec:
    def test_startup_round_trip(self):
        async def main():
            message = wire.StartupMessage({"user": "bob", "database": "db"})
            reader = asyncio.StreamReader()
            reader.feed_data(message.encode())
            parsed = await wire.read_startup(reader)
            assert isinstance(parsed, wire.StartupMessage)
            assert parsed.parameters == {"user": "bob", "database": "db"}

        run(main())

    def test_ssl_request_detected(self):
        async def main():
            reader = asyncio.StreamReader()
            reader.feed_data(wire.SslRequest().encode())
            parsed = await wire.read_startup(reader)
            assert isinstance(parsed, wire.SslRequest)

        run(main())

    def test_typed_message_round_trip(self):
        async def main():
            message = wire.query_message("SELECT 1")
            reader = asyncio.StreamReader()
            reader.feed_data(message.encode())
            parsed = await wire.read_message(reader)
            assert parsed.tag == b"Q"
            assert wire.parse_query(parsed) == "SELECT 1"

        run(main())

    def test_row_description_round_trip(self):
        fields = [wire.FieldDescription("id", 23), wire.FieldDescription("name", 25)]
        parsed = wire.parse_row_description(wire.row_description(fields))
        assert [(f.name, f.type_oid) for f in parsed] == [("id", 23), ("name", 25)]

    def test_data_row_round_trip_with_null(self):
        values = ["x", None, "42"]
        assert wire.parse_data_row(wire.data_row(values)) == values

    def test_error_fields_round_trip(self):
        message = wire.error_response("ERROR", "42P01", "no such relation")
        fields = wire.parse_fields(message)
        assert fields.severity == "ERROR"
        assert fields.sqlstate == "42P01"
        assert fields.message == "no such relation"

    def test_split_messages(self):
        blob = (
            wire.command_complete("SELECT 1").encode()
            + wire.ready_for_query().encode()
        )
        messages, tail = wire.split_messages(blob)
        assert [m.tag for m in messages] == [b"C", b"Z"]
        assert tail == b""

    def test_split_messages_partial_tail(self):
        blob = wire.ready_for_query().encode()
        messages, tail = wire.split_messages(blob + b"D\x00\x00")
        assert len(messages) == 1
        assert tail == b"D\x00\x00"

    def test_split_rejects_bad_length(self):
        with pytest.raises(wire.ProtocolError):
            wire.split_messages(b"Q\x00\x00\x00\x01")

    @given(st.lists(st.one_of(st.none(), st.text(max_size=32)), max_size=8))
    def test_property_data_row_round_trip(self, values):
        assert wire.parse_data_row(wire.data_row(values)) == values

    @given(st.text(alphabet=st.characters(codec="utf-8", blacklist_characters="\x00"), max_size=64))
    def test_property_query_round_trip(self, sql):
        assert wire.parse_query(wire.query_message(sql)) == sql


class TestServerClient:
    def test_query_cycle(self):
        async def main():
            db = Database()
            server = await serve_database(db)
            async with await PgClient.connect(*server.address) as client:
                outcome = await client.query("SELECT 1 + 1")
                assert outcome.ok
                assert outcome.rows == [["2"]]
            await server.close()

        run(main())

    def test_multi_statement_script(self):
        async def main():
            db = Database()
            server = await serve_database(db)
            async with await PgClient.connect(*server.address) as client:
                outcome = await client.query(
                    "CREATE TABLE t (a int); INSERT INTO t VALUES (1); SELECT a FROM t"
                )
                assert [r.command_tag for r in outcome.results] == [
                    "CREATE TABLE",
                    "INSERT 0 1",
                    "SELECT 1",
                ]
            await server.close()

        run(main())

    def test_error_response(self):
        async def main():
            db = Database()
            server = await serve_database(db)
            async with await PgClient.connect(*server.address) as client:
                outcome = await client.query("SELECT * FROM missing")
                assert not outcome.ok
                assert outcome.error.sqlstate == "42P01"
                # the connection survives: the next query works
                assert (await client.query("SELECT 1")).ok
            await server.close()

        run(main())

    def test_notices_delivered(self):
        async def main():
            db = Database()
            server = await serve_database(db)
            async with await PgClient.connect(*server.address) as client:
                await client.query(
                    "CREATE FUNCTION n() RETURNS int AS "
                    "'BEGIN RAISE NOTICE ''hi''; RETURN 1; END' LANGUAGE plpgsql"
                )
                outcome = await client.query("SELECT n()")
                assert [n.message for n in outcome.notices] == ["hi"]
            await server.close()

        run(main())

    def test_notices_suppressed_by_setting(self):
        async def main():
            db = Database()
            server = await serve_database(db)
            async with await PgClient.connect(*server.address) as client:
                await client.query(
                    "CREATE FUNCTION n() RETURNS int AS "
                    "'BEGIN RAISE NOTICE ''hi''; RETURN 1; END' LANGUAGE plpgsql"
                )
                await client.query("SET client_min_messages TO 'error'")
                outcome = await client.query("SELECT n()")
                assert outcome.notices == []
            await server.close()

        run(main())

    def test_session_user_from_startup(self):
        async def main():
            db = Database()
            db.execute("CREATE TABLE t (a int); CREATE USER eve;")
            server = await serve_database(db)
            async with await PgClient.connect(*server.address, user="eve") as client:
                outcome = await client.query("SELECT * FROM t")
                assert outcome.error is not None  # eve lacks SELECT
                assert outcome.error.sqlstate == "42501"
            await server.close()

        run(main())

    def test_ssl_request_refused_then_plaintext(self):
        async def main():
            db = Database()
            server = await serve_database(db)
            reader, writer = await open_connection_retry(*server.address)
            writer.write(wire.SslRequest().encode())
            await writer.drain()
            assert await reader.readexactly(1) == b"N"
            writer.write(wire.StartupMessage({"user": "postgres"}).encode())
            await writer.drain()
            message = await wire.read_message(reader)
            assert message.tag == b"R"  # AuthenticationOk
            await close_writer(writer)
            await server.close()

        run(main())

    def test_empty_query(self):
        async def main():
            db = Database()
            server = await serve_database(db)
            async with await PgClient.connect(*server.address) as client:
                outcome = await client.query("   ")
                assert outcome.results[0].command_tag == "EMPTY"
            await server.close()

        run(main())

    def test_server_version_parameter(self):
        async def main():
            from repro.vendors import create_postsim

            server = await serve_database(create_postsim("10.7"))
            client = await PgClient.connect(*server.address)
            assert client.parameters["server_version"] == "10.7"
            await client.close()
            await server.close()

        run(main())

    def test_concurrent_clients(self):
        async def main():
            db = Database()
            db.execute("CREATE TABLE t (a int); INSERT INTO t VALUES (1)")
            server = await serve_database(db)

            async def one(i: int) -> str:
                async with await PgClient.connect(*server.address) as client:
                    outcome = await client.query("SELECT a FROM t")
                    return outcome.rows[0][0]

            results = await asyncio.gather(*(one(i) for i in range(16)))
            assert results == ["1"] * 16
            await server.close()

        run(main())
