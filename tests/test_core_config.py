"""Tests for RDDR configuration serialization."""

from __future__ import annotations

from repro.core.config import RddrConfig
from repro.core.denoise import FilterPair
from repro.core.variance import VarianceRule


class TestDefaults:
    def test_default_config(self):
        config = RddrConfig()
        assert config.protocol == "tcp"
        assert config.filter_pair is None
        assert config.ephemeral_state is True
        assert config.canonical_instance == 0

    def test_filter_pair_object(self):
        assert RddrConfig().filter_pair_obj() is None
        pair = RddrConfig(filter_pair=(1, 2)).filter_pair_obj()
        assert isinstance(pair, FilterPair)
        assert pair.indices() == (1, 2)


class TestRoundTrip:
    def _config(self) -> RddrConfig:
        return RddrConfig(
            protocol="http",
            filter_pair=(0, 1),
            variance_rules=[
                VarianceRule(pattern=r"v\d+", description="version"),
            ],
            exchange_timeout=3.5,
            ephemeral_state=False,
            ephemeral_min_length=8,
            canonical_instance=2,
            block_message="nope",
        )

    def test_dict_round_trip(self):
        config = self._config()
        restored = RddrConfig.from_dict(config.to_dict())
        assert restored.protocol == "http"
        assert restored.filter_pair == (0, 1)
        assert restored.exchange_timeout == 3.5
        assert restored.ephemeral_state is False
        assert restored.ephemeral_min_length == 8
        assert restored.canonical_instance == 2
        assert restored.block_message == "nope"
        assert restored.variance_rules[0].pattern == r"v\d+"

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "rddr.json"
        config = self._config()
        config.dump(path)
        restored = RddrConfig.load(path)
        assert restored.to_dict() == config.to_dict()

    def test_from_minimal_dict(self):
        config = RddrConfig.from_dict({"protocol": "pgwire"})
        assert config.protocol == "pgwire"
        assert config.filter_pair is None
        assert config.variance_rules == []
