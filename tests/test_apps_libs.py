"""Tests for the diverse library pairs (paper section V-A).

The load-bearing property for every pair: *benign inputs produce
byte-identical outputs; the exploit input produces divergent outputs.*
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.apps.restful.libs import (
    CairosvgLike,
    ConversionError,
    CryptoLike,
    DecryptionError,
    LxmlCleanLike,
    Markdown2Like,
    MarkdownLike,
    PyRsaLike,
    SanitizeHtmlLike,
    SvglibLike,
    benign_html,
    benign_markdown,
    benign_svg,
    encrypt,
    exploit_ciphertext,
    exploit_html,
    exploit_markdown,
    exploit_svg,
)
from repro.apps.restful.libs.rsa_pair import KEY_BYTES


class TestRsaPair:
    def test_benign_round_trip_identical(self):
        ciphertext = encrypt(b"hello world")
        assert PyRsaLike().decrypt(ciphertext) == b"hello world"
        assert CryptoLike().decrypt(ciphertext) == b"hello world"

    def test_exploit_diverges(self):
        payload = exploit_ciphertext(b"forged")
        assert PyRsaLike().decrypt(payload) == b"forged"  # the CVE
        with pytest.raises(DecryptionError):
            CryptoLike().decrypt(payload)

    def test_short_ciphertext_rejected_by_strict(self):
        with pytest.raises(DecryptionError):
            CryptoLike().decrypt(b"\x01" * (KEY_BYTES - 1))

    def test_garbage_rejected_by_both(self):
        garbage = b"\xff" * KEY_BYTES
        with pytest.raises(DecryptionError):
            PyRsaLike().decrypt(garbage)
        with pytest.raises(DecryptionError):
            CryptoLike().decrypt(garbage)

    def test_message_too_long_for_key(self):
        with pytest.raises(ValueError):
            encrypt(b"x" * (KEY_BYTES - 10))

    @given(st.binary(min_size=0, max_size=KEY_BYTES - 11))
    def test_property_pair_agrees_on_all_valid_ciphertexts(self, message):
        ciphertext = encrypt(message)
        assert PyRsaLike().decrypt(ciphertext) == CryptoLike().decrypt(ciphertext) == message


class TestMarkdownPair:
    def test_benign_documents_identical(self):
        source = benign_markdown()
        assert Markdown2Like().render(source) == MarkdownLike().render(source)

    def test_exploit_diverges(self):
        source = exploit_markdown()
        vulnerable = Markdown2Like().render(source)
        fixed = MarkdownLike().render(source)
        assert "javascript:" in vulnerable
        assert "javascript:" not in fixed
        assert vulnerable != fixed

    def test_obfuscated_scheme_also_neutralised_by_fixed(self):
        source = "[x](JaVaScRiPt:alert(1))"
        assert "javascript" not in MarkdownLike().render(source).lower().replace(
            "javascript", "", 0
        ) or 'href="#"' in MarkdownLike().render(source)

    @pytest.mark.parametrize(
        "source",
        [
            "plain paragraph",
            "# Heading",
            "## Sub *heading*",
            "text with **bold** and *em* and `code`",
            "[link](https://example.com/path?q=1)",
            "para one\n\npara two\n\npara three",
            "multi\nline\nparagraph",
        ],
    )
    def test_supported_benign_subset_identical(self, source):
        assert Markdown2Like().render(source) == MarkdownLike().render(source)


class TestSvgPair:
    def test_benign_documents_identical(self):
        source = benign_svg()
        assert SvglibLike().convert(source) == CairosvgLike().convert(source)

    def test_exploit_diverges_and_leaks(self, tmp_path):
        secret = tmp_path / "secret.txt"
        secret.write_text("FILE-CONTENT-XYZ")
        source = exploit_svg(str(secret))
        leaked = SvglibLike().convert(source)
        assert b"FILE-CONTENT-XYZ" in leaked  # the XXE leak is real
        with pytest.raises(ConversionError):
            CairosvgLike().convert(source)

    def test_internal_entities_resolved_by_both(self):
        source = (
            "<?xml version='1.0'?>"
            "<!DOCTYPE svg [<!ENTITY greeting \"hello\">]>"
            "<svg><text>&greeting; world</text></svg>"
        )
        assert SvglibLike().convert(source) == CairosvgLike().convert(source)

    def test_non_svg_rejected(self):
        with pytest.raises(ConversionError):
            SvglibLike().convert("<html></html>")

    def test_missing_file_yields_empty_not_crash(self):
        source = exploit_svg("/nonexistent/path/file.txt")
        png = SvglibLike().convert(source)
        assert png.startswith(b"\x89PNG")

    def test_png_magic_present(self):
        assert CairosvgLike().convert(benign_svg()).startswith(b"\x89PNG\r\n\x1a\n")


class TestSanitizerPair:
    def test_benign_documents_identical(self):
        source = benign_html()
        out_a = LxmlCleanLike().sanitize(source)
        out_b = SanitizeHtmlLike().sanitize(source)
        assert out_a == out_b
        assert "<script>" not in out_a  # both remove script tags

    def test_plain_javascript_url_removed_by_both(self):
        source = '<a href="javascript:alert(1)">x</a>'
        assert 'href=""' in LxmlCleanLike().sanitize(source)
        assert 'href=""' in SanitizeHtmlLike().sanitize(source)

    def test_exploit_diverges(self):
        source = exploit_html()
        vulnerable = LxmlCleanLike().sanitize(source)
        fixed = SanitizeHtmlLike().sanitize(source)
        assert "ascript:alert" in vulnerable  # bypass survives the cleaner
        assert "ascript:alert" not in fixed
        assert vulnerable != fixed

    def test_event_handlers_stripped_by_both(self):
        source = '<p onclick="evil()">x</p>'
        assert "onclick" not in LxmlCleanLike().sanitize(source)
        assert "onclick" not in SanitizeHtmlLike().sanitize(source)

    @pytest.mark.parametrize("control", ["\x01", "\x02", "\x0b", "\t", " "])
    def test_any_control_obfuscation_caught_by_fixed(self, control):
        source = f'<a href="jav{control}ascript:alert(1)">x</a>'
        assert "alert" not in SanitizeHtmlLike().sanitize(source)
