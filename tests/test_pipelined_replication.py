"""Fault × degraded-quorum matrix against the pipelined replication path.

PR 7 made the hot path concurrent in two places: the incoming proxy's
replicate stage buffers every link's write before draining any of them,
and response collection runs under one shared deadline timer
(``asyncio.wait``) instead of a ``wait_for`` per link.  The outgoing
proxy's fan-back got the same write-all-then-drain-all treatment.  These
tests pin the *semantics* across that change: a link that fails mid-write
or stalls past the deadline degrades the exchange exactly as the
sequential code did — dropped under quorum, blocked below it — and the
surviving majority's responses are untouched.
"""

from __future__ import annotations

import asyncio
import contextlib

from repro.apps.echo import EchoServer
from repro.core import events as ev
from repro.core.config import RddrConfig
from repro.core.incoming import IncomingRequestProxy
from repro.core.outgoing import OutgoingRequestProxy
from repro.faults import FaultProxy, FaultSchedule, FaultSpec
from repro.protocols import get_protocol
from repro.transport.retry import open_connection_retry
from repro.transport.streams import ConnectionClosed, close_writer, drain_write
from tests.helpers import run

DEADLINE = 0.3


def _config(**overrides) -> RddrConfig:
    base = dict(
        protocol="tcp",
        exchange_timeout=5.0,
        instance_response_deadline=DEADLINE,
        ephemeral_state=False,
        divergence_policy="vote",
        degraded_quorum=True,
    )
    base.update(overrides)
    return RddrConfig(**base)


async def _client(address, lines: list[bytes], timeout: float = 3.0) -> list[bytes]:
    reader, writer = await open_connection_retry(*address)
    replies: list[bytes] = []
    try:
        for line in lines:
            writer.write(line + b"\n")
            await writer.drain()
            try:
                replies.append(await asyncio.wait_for(reader.readline(), timeout))
            except (asyncio.TimeoutError, ConnectionError):
                replies.append(b"")
    except ConnectionError:
        pass
    finally:
        await close_writer(writer)
    replies.extend(b"" for _ in range(len(lines) - len(replies)))
    return replies


def _drain_killing_port(target_port: int):
    """A drain_write that fails for writers dialed to ``target_port`` —
    deterministic "instance died mid-write" for the replicate drain loop."""

    async def drain(writer):
        peer = writer.get_extra_info("peername")
        if peer is not None and peer[1] == target_port:
            raise ConnectionClosed("injected: instance died mid-write")
        await drain_write(writer)

    return drain


class TestIncomingMidWriteDeath:
    def test_death_mid_write_degrades_under_quorum(self, monkeypatch):
        async def main():
            servers = [await EchoServer().start() for _ in range(3)]
            proxy = IncomingRequestProxy(
                [s.address for s in servers], get_protocol("tcp"), _config()
            )
            monkeypatch.setattr(
                "repro.core.incoming.drain_write",
                _drain_killing_port(servers[2].address[1]),
            )
            await proxy.start()
            try:
                replies = await _client(proxy.address, [b"a", b"b", b"c"])
            finally:
                await proxy.close()
                for server in servers:
                    await server.close()
            return proxy, replies

        proxy, replies = run(main())
        # Served throughout on the surviving pair; one DEGRADED drop.
        assert replies == [b"a\n", b"b\n", b"c\n"]
        degraded = proxy.events.events(ev.DEGRADED)
        assert len(degraded) == 1
        assert "instance 2" in degraded[0].detail
        assert "replicate" in degraded[0].detail
        assert proxy.metrics.degraded_exchanges == 1
        assert proxy.metrics.exchanges_blocked == 0

    def test_death_mid_write_blocks_below_quorum(self, monkeypatch):
        async def main():
            servers = [await EchoServer().start() for _ in range(3)]
            proxy = IncomingRequestProxy(
                [s.address for s in servers],
                get_protocol("tcp"),
                _config(degraded_quorum=False),
            )
            monkeypatch.setattr(
                "repro.core.incoming.drain_write",
                _drain_killing_port(servers[2].address[1]),
            )
            await proxy.start()
            try:
                replies = await _client(proxy.address, [b"a"])
            finally:
                await proxy.close()
                for server in servers:
                    await server.close()
            return proxy, replies

        proxy, replies = run(main())
        assert replies == [b""]  # tcp block response is a silent close
        assert proxy.metrics.exchanges_blocked == 1
        assert proxy.metrics.degraded_exchanges == 0
        assert any(
            "connection lost" in event.detail
            for event in proxy.events.events(ev.DIVERGENCE)
        )


class TestIncomingCollectFaults:
    def test_slow_link_stall_degrades_at_the_shared_deadline(self):
        """One stalled instance trips the single asyncio.wait timer; the
        survivors' responses are served, the straggler is dropped."""

        async def main():
            servers = [await EchoServer().start() for _ in range(3)]
            schedule = FaultSchedule(
                specs=[
                    FaultSpec(
                        kind="stall", instance=1, exchange=1, delay_ms=800.0
                    )
                ]
            )
            shims = [
                await FaultProxy(server.address, schedule, instance=i).start()
                for i, server in enumerate(servers)
            ]
            proxy = IncomingRequestProxy(
                [shim.address for shim in shims], get_protocol("tcp"), _config()
            )
            await proxy.start()
            try:
                replies = await _client(proxy.address, [b"a", b"b", b"c"])
            finally:
                await proxy.close()
                for shim in shims:
                    await shim.close()
                for server in servers:
                    await server.close()
            return proxy, replies

        proxy, replies = run(main())
        assert replies == [b"a\n", b"b\n", b"c\n"]
        degraded = proxy.events.events(ev.DEGRADED)
        assert len(degraded) == 1
        assert "instance 1" in degraded[0].detail
        assert proxy.metrics.degraded_exchanges == 1
        assert proxy.metrics.timeouts == 0

    def test_kill_during_fanout_degrades_and_keeps_serving(self):
        """N=3, an instance dies mid-exchange (its link closes with a
        half-written response during the fan-out): quorum absorbs it."""

        async def main():
            servers = [await EchoServer().start() for _ in range(3)]
            schedule = FaultSchedule(
                specs=[
                    FaultSpec(
                        kind="close_mid_response",
                        instance=2,
                        exchange=1,
                        offset=1,
                    )
                ]
            )
            shims = [
                await FaultProxy(server.address, schedule, instance=i).start()
                for i, server in enumerate(servers)
            ]
            proxy = IncomingRequestProxy(
                [shim.address for shim in shims], get_protocol("tcp"), _config()
            )
            await proxy.start()
            try:
                replies = await _client(proxy.address, [b"a", b"b", b"c"])
            finally:
                await proxy.close()
                for shim in shims:
                    await shim.close()
                for server in servers:
                    await server.close()
            return proxy, replies

        proxy, replies = run(main())
        assert replies == [b"a\n", b"b\n", b"c\n"]
        degraded = proxy.events.events(ev.DEGRADED)
        assert len(degraded) == 1
        assert "instance 2" in degraded[0].detail
        assert proxy.metrics.exchanges_blocked == 0


class TestOutgoingFanBack:
    async def _drive(self, config: RddrConfig, monkeypatch, kill_member: int):
        backend = await EchoServer().start()
        proxy = OutgoingRequestProxy(
            backend.address, 3, get_protocol("tcp"), config
        )
        await proxy.start()
        # Fail the fan-back drain for one member: accepted sockets keep
        # the proxy's per-instance listen port as their sockname.
        target_port = proxy.address_for_instance(kill_member)[1]

        async def drain(writer):
            sock = writer.get_extra_info("sockname")
            if sock is not None and sock[1] == target_port:
                raise ConnectionClosed("injected: member died in fan-back")
            await drain_write(writer)

        monkeypatch.setattr("repro.core.outgoing.drain_write", drain)
        members = [
            await open_connection_retry(*proxy.address_for_instance(i))
            for i in range(3)
        ]

        async def member_request(index: int) -> bytes:
            reader, writer = members[index]
            writer.write(b"query\n")
            await writer.drain()
            try:
                return await asyncio.wait_for(reader.readline(), 2.0)
            except (asyncio.TimeoutError, ConnectionError):
                return b""

        replies = await asyncio.gather(*(member_request(i) for i in range(3)))

        async def teardown():
            for _, writer in members:
                await close_writer(writer)
            await proxy.close()
            await backend.close()

        return proxy, members, list(replies), teardown

    def test_member_death_in_fanback_degrades_under_quorum(self, monkeypatch):
        async def main():
            proxy, members, replies, teardown = await self._drive(
                _config(), monkeypatch, kill_member=2
            )
            try:
                # The degraded group keeps serving the two survivors
                # (both must speak before the merge, so write both first).
                for index in (0, 1):
                    members[index][1].write(b"again\n")
                    await members[index][1].drain()
                second = [
                    await asyncio.wait_for(members[index][0].readline(), 2.0)
                    for index in (0, 1)
                ]
                return proxy, replies, second
            finally:
                await teardown()

        proxy, replies, second = run(main())
        assert replies[0] == b"query\n"
        assert replies[1] == b"query\n"
        assert second == [b"again\n", b"again\n"]
        degraded = proxy.events.events(ev.DEGRADED)
        assert len(degraded) == 1
        assert "instance 2" in degraded[0].detail
        assert "fan-back" in degraded[0].detail
        assert proxy.metrics.degraded_exchanges == 1
        assert proxy.metrics.exchanges_blocked == 0

    def test_member_death_in_fanback_tears_down_below_quorum(self, monkeypatch):
        async def main():
            proxy, members, replies, teardown = await self._drive(
                _config(degraded_quorum=False), monkeypatch, kill_member=2
            )
            try:
                # Torn down: every member's connection is closed; a further
                # request gets no reply.
                reader, writer = members[0]
                writer.write(b"again\n")
                with contextlib.suppress(ConnectionError):
                    await writer.drain()
                trailing = await asyncio.wait_for(reader.read(), 2.0)
                return proxy, trailing
            finally:
                await teardown()

        proxy, trailing = run(main())
        assert trailing == b""  # EOF: the group was torn down
        assert proxy.metrics.degraded_exchanges == 0
        assert any(
            "fan-back" in event.detail
            for event in proxy.events.events(ev.INSTANCE_ERROR)
        )
