"""Tests for joins, grouping, and aggregation."""

from __future__ import annotations

import pytest

from repro.sqlengine import Database, SqlError


@pytest.fixture()
def db() -> Database:
    database = Database()
    database.execute(
        """
        CREATE TABLE dept (id integer PRIMARY KEY, name text);
        INSERT INTO dept VALUES (1, 'eng'), (2, 'ops'), (3, 'empty');
        CREATE TABLE emp (id integer PRIMARY KEY, dept_id integer, name text,
                          salary integer);
        INSERT INTO emp VALUES
            (1, 1, 'alice', 100),
            (2, 1, 'bob', 80),
            (3, 2, 'carol', 90),
            (4, NULL, 'drifter', 10);
        """
    )
    return database


class TestJoins:
    def test_comma_join_with_where(self, db):
        result = db.query(
            "SELECT emp.name, dept.name FROM emp, dept "
            "WHERE emp.dept_id = dept.id ORDER BY emp.id"
        )
        assert result.rows == [["alice", "eng"], ["bob", "eng"], ["carol", "ops"]]

    def test_explicit_inner_join(self, db):
        result = db.query(
            "SELECT emp.name FROM emp JOIN dept ON emp.dept_id = dept.id "
            "WHERE dept.name = 'ops'"
        )
        assert result.rows == [["carol"]]

    def test_left_join_pads_nulls(self, db):
        result = db.query(
            "SELECT dept.name, emp.name FROM dept LEFT JOIN emp "
            "ON dept.id = emp.dept_id ORDER BY dept.id, emp.id"
        )
        assert ["empty", None] in result.rows

    def test_aliased_join(self, db):
        result = db.query(
            "SELECT e.name FROM emp e, dept d WHERE e.dept_id = d.id "
            "AND d.name = 'eng' ORDER BY e.name"
        )
        assert result.rows == [["alice"], ["bob"]]

    def test_self_join_with_aliases(self, db):
        result = db.query(
            "SELECT a.name, b.name FROM emp a, emp b "
            "WHERE a.dept_id = b.dept_id AND a.id < b.id"
        )
        assert result.rows == [["alice", "bob"]]

    def test_three_way_join(self, db):
        db.execute(
            "CREATE TABLE loc (dept_id integer, city text);"
            "INSERT INTO loc VALUES (1, 'nyc'), (2, 'sfo');"
        )
        result = db.query(
            "SELECT emp.name, loc.city FROM emp, dept, loc "
            "WHERE emp.dept_id = dept.id AND dept.id = loc.dept_id "
            "ORDER BY emp.id"
        )
        assert result.rows == [["alice", "nyc"], ["bob", "nyc"], ["carol", "sfo"]]

    def test_cross_join_cardinality(self, db):
        result = db.query("SELECT count(*) FROM emp, dept")
        assert result.scalar() == 12

    def test_ambiguous_column_rejected(self, db):
        with pytest.raises(SqlError):
            db.query("SELECT id FROM emp, dept")

    def test_duplicate_binding_rejected(self, db):
        with pytest.raises(SqlError):
            db.query("SELECT * FROM emp, emp")

    def test_non_equi_join_condition(self, db):
        result = db.query(
            "SELECT count(*) FROM emp JOIN dept ON emp.dept_id < dept.id"
        )
        # alice(1): depts 2,3; bob(1): depts 2,3; carol(2): dept 3
        assert result.scalar() == 5


class TestAggregates:
    def test_global_aggregates(self, db):
        result = db.query(
            "SELECT count(*), sum(salary), avg(salary), min(salary), max(salary) FROM emp"
        )
        assert result.rows == [[4, 280, 70.0, 10, 100]]

    def test_count_skips_nulls(self, db):
        assert db.query("SELECT count(dept_id) FROM emp").scalar() == 3

    def test_count_distinct(self, db):
        assert db.query("SELECT count(DISTINCT dept_id) FROM emp").scalar() == 2

    def test_group_by(self, db):
        result = db.query(
            "SELECT dept_id, count(*), sum(salary) FROM emp "
            "WHERE dept_id IS NOT NULL GROUP BY dept_id ORDER BY dept_id"
        )
        assert result.rows == [[1, 2, 180], [2, 1, 90]]

    def test_group_by_with_having(self, db):
        result = db.query(
            "SELECT dept_id FROM emp WHERE dept_id IS NOT NULL "
            "GROUP BY dept_id HAVING count(*) > 1"
        )
        assert result.rows == [[1]]

    def test_aggregate_expression(self, db):
        result = db.query("SELECT sum(salary * 2) FROM emp WHERE dept_id = 1")
        assert result.scalar() == 360

    def test_expression_of_aggregates(self, db):
        result = db.query("SELECT max(salary) - min(salary) FROM emp")
        assert result.scalar() == 90

    def test_empty_group_aggregates(self, db):
        result = db.query("SELECT count(*), sum(salary) FROM emp WHERE id > 100")
        assert result.rows == [[0, None]]

    def test_group_by_preserves_first_seen_order_then_sorts(self, db):
        result = db.query(
            "SELECT dept_id, count(*) FROM emp GROUP BY dept_id ORDER BY 2 DESC, 1"
        )
        assert result.rows[0] == [1, 2]

    def test_order_by_aggregate_alias(self, db):
        result = db.query(
            "SELECT dept_id, sum(salary) AS total FROM emp "
            "WHERE dept_id IS NOT NULL GROUP BY dept_id ORDER BY total DESC"
        )
        assert result.rows == [[1, 180], [2, 90]]

    def test_aggregate_outside_group_context_rejected(self, db):
        with pytest.raises(SqlError):
            db.query("SELECT name FROM emp WHERE sum(salary) > 10")

    def test_having_filters_groups(self, db):
        result = db.query(
            "SELECT dept_id, avg(salary) FROM emp WHERE dept_id IS NOT NULL "
            "GROUP BY dept_id HAVING avg(salary) > 85 ORDER BY dept_id"
        )
        # dept 1 averages (100+80)/2 = 90, dept 2 averages 90
        assert result.rows == [[1, 90.0], [2, 90.0]]
