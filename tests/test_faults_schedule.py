"""Fault schedule specs: validation, matching, JSON, seeded generation."""

from __future__ import annotations

import pytest

from repro.faults import (
    CONNECT_KINDS,
    KINDS,
    RESPONSE_KINDS,
    FaultSchedule,
    FaultSpec,
)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="explode")

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="delay_ms"):
            FaultSpec(kind="stall", delay_ms=-1.0)

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError, match="offset"):
            FaultSpec(kind="corrupt_bytes", offset=-1)

    def test_xor_mask_must_be_byte(self):
        with pytest.raises(ValueError, match="xor_mask"):
            FaultSpec(kind="corrupt_bytes", xor_mask=256)

    def test_times_must_be_positive_or_none(self):
        with pytest.raises(ValueError, match="times"):
            FaultSpec(kind="stall", times=0)
        assert FaultSpec(kind="stall", times=None).times is None

    def test_kind_sets_partition(self):
        assert CONNECT_KINDS | RESPONSE_KINDS == KINDS
        assert not CONNECT_KINDS & RESPONSE_KINDS

    def test_none_fields_are_wildcards(self):
        spec = FaultSpec(kind="stall")
        assert spec.matches(0, 0)
        assert spec.matches(7, 42)

    def test_pinned_fields_must_match(self):
        spec = FaultSpec(kind="stall", instance=1, exchange=3)
        assert spec.matches(1, 3)
        assert not spec.matches(0, 3)
        assert not spec.matches(1, 2)

    def test_dict_round_trip(self):
        spec = FaultSpec(
            kind="corrupt_bytes", instance=2, exchange=5, offset=3,
            xor_mask=0x20, times=None,
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec


class TestFaultSchedule:
    def test_matching_filters_by_kind_and_address(self):
        schedule = FaultSchedule(
            specs=[
                FaultSpec(kind="stall", instance=0),
                FaultSpec(kind="connect_refused", instance=0),
                FaultSpec(kind="stall", instance=1),
            ]
        )
        hits = schedule.matching(0, 0, RESPONSE_KINDS)
        assert [(index, spec.kind) for index, spec in hits] == [(0, "stall")]
        hits = schedule.matching(0, 0, CONNECT_KINDS)
        assert [(index, spec.kind) for index, spec in hits] == [(1, "connect_refused")]

    def test_matching_keeps_spec_indices_for_duplicates(self):
        twin = FaultSpec(kind="stall", instance=0, exchange=0)
        schedule = FaultSchedule(specs=[twin, twin])
        assert [index for index, _ in schedule.matching(0, 0)] == [0, 1]

    def test_json_round_trip(self, tmp_path):
        schedule = FaultSchedule(
            specs=[
                FaultSpec(kind="stall", instance=1, exchange=2, delay_ms=600.0),
                FaultSpec(kind="connect_refused", times=None),
            ],
            seed=99,
        )
        assert FaultSchedule.loads(schedule.dumps()) == schedule
        path = tmp_path / "faults.json"
        schedule.dump(path)
        assert FaultSchedule.load(path) == schedule

    def test_len_and_iter(self):
        schedule = FaultSchedule(specs=[FaultSpec(kind="stall")])
        assert len(schedule) == 1
        assert [spec.kind for spec in schedule] == ["stall"]


class TestRandomGeneration:
    def test_same_seed_same_schedule(self):
        a = FaultSchedule.random(seed=7, instances=3, exchanges=20)
        b = FaultSchedule.random(seed=7, instances=3, exchanges=20)
        assert a == b
        assert a.seed == 7

    def test_different_seed_different_schedule(self):
        a = FaultSchedule.random(seed=1, instances=3, exchanges=50, rate=0.5)
        b = FaultSchedule.random(seed=2, instances=3, exchanges=50, rate=0.5)
        assert a.specs != b.specs

    def test_specs_stay_inside_the_grid(self):
        schedule = FaultSchedule.random(
            seed=3, instances=2, exchanges=10, kinds={"stall", "corrupt_bytes"}
        )
        for spec in schedule:
            assert spec.kind in {"stall", "corrupt_bytes"}
            assert 0 <= spec.instance < 2
            assert 0 <= spec.exchange < 10
            assert spec.delay_ms in (5.0, 600.0)

    def test_generated_schedule_survives_json(self):
        schedule = FaultSchedule.random(seed=11, instances=3, exchanges=8)
        assert FaultSchedule.loads(schedule.dumps()) == schedule

    def test_rate_zero_is_empty_rate_one_is_full(self):
        assert len(FaultSchedule.random(seed=0, instances=2, exchanges=5, rate=0.0)) == 0
        assert len(FaultSchedule.random(seed=0, instances=2, exchanges=5, rate=1.0)) == 10

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSchedule.random(seed=0, instances=1, exchanges=1, kinds={"nope"})
        with pytest.raises(ValueError, match="rate"):
            FaultSchedule.random(seed=0, instances=1, exchanges=1, rate=1.5)
