"""Integration tests for the Outgoing Request Proxy."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.config import RddrConfig
from repro.core.outgoing import OutgoingRequestProxy
from repro.pgwire import PgClient, serve_database
from repro.protocols import get_protocol
from repro.sqlengine import Database
from tests.helpers import run


def _backend() -> Database:
    db = Database()
    db.execute(
        "CREATE TABLE kv (k text, v text);"
        "INSERT INTO kv VALUES ('a', '1'), ('b', '2');"
    )
    return db


async def _instance_query(address, sql: str):
    client = await PgClient.connect(*address)
    try:
        return await client.query(sql)
    finally:
        await client.close()


class TestGrouping:
    def test_identical_requests_merge_to_one_backend_query(self):
        async def main():
            db = _backend()
            backend = await serve_database(db)
            proxy = OutgoingRequestProxy(
                backend.address,
                2,
                get_protocol("pgwire"),
                RddrConfig(protocol="pgwire", exchange_timeout=2.0),
            )
            await proxy.start()
            work_before = db.total_work.rows_returned
            sql = "SELECT v FROM kv WHERE k = 'a'"
            results = await asyncio.gather(
                _instance_query(proxy.address_for_instance(0), sql),
                _instance_query(proxy.address_for_instance(1), sql),
            )
            # both instances saw the same answer...
            assert [r.rows for r in results] == [[["1"]], [["1"]]]
            # ...produced by a single backend execution (the "merge")
            assert db.total_work.rows_returned == work_before + 1
            await proxy.close()
            await backend.close()

        run(main())

    def test_divergent_requests_blocked(self):
        async def main():
            backend = await serve_database(_backend())
            proxy = OutgoingRequestProxy(
                backend.address,
                2,
                get_protocol("pgwire"),
                RddrConfig(protocol="pgwire", exchange_timeout=1.0),
            )
            await proxy.start()
            results = await asyncio.gather(
                _instance_query(proxy.address_for_instance(0), "SELECT v FROM kv WHERE k = 'a'"),
                _instance_query(proxy.address_for_instance(1), "SELECT v FROM kv WHERE k = 'b'"),
                return_exceptions=True,
            )
            assert all(isinstance(r, Exception) for r in results)
            assert len(proxy.events.divergences()) >= 1
            await proxy.close()
            await backend.close()

        run(main())

    def test_missing_instance_request_times_out_as_divergence(self):
        """The smuggling signature: one instance issues a call its peers
        never make."""

        async def main():
            backend = await serve_database(_backend())
            proxy = OutgoingRequestProxy(
                backend.address,
                2,
                get_protocol("pgwire"),
                RddrConfig(protocol="pgwire", exchange_timeout=0.5),
            )
            await proxy.start()

            async def chatty():
                client = await PgClient.connect(*proxy.address_for_instance(0))
                try:
                    await client.query("SELECT v FROM kv WHERE k = 'a'")
                    # second query that instance 1 will never send
                    await client.query("SELECT v FROM kv WHERE k = 'b'")
                finally:
                    await client.close()

            async def quiet():
                client = await PgClient.connect(*proxy.address_for_instance(1))
                try:
                    await client.query("SELECT v FROM kv WHERE k = 'a'")
                    await asyncio.sleep(1.2)  # stays connected, stays silent
                finally:
                    await client.close()

            results = await asyncio.gather(chatty(), quiet(), return_exceptions=True)
            assert any(isinstance(r, Exception) for r in results)
            assert proxy.metrics.timeouts >= 1
            await proxy.close()
            await backend.close()

        run(main())

    def test_incomplete_group_times_out(self):
        async def main():
            backend = await serve_database(_backend())
            proxy = OutgoingRequestProxy(
                backend.address,
                2,
                get_protocol("pgwire"),
                RddrConfig(protocol="pgwire", exchange_timeout=0.4),
            )
            await proxy.start()
            # only instance 0 ever connects
            with pytest.raises(Exception):
                await _instance_query(
                    proxy.address_for_instance(0), "SELECT v FROM kv WHERE k = 'a'"
                )
            assert proxy.metrics.timeouts >= 1
            await proxy.close()
            await backend.close()

        run(main())

    def test_multiple_groups_are_independent(self):
        async def main():
            backend = await serve_database(_backend())
            proxy = OutgoingRequestProxy(
                backend.address,
                2,
                get_protocol("pgwire"),
                RddrConfig(protocol="pgwire", exchange_timeout=2.0),
            )
            await proxy.start()
            sql = "SELECT v FROM kv WHERE k = 'b'"
            for _ in range(3):  # three successive connection groups
                results = await asyncio.gather(
                    _instance_query(proxy.address_for_instance(0), sql),
                    _instance_query(proxy.address_for_instance(1), sql),
                )
                assert [r.rows for r in results] == [[["2"]], [["2"]]]
            await proxy.close()
            await backend.close()

        run(main())

    def test_filter_pair_masks_nondeterministic_requests(self):
        async def main():
            backend = await serve_database(_backend())
            proxy = OutgoingRequestProxy(
                backend.address,
                3,
                get_protocol("pgwire"),
                RddrConfig(protocol="pgwire", exchange_timeout=2.0, filter_pair=(0, 1)),
            )
            await proxy.start()
            # each instance embeds its own random-ish token of equal length
            sqls = [
                "SELECT v FROM kv WHERE k = 'a' AND 'r1111' = 'r1111'",
                "SELECT v FROM kv WHERE k = 'a' AND 'r2222' = 'r2222'",
                "SELECT v FROM kv WHERE k = 'a' AND 'r3333' = 'r3333'",
            ]
            results = await asyncio.gather(
                *(
                    _instance_query(proxy.address_for_instance(i), sqls[i])
                    for i in range(3)
                )
            )
            assert all(r.ok for r in results)
            assert len(proxy.events.divergences()) == 0
            await proxy.close()
            await backend.close()

        run(main())

    def test_requires_two_instances(self):
        with pytest.raises(ValueError):
            OutgoingRequestProxy(("127.0.0.1", 1), 1, get_protocol("pgwire"))


class TestHttpOutgoing:
    """The outgoing proxy speaking HTTP (instances calling a REST backend)."""

    def test_http_requests_merge_and_fan_out(self):
        async def main():
            from repro.web import App, HttpClient, json_response, serve_app

            calls = {"count": 0}
            app = App("backend-api")

            @app.route("/quota")
            async def quota(ctx):
                calls["count"] += 1
                return json_response({"remaining": 7})

            backend = await serve_app(app)
            proxy = OutgoingRequestProxy(
                backend.address,
                2,
                get_protocol("http"),
                RddrConfig(protocol="http", exchange_timeout=2.0),
            )
            await proxy.start()

            async def instance(i: int):
                async with HttpClient(*proxy.address_for_instance(i)) as client:
                    return await client.get("/quota")

            responses = await asyncio.gather(instance(0), instance(1))
            assert [r.status for r in responses] == [200, 200]
            assert all(r.body == b'{"remaining":7}' for r in responses)
            assert calls["count"] == 1  # merged into one backend call
            await proxy.close()
            await backend.close()

        run(main())

    def test_divergent_http_requests_blocked(self):
        async def main():
            from repro.web import App, HttpClient, json_response, serve_app

            app = App("backend-api")

            @app.route("/data/<key>")
            async def data(ctx):
                return json_response({"key": ctx.path_params["key"]})

            backend = await serve_app(app)
            proxy = OutgoingRequestProxy(
                backend.address,
                2,
                get_protocol("http"),
                RddrConfig(protocol="http", exchange_timeout=1.0),
            )
            await proxy.start()

            async def instance(i: int, path: str):
                async with HttpClient(*proxy.address_for_instance(i)) as client:
                    return await client.get(path)

            results = await asyncio.gather(
                instance(0, "/data/expected"),
                instance(1, "/data/EXFILTRATED-SECRET"),
                return_exceptions=True,
            )
            assert all(isinstance(r, Exception) for r in results)
            assert len(proxy.events.divergences()) >= 1
            await proxy.close()
            await backend.close()

        run(main())
