"""Unit and property tests for the tokenized diff engine."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.diff import (
    TOKEN_WILDCARD,
    CharRange,
    DiffResult,
    NoiseMask,
    TokenDifference,
    diff_tokens,
    differing_ranges,
)


class TestCharRange:
    def test_valid_range(self):
        r = CharRange(2, 5)
        assert (r.start, r.end) == (2, 5)

    def test_empty_range_allowed(self):
        assert CharRange(3, 3).end == 3

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            CharRange(-1, 2)

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError):
            CharRange(5, 2)


class TestDifferingRanges:
    def test_equal_tokens_have_no_ranges(self):
        assert differing_ranges(b"hello", b"hello") == []

    def test_single_difference(self):
        assert differing_ranges(b"abc", b"aXc") == [CharRange(1, 2)]

    def test_contiguous_run_collapses(self):
        assert differing_ranges(b"abcdef", b"aXYZef") == [CharRange(1, 4)]

    def test_multiple_runs(self):
        assert differing_ranges(b"abcdef", b"Xbcdef"[:6]) == [CharRange(0, 1)]
        assert differing_ranges(b"abcdef", b"XbcdeY") == [
            CharRange(0, 1),
            CharRange(5, 6),
        ]

    def test_trailing_difference(self):
        assert differing_ranges(b"abc", b"abX") == [CharRange(2, 3)]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            differing_ranges(b"ab", b"abc")

    @given(st.binary(min_size=0, max_size=64))
    def test_identical_inputs_always_empty(self, data):
        assert differing_ranges(data, data) == []

    @given(st.binary(min_size=1, max_size=64), st.binary(min_size=1, max_size=64))
    def test_ranges_cover_exactly_the_differences(self, a, b):
        size = min(len(a), len(b))
        a, b = a[:size], b[:size]
        ranges = differing_ranges(a, b)
        covered = set()
        for r in ranges:
            covered.update(range(r.start, r.end))
        expected = {i for i in range(size) if a[i] != b[i]}
        assert covered == expected


class TestNoiseMask:
    def test_wildcard_token_is_noise(self):
        mask = NoiseMask(token_ranges={2: TOKEN_WILDCARD})
        assert mask.is_noise_token(2)
        assert not mask.is_noise_token(1)

    def test_tail_marks_everything_beyond(self):
        mask = NoiseMask(tail_from=3)
        assert not mask.is_noise_token(2)
        assert mask.is_noise_token(3)
        assert mask.is_noise_token(10)

    def test_mask_token_blanks_ranges(self):
        mask = NoiseMask(token_ranges={0: [CharRange(1, 3)]})
        assert mask.mask_token(0, b"abcd") == b"a\x00\x00d"

    def test_mask_token_wildcard_empties(self):
        mask = NoiseMask(token_ranges={0: TOKEN_WILDCARD})
        assert mask.mask_token(0, b"abcd") == b""

    def test_mask_range_beyond_token_end_is_clamped(self):
        mask = NoiseMask(token_ranges={0: [CharRange(2, 100)]})
        assert mask.mask_token(0, b"abcd") == b"ab\x00\x00"


class TestDiffTokens:
    def test_unanimous_streams(self):
        streams = [[b"a", b"b"], [b"a", b"b"], [b"a", b"b"]]
        result = diff_tokens(streams)
        assert not result.divergent
        assert result.reason == "unanimous"

    def test_single_stream_never_diverges(self):
        assert not diff_tokens([[b"a"]]).divergent

    def test_token_value_divergence(self):
        result = diff_tokens([[b"a"], [b"b"]])
        assert result.divergent
        assert result.differences[0].token_index == 0
        assert result.differences[0].values == (b"a", b"b")

    def test_token_count_divergence(self):
        result = diff_tokens([[b"a"], [b"a", b"extra"]])
        assert result.divergent
        assert result.token_counts == (1, 2)

    def test_masked_difference_is_ignored(self):
        mask = NoiseMask(token_ranges={0: [CharRange(0, 1)]})
        result = diff_tokens([[b"Xrest"], [b"Yrest"]], mask)
        assert not result.divergent

    def test_difference_outside_mask_still_detected(self):
        mask = NoiseMask(token_ranges={0: [CharRange(0, 1)]})
        result = diff_tokens([[b"Xrest"], [b"YrestZ"]], mask)
        assert result.divergent

    def test_wildcard_token_ignored(self):
        mask = NoiseMask(token_ranges={1: TOKEN_WILDCARD})
        result = diff_tokens([[b"a", b"x"], [b"a", b"y"]], mask)
        assert not result.divergent

    def test_masked_tail_allows_count_mismatch(self):
        mask = NoiseMask(tail_from=1)
        result = diff_tokens([[b"a"], [b"a", b"junk"]], mask)
        assert not result.divergent

    def test_count_mismatch_before_masked_tail_diverges(self):
        mask = NoiseMask(tail_from=3)
        result = diff_tokens([[b"a"], [b"a", b"b"]], mask)
        assert result.divergent

    def test_max_differences_caps_report(self):
        streams = [[bytes([i]) for i in range(64)], [bytes([i + 1]) for i in range(64)]]
        result = diff_tokens(streams, max_differences=4)
        assert result.divergent
        assert len(result.differences) == 4

    @given(
        st.lists(st.binary(min_size=0, max_size=8), min_size=0, max_size=8),
        st.integers(min_value=2, max_value=5),
    )
    def test_identical_streams_never_diverge(self, tokens, n):
        assert not diff_tokens([list(tokens) for _ in range(n)]).divergent

    @given(st.lists(st.binary(min_size=1, max_size=8), min_size=1, max_size=8))
    def test_any_single_token_corruption_is_detected(self, tokens):
        corrupted = list(tokens)
        corrupted[0] = corrupted[0] + b"\xff"
        assert diff_tokens([list(tokens), corrupted]).divergent


class TestSignatureClustering:
    """Position-insensitive clustering: ``cluster_signature`` drops token
    *positions* from the divergence identity, so findings that differ
    only in where the same values diverge collapse into one cluster."""

    def _result(self, *differences):
        return DiffResult(
            divergent=True,
            differences=[
                TokenDifference(token_index=index, values=values)
                for index, values in differences
            ],
        )

    def test_same_values_at_different_offsets_share_a_cluster(self):
        at_three = self._result((3, (b"alpha", b"beta")))
        at_forty = self._result((40, (b"alpha", b"beta")))
        assert at_three.signature() != at_forty.signature()
        assert at_three.cluster_signature() == at_forty.cluster_signature()

    def test_different_value_sets_get_different_clusters(self):
        one = self._result((3, (b"alpha", b"beta")))
        other = self._result((3, (b"alpha", b"gamma")))
        assert one.cluster_signature() != other.cluster_signature()

    def test_cluster_is_the_union_of_value_sets(self):
        # Two spread-out differences and one difference carrying the
        # combined values hash the same union — the cluster cares about
        # *what* diverged, not how the divergence was sliced into tokens.
        spread = self._result((1, (b"alpha", b"beta")), (5, (b"gamma", b"delta")))
        combined = self._result((9, (b"alpha", b"beta", b"gamma", b"delta")))
        assert spread.signature() != combined.signature()
        assert spread.cluster_signature() == combined.cluster_signature()

    def test_instance_order_is_irrelevant(self):
        forward = self._result((2, (b"alpha", b"beta")))
        reverse = self._result((2, (b"beta", b"alpha")))
        assert forward.cluster_signature() == reverse.cluster_signature()

    def test_count_mismatch_clusters_by_rank_pattern(self):
        small = DiffResult(divergent=True, token_counts=(3, 5, 3))
        large = DiffResult(divergent=True, token_counts=(30, 41, 30))
        shifted = DiffResult(divergent=True, token_counts=(5, 3, 3))
        assert small.cluster_signature() == large.cluster_signature()
        assert small.cluster_signature() != shifted.cluster_signature()

    def test_non_divergent_has_no_cluster(self):
        assert DiffResult(divergent=False).cluster_signature() == ""
