"""Tests for the RddrDeployment wiring helper."""

from __future__ import annotations

import pytest

from repro.apps.echo import EchoServer
from repro.core.config import RddrConfig
from repro.core.rddr import RddrDeployment
from repro.pgwire import serve_database
from repro.sqlengine import Database
from tests.helpers import run


class TestWiring:
    def test_address_requires_started_incoming(self):
        deployment = RddrDeployment("x", RddrConfig(protocol="tcp"))
        with pytest.raises(RuntimeError):
            _ = deployment.address

    def test_duplicate_incoming_rejected(self):
        async def main():
            servers = [await EchoServer().start() for _ in range(2)]
            async with RddrDeployment("x", RddrConfig(protocol="tcp")) as deployment:
                await deployment.start_incoming_proxy([s.address for s in servers])
                with pytest.raises(ValueError):
                    await deployment.start_incoming_proxy([s.address for s in servers])
            for server in servers:
                await server.close()

        run(main())

    def test_duplicate_outgoing_name_rejected(self):
        async def main():
            backend = await serve_database(Database())
            async with RddrDeployment("x", RddrConfig(protocol="pgwire")) as deployment:
                await deployment.add_outgoing_proxy("db", backend.address, 2)
                with pytest.raises(ValueError):
                    await deployment.add_outgoing_proxy("db", backend.address, 2)
            await backend.close()

        run(main())

    def test_outgoing_protocol_override(self):
        async def main():
            backend = await serve_database(Database())
            # deployment default is http; the DB leg overrides to pgwire
            async with RddrDeployment("x", RddrConfig(protocol="http")) as deployment:
                proxy = await deployment.add_outgoing_proxy(
                    "db", backend.address, 2, protocol="pgwire"
                )
                assert proxy.protocol.name == "pgwire"
                assert len(proxy.addresses) == 2
            await backend.close()

        run(main())

    def test_intervened_reflects_shared_event_log(self):
        async def main():
            good = await EchoServer().start()
            bad = await EchoServer(tag="v2").start()
            async with RddrDeployment(
                "x", RddrConfig(protocol="tcp", exchange_timeout=1.0)
            ) as deployment:
                await deployment.start_incoming_proxy([good.address, bad.address])
                assert not deployment.intervened
                from repro.transport.retry import open_connection_retry
                from repro.transport.streams import close_writer

                reader, writer = await open_connection_retry(*deployment.address)
                writer.write(b"x\n")
                await writer.drain()
                await reader.read(16)
                await close_writer(writer)
                assert deployment.intervened
                assert len(deployment.divergences()) == 1
            await good.close()
            await bad.close()

        run(main())

    def test_close_is_idempotent(self):
        async def main():
            servers = [await EchoServer().start() for _ in range(2)]
            deployment = RddrDeployment("x", RddrConfig(protocol="tcp"))
            await deployment.start_incoming_proxy([s.address for s in servers])
            await deployment.close()
            await deployment.close()
            for server in servers:
                await server.close()

        run(main())
