"""Tests for the analysis helpers: stats, reports, topology."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    BoxStats,
    build_social_network,
    format_series,
    format_table,
    mean,
    normalize,
    percentile,
    selective_overhead,
    user_facing_services,
    whole_app_overhead,
)


class TestStats:
    def test_percentile_basics(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 50) == 3.0
        assert percentile(data, 100) == 5.0

    def test_percentile_interpolates(self):
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    def test_percentile_validates(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 200)

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            mean([])

    def test_box_stats(self):
        stats = BoxStats.from_samples([float(i) for i in range(1, 101)])
        assert stats.median == pytest.approx(50.5)
        assert stats.p5 < stats.median < stats.p95
        assert stats.mean == pytest.approx(50.5)

    def test_normalize(self):
        assert normalize([2.0, 9.0], [1.0, 3.0]) == [2.0, 3.0]
        with pytest.raises(ValueError):
            normalize([1.0], [1.0, 2.0])

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_property_percentile_bounded_by_extremes(self, samples):
        for q in (0, 25, 50, 75, 100):
            value = percentile(samples, q)
            assert min(samples) <= value <= max(samples)

    @given(
        st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=2, max_size=50),
        st.floats(min_value=0, max_value=100),
        st.floats(min_value=0, max_value=100),
    )
    def test_property_percentile_monotone(self, samples, q1, q2):
        low, high = sorted((q1, q2))
        p_low, p_high = percentile(samples, low), percentile(samples, high)
        # monotone up to interpolation round-off
        tolerance = 1e-9 * max(abs(p_low), abs(p_high), 1.0)
        assert p_low <= p_high + tolerance


class TestReport:
    def test_format_table_aligns(self):
        text = format_table(["name", "n"], [["a", 1], ["longer", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert all("|" in line for line in lines[1:] if "-+-" not in line)

    def test_format_series(self):
        text = format_series(
            "clients", [1, 2], {"tps": [10.0, 20.0], "ms": [1.5, 2.5]}
        )
        assert "clients" in text
        assert "10.0" in text and "2.5" in text

    def test_bool_rendering(self):
        text = format_table(["ok"], [[True], [False]])
        assert "yes" in text and "no" in text


class TestTopology:
    def test_social_network_shape(self):
        graph = build_social_network()
        assert graph.number_of_nodes() == 20
        assert graph.has_edge("frontend-logic", "search")
        assert graph.has_edge("compose-post", "post-storage")

    def test_motivation_claim_selective_vs_whole(self):
        """The section II claim: ~20% vs 300% for 3-versioning."""
        graph = build_social_network()
        selective = selective_overhead(graph, {"search": 3, "compose-post": 3})
        whole = whole_app_overhead(graph, 3)
        assert selective.overhead_fraction == pytest.approx(0.20)
        assert whole.overhead_fraction == pytest.approx(2.0)

    def test_unknown_service_rejected(self):
        graph = build_social_network()
        with pytest.raises(KeyError):
            selective_overhead(graph, {"nope": 3})

    def test_user_facing_candidates_include_parsers_and_search(self):
        graph = build_social_network()
        candidates = user_facing_services(graph)
        assert "search" in candidates
        assert "compose-post" in candidates
        assert "post-storage" not in candidates  # storage tier is not user-facing

    def test_two_versioning_is_cheaper(self):
        graph = build_social_network()
        two = selective_overhead(graph, {"search": 2})
        three = selective_overhead(graph, {"search": 3})
        assert two.added_cost < three.added_cost
