"""Tests for cluster-managed N-versioned deployments."""

from __future__ import annotations

import pytest

from repro.core.config import RddrConfig
from repro.orchestrator import Cluster, deploy_nversioned, parse_backend_env
from repro.pgwire import PgClient, PgWireServer, serve_database
from repro.sqlengine import Database
from repro.vendors import create_postsim
from repro.web import App, HttpClient, json_response
from repro.web.server import HttpServer
from tests.helpers import run


def _pg_factory(version: str):
    async def factory(ctx):
        server = PgWireServer(create_postsim(version), host=ctx.host, port=ctx.port)
        await server.start()
        return server

    return factory


class TestDeployNVersioned:
    def test_incoming_only_service(self):
        async def main():
            async with Cluster() as cluster:
                service = await deploy_nversioned(
                    cluster,
                    "db",
                    [_pg_factory("13.0"), _pg_factory("13.0")],
                    config=RddrConfig(protocol="pgwire", exchange_timeout=2.0),
                )
                async with await PgClient.connect(*service.address) as client:
                    outcome = await client.query("SELECT 1 + 1")
                assert outcome.rows == [["2"]]
                assert len(service.pods) == 2
                await service.close()

        run(main())

    def test_backend_addresses_injected_per_instance(self):
        async def main():
            backend_db = Database()
            backend_db.execute("CREATE TABLE t (v text); INSERT INTO t VALUES ('shared')")
            backend = await serve_database(backend_db)

            def api_factory():
                async def factory(ctx):
                    db_address = parse_backend_env(ctx, "database")
                    app = App(f"api-{ctx.index}")

                    @app.route("/value")
                    async def value(ctx2):
                        client = await PgClient.connect(*db_address)
                        try:
                            outcome = await client.query("SELECT v FROM t")
                            return json_response({"v": outcome.rows[0][0]})
                        finally:
                            await client.close()

                    server = HttpServer(app, host=ctx.host, port=ctx.port)
                    await server.start()
                    return server

                return factory

            async with Cluster() as cluster:
                service = await deploy_nversioned(
                    cluster,
                    "api",
                    [api_factory(), api_factory()],
                    config=RddrConfig(protocol="http", exchange_timeout=3.0),
                    backends={"database": backend.address},
                    backend_protocol="pgwire",
                )
                # each instance got a *different* outgoing-proxy port
                proxy = service.rddr.outgoing["database"]
                assert proxy.address_for_instance(0) != proxy.address_for_instance(1)
                # and the whole chain works end to end
                async with HttpClient(*service.address) as client:
                    response = await client.get("/value")
                assert response.status == 200
                assert b'"v":"shared"' in response.body
                await service.close()
            await backend.close()

        run(main())

    def test_requires_two_factories(self):
        async def main():
            async with Cluster() as cluster:
                with pytest.raises(ValueError):
                    await deploy_nversioned(
                        cluster, "x", [_pg_factory("13.0")],
                        config=RddrConfig(protocol="pgwire"),
                    )

        run(main())

    def test_failed_pod_startup_cleans_up(self):
        async def main():
            async def broken(ctx):
                raise RuntimeError("image pull backoff")

            async with Cluster() as cluster:
                with pytest.raises(RuntimeError):
                    await deploy_nversioned(
                        cluster,
                        "broken",
                        [_pg_factory("13.0"), broken],
                        config=RddrConfig(protocol="pgwire"),
                    )
                assert "broken" not in cluster.deployments()

        run(main())
