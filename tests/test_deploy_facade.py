"""The redesigned ``repro.deploy`` facade.

The preferred call passes a prebuilt :class:`RddrConfig` positionally;
any other positional argument stays a ``TypeError`` (the old
keywords-only discipline).  Legacy convenience — RddrConfig field names
as direct keywords — keeps working through a shim that folds them into
the config and warns exactly once per process.
"""

from __future__ import annotations

import warnings

import pytest

import repro
from repro.apps.echo import EchoServer
from repro.core.config import RddrConfig
from tests.helpers import run


async def _servers(count: int = 2) -> list[EchoServer]:
    return [await EchoServer().start() for _ in range(count)]


async def _teardown(deployment, servers) -> None:
    await deployment.close()
    for server in servers:
        await server.close()


class TestPositionalConfig:
    def test_prebuilt_config_accepted_positionally(self):
        async def main():
            servers = await _servers()
            config = RddrConfig(protocol="tcp", exchange_timeout=9.0)
            deployment = await repro.deploy(
                config, instances=[s.address for s in servers]
            )
            try:
                return deployment.config
            finally:
                await _teardown(deployment, servers)

        config = run(main())
        assert config.protocol == "tcp"
        assert config.exchange_timeout == 9.0

    def test_non_config_positional_is_type_error(self):
        # Instance addresses passed positionally (the pre-redesign
        # mistake) still fail fast, now with a pointer at the fix.
        with pytest.raises(TypeError, match="RddrConfig"):
            run(
                repro.deploy(
                    [("127.0.0.1", 1)],
                    instances=[("127.0.0.1", 1), ("127.0.0.1", 2)],
                )
            )
        with pytest.raises(TypeError):
            repro.deploy([("127.0.0.1", 1)])  # and keywords stay required

    def test_config_keyword_still_works(self):
        async def main():
            servers = await _servers()
            config = RddrConfig(protocol="tcp", exchange_timeout=7.5)
            deployment = await repro.deploy(
                config=config, instances=[s.address for s in servers]
            )
            try:
                return deployment.config.exchange_timeout
            finally:
                await _teardown(deployment, servers)

        assert run(main()) == 7.5


class TestLegacyKeywordShim:
    def test_config_fields_as_keywords_fold_into_config(self):
        async def main():
            servers = await _servers()
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                repro._deploy_override_warned = False
                deployment = await repro.deploy(
                    instances=[s.address for s in servers],
                    protocol="tcp",
                    exchange_timeout=4.5,
                    degraded_quorum=True,
                )
            try:
                return deployment.config, caught
            finally:
                await _teardown(deployment, servers)

        config, caught = run(main())
        assert config.exchange_timeout == 4.5
        assert config.degraded_quorum is True
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "RddrConfig" in str(deprecations[0].message)

    def test_warning_fires_only_once_per_process(self):
        async def main():
            servers = await _servers()
            repro._deploy_override_warned = False
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                first = await repro.deploy(
                    instances=[s.address for s in servers],
                    protocol="tcp",
                    exchange_timeout=4.0,
                )
                await first.close()
                second = await repro.deploy(
                    instances=[s.address for s in servers],
                    protocol="tcp",
                    exchange_timeout=5.0,
                )
                await second.close()
            for server in servers:
                await server.close()
            return caught

        caught = run(main())
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1

    def test_overrides_on_top_of_prebuilt_config(self):
        async def main():
            servers = await _servers()
            base = RddrConfig(protocol="tcp", exchange_timeout=3.0)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                deployment = await repro.deploy(
                    base,
                    instances=[s.address for s in servers],
                    degraded_quorum=True,
                )
            try:
                return base, deployment.config
            finally:
                await _teardown(deployment, servers)

        base, config = run(main())
        assert config.degraded_quorum is True
        assert config.exchange_timeout == 3.0
        assert base.degraded_quorum is False  # the caller's config untouched

    def test_unknown_keyword_is_type_error_listing_valid_fields(self):
        with pytest.raises(TypeError, match="colour_scheme"):
            run(
                repro.deploy(
                    instances=[("127.0.0.1", 1), ("127.0.0.1", 2)],
                    colour_scheme="mauve",
                )
            )
