"""Tests for subquery support: scalar, IN, EXISTS, correlation."""

from __future__ import annotations

import pytest

from repro.sqlengine import Database, SqlError


@pytest.fixture()
def db() -> Database:
    database = Database()
    database.execute(
        """
        CREATE TABLE dept (id integer PRIMARY KEY, name text);
        INSERT INTO dept VALUES (1, 'eng'), (2, 'ops'), (3, 'empty');
        CREATE TABLE emp (id integer PRIMARY KEY, dept_id integer, name text,
                          salary integer);
        INSERT INTO emp VALUES
            (1, 1, 'alice', 100),
            (2, 1, 'bob', 80),
            (3, 2, 'carol', 90);
        """
    )
    return database


class TestScalarSubqueries:
    def test_uncorrelated_scalar(self, db):
        result = db.query(
            "SELECT name FROM emp WHERE salary > (SELECT avg(salary) FROM emp)"
        )
        assert result.rows == [["alice"]]

    def test_scalar_in_select_list(self, db):
        result = db.query("SELECT (SELECT max(salary) FROM emp)")
        assert result.scalar() == 100

    def test_empty_scalar_subquery_is_null(self, db):
        result = db.query("SELECT (SELECT salary FROM emp WHERE id = 99)")
        assert result.scalar() is None

    def test_multi_row_scalar_subquery_rejected(self, db):
        with pytest.raises(SqlError, match="more than one row"):
            db.query("SELECT (SELECT salary FROM emp)")

    def test_multi_column_scalar_subquery_rejected(self, db):
        with pytest.raises(SqlError, match="single column"):
            db.query("SELECT (SELECT id, salary FROM emp WHERE id = 1)")

    def test_correlated_scalar(self, db):
        result = db.query(
            "SELECT name FROM emp e WHERE salary = "
            "(SELECT max(salary) FROM emp WHERE dept_id = e.dept_id) "
            "ORDER BY name"
        )
        assert result.rows == [["alice"], ["carol"]]


class TestInSubqueries:
    def test_uncorrelated_in(self, db):
        result = db.query(
            "SELECT name FROM dept WHERE id IN (SELECT dept_id FROM emp) ORDER BY id"
        )
        assert result.rows == [["eng"], ["ops"]]

    def test_not_in(self, db):
        result = db.query(
            "SELECT name FROM dept WHERE id NOT IN (SELECT dept_id FROM emp)"
        )
        assert result.rows == [["empty"]]

    def test_in_with_filtered_subquery(self, db):
        result = db.query(
            "SELECT name FROM dept WHERE id IN "
            "(SELECT dept_id FROM emp WHERE salary > 85) ORDER BY id"
        )
        assert result.rows == [["eng"], ["ops"]]

    def test_in_subquery_reused_across_rows(self, db):
        """The membership set is built once (uncorrelated semi-join)."""
        session = db.create_session()
        db.query(
            "SELECT name FROM dept WHERE id IN (SELECT dept_id FROM emp)", session
        )
        # one scan of dept (3) + one scan of emp (3), not dept x emp
        assert db.total_work.rows_scanned <= 10


class TestExists:
    def test_correlated_exists(self, db):
        result = db.query(
            "SELECT name FROM dept WHERE EXISTS "
            "(SELECT 1 FROM emp WHERE emp.dept_id = dept.id) ORDER BY id"
        )
        assert result.rows == [["eng"], ["ops"]]

    def test_not_exists(self, db):
        result = db.query(
            "SELECT name FROM dept WHERE NOT EXISTS "
            "(SELECT 1 FROM emp WHERE emp.dept_id = dept.id)"
        )
        assert result.rows == [["empty"]]

    def test_uncorrelated_exists(self, db):
        assert db.query(
            "SELECT count(*) FROM dept WHERE EXISTS (SELECT 1 FROM emp)"
        ).scalar() == 3
        assert db.query(
            "SELECT count(*) FROM dept WHERE EXISTS (SELECT 1 FROM emp WHERE id > 99)"
        ).scalar() == 0


class TestCorrelationMemo:
    def test_repeated_outer_values_hit_the_memo(self, db):
        """alice and bob share dept_id=1: the correlated subquery runs
        once per distinct correlation value, not once per row."""
        session = db.create_session()
        before = db.total_work.rows_scanned
        db.query(
            "SELECT name FROM emp e WHERE salary >= "
            "(SELECT avg(salary) FROM emp WHERE dept_id = e.dept_id)",
            session,
        )
        scanned = db.total_work.rows_scanned - before
        # 3 outer rows + 1 failed uncorrelated probe (3) + 2 distinct
        # dept_ids -> 2 inner scans (bob's dept hits the memo)
        assert scanned <= 3 + 3 + 2 * 3
        # without the memo it would be 3 inner scans: 3 + 3 + 3*3 = 15
        assert scanned < 15

    def test_correlated_in_update_where(self, db):
        db.query(
            "UPDATE emp SET salary = salary + 1 WHERE dept_id IN "
            "(SELECT id FROM dept WHERE name = 'eng')"
        )
        assert db.query("SELECT salary FROM emp WHERE id = 1").scalar() == 101

    def test_nested_subqueries(self, db):
        result = db.query(
            "SELECT name FROM emp WHERE dept_id IN ("
            "  SELECT id FROM dept WHERE id IN ("
            "    SELECT dept_id FROM emp WHERE salary > 85)"
            ") ORDER BY name"
        )
        assert result.rows == [["alice"], ["bob"], ["carol"]]
