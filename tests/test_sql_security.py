"""Tests for UDFs, custom operators, privileges, RLS, and the CVE paths."""

from __future__ import annotations

import pytest

from repro.sqlengine import (
    Database,
    EngineProfile,
    FeatureNotSupportedError,
    InsufficientPrivilegeError,
    SqlError,
    UndefinedFunctionError,
)

LEAK_FUNCTION = (
    "CREATE FUNCTION leak2(integer,integer) RETURNS boolean "
    "AS $$BEGIN RAISE NOTICE 'leak % %', $1, $2; RETURN $1 > $2; END$$ "
    "LANGUAGE plpgsql immutable"
)
LEAK_OPERATOR = (
    "CREATE OPERATOR >>> (procedure=leak2, leftarg=integer, "
    "rightarg=integer, restrict=scalargtsel)"
)


class TestUserFunctions:
    def test_function_call_and_notice(self):
        db = Database()
        session = db.create_session()
        db.execute(LEAK_FUNCTION, session)
        outcome = db.execute("SELECT leak2(5, 3)", session)[0]
        assert outcome.result.rows == [[True]]
        assert [n.message for n in outcome.notices] == ["leak 5 3"]

    def test_duplicate_function_rejected(self):
        db = Database()
        db.query(LEAK_FUNCTION)
        with pytest.raises(SqlError):
            db.query(LEAK_FUNCTION)

    def test_function_return_type_coerced(self):
        db = Database()
        db.query(
            "CREATE FUNCTION one() RETURNS integer AS 'BEGIN RETURN 1.0; END' "
            "LANGUAGE plpgsql"
        )
        value = db.query("SELECT one()").scalar()
        assert value == 1 and isinstance(value, int)

    def test_raise_exception(self):
        db = Database()
        db.query(
            "CREATE FUNCTION boom() RETURNS integer AS "
            "'BEGIN RAISE EXCEPTION ''nope''; RETURN 1; END' LANGUAGE plpgsql"
        )
        with pytest.raises(SqlError, match="nope"):
            db.query("SELECT boom()")

    def test_unknown_function(self):
        with pytest.raises(UndefinedFunctionError):
            Database().query("SELECT nosuchfn(1)")


class TestCustomOperators:
    def test_operator_dispatches_to_function(self):
        db = Database()
        session = db.create_session()
        db.execute(LEAK_FUNCTION + ";" + LEAK_OPERATOR, session)
        outcome = db.execute("SELECT 7 >>> 3", session)[0]
        assert outcome.result.rows == [[True]]
        assert outcome.notices[0].message == "leak 7 3"

    def test_operator_in_where_runs_per_row(self):
        db = Database()
        session = db.create_session()
        db.execute(
            "CREATE TABLE t (a int); INSERT INTO t VALUES (1), (5), (9);"
            + LEAK_FUNCTION + ";" + LEAK_OPERATOR,
            session,
        )
        outcome = db.execute("SELECT a FROM t WHERE a >>> 4", session)[0]
        assert outcome.result.rows == [[5], [9]]
        assert len(outcome.notices) == 3  # called on every row

    def test_unknown_operator(self):
        with pytest.raises(UndefinedFunctionError):
            Database().query("SELECT 1 %%% 2")

    def test_operator_requires_procedure_option(self):
        with pytest.raises(SqlError):
            Database().query("CREATE OPERATOR >>> (leftarg=int, rightarg=int)")


class TestVendorUdfGate:
    def test_udf_disabled_profile_rejects(self):
        db = Database(EngineProfile(supports_udf=False, udf_error_message="unimplemented"))
        with pytest.raises(FeatureNotSupportedError, match="unimplemented"):
            db.query(LEAK_FUNCTION)
        with pytest.raises(FeatureNotSupportedError):
            db.query(LEAK_OPERATOR.replace("leak2", "whatever"))


class TestPrivileges:
    def _db(self) -> Database:
        db = Database()
        db.execute(
            "CREATE TABLE secret (x int); INSERT INTO secret VALUES (1);"
            "CREATE TABLE open_table (x int); INSERT INTO open_table VALUES (2);"
            "CREATE USER bob; GRANT SELECT ON open_table TO bob;"
        )
        return db

    def test_denied_without_grant(self):
        db = self._db()
        bob = db.create_session("bob")
        with pytest.raises(InsufficientPrivilegeError):
            db.query("SELECT * FROM secret", bob)

    def test_allowed_with_grant(self):
        db = self._db()
        bob = db.create_session("bob")
        assert db.query("SELECT x FROM open_table", bob).scalar() == 2

    def test_owner_always_allowed(self):
        db = self._db()
        assert db.query("SELECT x FROM secret").scalar() == 1


class TestRowLevelSecurity:
    SETUP = """
    CREATE TABLE t (id int, secret text);
    INSERT INTO t VALUES (1, 'a'), (2, 'b'), (999, 'PROTECTED');
    ALTER TABLE t ENABLE ROW LEVEL SECURITY;
    CREATE POLICY p ON t USING (id < 100);
    CREATE USER bob;
    GRANT SELECT ON t TO bob;
    """

    def test_policy_filters_rows_for_grantee(self):
        db = Database()
        db.execute(self.SETUP)
        bob = db.create_session("bob")
        rows = db.query("SELECT id FROM t ORDER BY id", bob).rows
        assert rows == [[1], [2]]

    def test_owner_sees_everything(self):
        db = Database()
        db.execute(self.SETUP)
        assert len(db.query("SELECT id FROM t").rows) == 3

    def test_fixed_engine_does_not_leak_via_operator(self):
        db = Database(EngineProfile(rls_pushdown_leak=False))
        db.execute(self.SETUP)
        bob = db.create_session("bob")
        db.execute(
            "CREATE FUNCTION snoop(text, text) RETURNS bool AS "
            "'BEGIN RAISE NOTICE ''saw %'', $1; RETURN true; END' LANGUAGE plpgsql;"
            "CREATE OPERATOR <<< (procedure=snoop, leftarg=text, rightarg=text);",
            bob,
        )
        outcome = db.execute("SELECT id FROM t WHERE secret <<< 'x'", bob)[0]
        seen = [n.message for n in outcome.notices]
        assert "saw PROTECTED" not in seen
        assert len(seen) == 2

    def test_leaky_engine_leaks_but_still_filters_results(self):
        db = Database(EngineProfile(rls_pushdown_leak=True))
        db.execute(self.SETUP)
        bob = db.create_session("bob")
        db.execute(
            "CREATE FUNCTION snoop(text, text) RETURNS bool AS "
            "'BEGIN RAISE NOTICE ''saw %'', $1; RETURN true; END' LANGUAGE plpgsql;"
            "CREATE OPERATOR <<< (procedure=snoop, leftarg=text, rightarg=text);",
            bob,
        )
        outcome = db.execute("SELECT id FROM t WHERE secret <<< 'x'", bob)[0]
        seen = [n.message for n in outcome.notices]
        assert "saw PROTECTED" in seen  # the CVE-2019-10130 side channel
        assert outcome.result.rows == [[1], [2]]  # results still filtered


class TestPlannerLeak:
    SETUP = """
    CREATE TABLE some_table (col_to_leak integer);
    INSERT INTO some_table VALUES (41), (42), (43);
    CREATE USER attacker;
    """
    EXPLOIT = (
        LEAK_FUNCTION + ";" + LEAK_OPERATOR + ";"
        "SET client_min_messages TO 'notice';"
        "EXPLAIN (COSTS OFF) SELECT * FROM some_table WHERE col_to_leak >>> 0"
    )

    def test_vulnerable_engine_leaks_statistics(self):
        db = Database(EngineProfile(planner_stats_leak=True))
        db.execute(self.SETUP)
        attacker = db.create_session("attacker")
        outcomes = db.execute(self.EXPLOIT, attacker)
        notices = [n.message for o in outcomes for n in o.notices]
        assert "leak 41 0" in notices and "leak 43 0" in notices

    def test_fixed_engine_does_not_leak(self):
        db = Database(EngineProfile(planner_stats_leak=False))
        db.execute(self.SETUP)
        attacker = db.create_session("attacker")
        outcomes = db.execute(self.EXPLOIT, attacker)
        notices = [n.message for o in outcomes for n in o.notices]
        assert notices == []

    def test_explain_emits_plan_rows(self):
        db = Database()
        db.execute("CREATE TABLE t (a int)")
        result = db.query("EXPLAIN (COSTS OFF) SELECT * FROM t WHERE a = 1")
        assert result.column_names == ["QUERY PLAN"]
        assert any("Seq Scan on t" in row[0] for row in result.rows)
        assert any("Filter:" in row[0] for row in result.rows)

    def test_explain_with_costs(self):
        db = Database()
        db.execute("CREATE TABLE t (a int); INSERT INTO t VALUES (1)")
        result = db.query("EXPLAIN SELECT * FROM t")
        assert "cost=" in result.rows[0][0]
