"""Promote fuzz discoveries into the Table-I scenario registry.

A diverse-mode divergent reproducer *is* a Table-I-style scenario — two
implementations answering one request differently, caught by RDDR.
Promotion wraps it in the scenario framework's three-part proof:

1. **benign_ok** — the target's seed requests pass through RDDR;
2. **leak_without_rddr** — queried *directly*, the diverse instances
   really answer differently (after variance masking), so the
   divergence is an instance-level fact, not a proxy artifact;
3. **mitigated** — through RDDR the reproducer's final request draws a
   divergent verdict with the recorded signature.

``register_corpus_scenarios()`` registers every eligible corpus entry
as ``fuzz:<target>:<slug>``; ``python -m repro.fuzz promote`` runs them.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.variance import VarianceMasker
from repro.fuzz.corpus import Reproducer, load_corpus
from repro.fuzz.driver import FuzzDeployment
from repro.fuzz.oracle import DENOISED, DIVERGENT, MATCH
from repro.fuzz.replay import replay_reproducer
from repro.fuzz.targets import DIVERSE, get_target
from repro.protocols import get as get_protocol
from repro.scenarios.base import Scenario, ScenarioRegistry, ScenarioResult
from repro.scenarios.base import registry as scenario_registry
from repro.transport.retry import open_connection_retry
from repro.transport.streams import close_writer


async def _responses_direct(
    reproducer: Reproducer,
) -> list[tuple[bytes, ...]]:
    """Run the reproducer sequence against each instance *directly*
    (no proxy); returns the final request's masked token stream per
    instance."""
    target = get_target(reproducer.target)
    protocol = get_protocol(target.protocol)
    config = target.config(reproducer.mode)
    masker = VarianceMasker(config.variance_rules)
    addresses, servers = await target.start_instances(reproducer.mode)
    streams: list[tuple[bytes, ...]] = []
    try:
        for address in addresses:
            reader, writer = await open_connection_retry(*address)
            try:
                if protocol.capabilities().handshake:
                    state = await protocol.handshake(reader, writer)
                else:
                    state = protocol.new_connection_state()
                response = b""
                for request in reproducer.requests:
                    writer.write(request)
                    await writer.drain()
                    if protocol.expects_response(request, state):
                        response = await protocol.read_server_message(
                            reader, state, request
                        )
                streams.append(
                    tuple(masker.mask_stream(protocol.tokenize(response)))
                )
            finally:
                await close_writer(writer)
    finally:
        for server in servers:
            await server.close()
    return streams


def scenario_from_reproducer(reproducer: Reproducer) -> Scenario:
    """Wrap one corpus reproducer as a runnable Table-I-style scenario."""

    async def run() -> ScenarioResult:
        result = ScenarioResult(
            scenario_id=f"fuzz:{reproducer.target}:{reproducer.slug}",
            cve="fuzz-discovered",
            microservice=reproducer.target,
            exploit=reproducer.reason or "divergence-inducing request",
            cwe="n/a",
            owasp="n/a",
            diversity=reproducer.mode,
        )
        # mitigated: the recorded divergent verdict (and signature)
        # still holds through RDDR.  Own deployment, so the benign leg
        # below cannot perturb replay state.
        replay = await replay_reproducer(reproducer)
        result.mitigated = replay.ok
        if replay.outcome is not None:
            result.divergences = int(
                replay.outcome.fuzz_verdict == DIVERGENT
            )
        # benign_ok: benign traffic flows through the same deployment
        # without tripping divergence (seed requests minus any
        # deliberate trigger the target keeps in its mutation pool).
        target = get_target(reproducer.target)
        async with FuzzDeployment(target, reproducer.mode) as deployment:
            benign = await deployment.execute_all(target.benign_requests())
        result.benign_ok = all(
            outcome.fuzz_verdict in (MATCH, DENOISED) for outcome in benign
        )
        # leak_without_rddr: the instances disagree when asked directly.
        streams = await _responses_direct(reproducer)
        result.leak_without_rddr = len(set(streams)) > 1
        result.notes = (
            f"promoted from fuzz corpus (seed {reproducer.seed}, "
            f"signature {reproducer.signature or 'n/a'})"
        )
        return result

    return run


def register_corpus_scenarios(
    directory: Path | None = None,
    *,
    registry: ScenarioRegistry = scenario_registry,
) -> list[str]:
    """Register every diverse-mode divergent corpus reproducer as a
    scenario named ``fuzz:<target>:<slug>``; returns the new names."""
    names: list[str] = []
    for _path, reproducer in load_corpus(directory):
        if reproducer.verdict != DIVERGENT or reproducer.mode != DIVERSE:
            continue
        name = f"fuzz:{reproducer.target}:{reproducer.slug}"
        if name in registry.scenarios:
            continue
        registry.scenarios[name] = scenario_from_reproducer(reproducer)
        names.append(name)
    return names
