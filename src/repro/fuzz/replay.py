"""Replay corpus reproducers and re-check their recorded verdicts.

Used three ways: ``python -m repro.fuzz replay <file>`` for one-off
debugging, ``replay --all`` as the CI ``fuzz-corpus`` check, and the
tier-1 ``test_fuzz_corpus_replay`` battery (one parametrized case per
corpus file).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fuzz.corpus import Reproducer
from repro.fuzz.driver import FuzzDeployment
from repro.fuzz.oracle import DIVERGENT, ExchangeOutcome


@dataclass
class ReplayResult:
    """Did the recorded verdict still hold?"""

    reproducer: Reproducer
    ok: bool
    #: What the final exchange actually produced.
    outcome: ExchangeOutcome | None
    detail: str = ""

    def summary_line(self) -> str:
        status = "ok" if self.ok else "FAIL"
        return (
            f"[{status}] {self.reproducer.filename}: "
            f"expected {self.reproducer.verdict}"
            + (f" — {self.detail}" if self.detail else "")
        )


async def replay_reproducer(reproducer: Reproducer) -> ReplayResult:
    """Stand the recorded deployment back up, run the request sequence,
    and compare the final exchange against the recorded verdict (and,
    for divergences, the recorded dedup signature)."""
    if not reproducer.requests:
        return ReplayResult(
            reproducer, ok=False, outcome=None, detail="empty request list"
        )
    async with FuzzDeployment(reproducer.target, reproducer.mode) as deployment:
        outcomes = await deployment.execute_all(reproducer.requests)
    final = outcomes[-1]
    if final.fuzz_verdict != reproducer.verdict:
        return ReplayResult(
            reproducer,
            ok=False,
            outcome=final,
            detail=(
                f"verdict changed: got {final.fuzz_verdict} "
                f"(raw {final.verdict}, reason {final.reason!r})"
            ),
        )
    if (
        reproducer.verdict == DIVERGENT
        and reproducer.signature
        and final.signature != reproducer.signature
    ):
        return ReplayResult(
            reproducer,
            ok=False,
            outcome=final,
            detail=(
                f"signature changed: recorded {reproducer.signature}, "
                f"got {final.signature}"
            ),
        )
    return ReplayResult(reproducer, ok=True, outcome=final)
