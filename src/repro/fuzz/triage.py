"""Triage: dedup findings by diff signature, minimize reproducers.

**Dedup** keys on the exchange's ``diff_signature`` (exported by the
incoming proxy, computed by :meth:`repro.core.diff.DiffResult.signature`)
— structural divergence identity with volatile values wildcarded, so two
ASLR leaks with different pointers collapse into one finding.

**Minimization** shrinks the request *history* (everything sent on the
finding's connection, ending in the triggering mutant) to a short
sequence that still reproduces the same signature against a fresh
deployment.  Strategy: last-``k`` suffix windows with doubling ``k``
(most findings need no state and minimize to the final request alone;
stateful ones — a SET a GET depends on — keep the shortest suffix that
carries the state), then bounded greedy drops inside the kept window.
Every probe stands up a fresh deployment so earlier probes cannot leak
state into later ones.
"""

from __future__ import annotations

from repro.fuzz.driver import FuzzDeployment
from repro.fuzz.oracle import DIVERGENT, ExchangeOutcome
from repro.fuzz.targets import get_target
from repro.protocols import get as get_protocol


class Deduper:
    """Tracks which divergence signatures a campaign has already seen.

    Two granularities: the positional ``signature`` (what :meth:`novel`
    keys minting on — corpus files stay per-signature reproducible) and
    the position-insensitive ``cluster``
    (:meth:`repro.core.diff.DiffResult.cluster_signature`), which is the
    human-facing finding count — an ASLR leak surfacing at 30 different
    token offsets is 30 signatures but *one* cluster.
    """

    def __init__(self) -> None:
        self._seen: dict[str, int] = {}
        self._clusters: dict[str, int] = {}

    @staticmethod
    def key(outcome: ExchangeOutcome) -> str:
        # Signature when exported; the verdict reason as a fallback so a
        # signature-less divergence still dedups coarsely.
        return outcome.signature or f"reason:{outcome.reason}"

    @staticmethod
    def cluster_key(outcome: ExchangeOutcome) -> str:
        return outcome.cluster or Deduper.key(outcome)

    def novel(self, outcome: ExchangeOutcome) -> bool:
        """Record the finding; True the first time its key appears."""
        cluster = self.cluster_key(outcome)
        self._clusters[cluster] = self._clusters.get(cluster, 0) + 1
        key = self.key(outcome)
        self._seen[key] = self._seen.get(key, 0) + 1
        return self._seen[key] == 1

    @property
    def signatures(self) -> list[str]:
        return sorted(self._seen)

    @property
    def clusters(self) -> list[str]:
        return sorted(self._clusters)

    @property
    def duplicates(self) -> int:
        return sum(count - 1 for count in self._seen.values())


async def verify(
    target: str,
    mode: str,
    candidate: list[bytes],
    verdict: str,
    signature: str | None = None,
) -> bool:
    """Does replaying ``candidate`` against a fresh deployment end in
    ``verdict`` (and, when given, ``signature``)?"""
    if not candidate:
        return False
    async with FuzzDeployment(target, mode) as deployment:
        outcomes = await deployment.execute_all(candidate)
    final = outcomes[-1]
    if final.fuzz_verdict != verdict:
        return False
    return signature is None or final.signature == signature


async def _reproduces(
    target: str, mode: str, candidate: list[bytes], signature: str | None
) -> bool:
    """Does replaying ``candidate`` end in the same divergence?"""
    return await verify(target, mode, candidate, DIVERGENT, signature)


async def minimize(
    target: str,
    mode: str,
    history: list[bytes],
    signature: str | None,
    *,
    probe_budget: int = 48,
) -> list[bytes] | None:
    """Shrink ``history`` to a short sequence reproducing ``signature``.

    ``history`` is the full request log since the finding's deployment
    started (divergences can depend on server state written arbitrarily
    far back).  Returns the smallest sequence found within
    ``probe_budget`` fresh-deployment probes, or ``None`` if nothing —
    not even the full log — reproduces (a nondeterministic or
    wall-clock-dependent finding; the engine skips minting those rather
    than committing a reproducer that fails replay).
    """
    if not history:
        raise ValueError("cannot minimize an empty history")
    probes = 0

    async def probe(candidate: list[bytes]) -> bool:
        nonlocal probes
        if probes >= probe_budget:
            return False
        probes += 1
        return await _reproduces(target, mode, candidate, signature)

    # Suffix windows, doubling: final request alone, then last 2, 4,
    # ..., always ending with the full log.
    sizes = []
    size = 1
    while size < len(history):
        sizes.append(size)
        size *= 2
    sizes.append(len(history))
    window: list[bytes] | None = None
    for size in sizes:
        if await probe(history[-size:]):
            window = history[-size:]
            break
        if probes >= probe_budget:
            return None
    if window is None:
        return None

    # One-probe collapse: keep only requests the protocol says can have
    # written state (plus the trigger).  Turns a 300-request log into a
    # handful of writes before greedy dropping even starts.
    protocol = get_protocol(get_target(target).protocol)
    writes = [r for r in window[:-1] if protocol.mutates_state(r)]
    if len(writes) < len(window) - 1:
        candidate = writes + [window[-1]]
        if await probe(candidate):
            window = candidate

    # Greedy drops inside the window (never the final, triggering request).
    index = 0
    while index < len(window) - 1 and probes < probe_budget:
        candidate = window[:index] + window[index + 1:]
        if await probe(candidate):
            window = candidate
        else:
            index += 1
    return window
