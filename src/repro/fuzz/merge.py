"""Cross-campaign corpus merging: union corpora, one reproducer per cluster.

Nightly CI runs many seeded campaigns in parallel, each writing its own
corpus directory, and one root cause routinely surfaces in several of
them at different token offsets — many positional signatures, many
files, *one* finding.  :func:`merge_corpora` unions any number of
corpus directories and keeps exactly one reproducer per
**cluster** (the position-insensitive
:meth:`repro.core.diff.DiffResult.cluster_signature` identity minted
into findings; older files fall back to their positional signature, and
signature-less exemplars to their content slug) — and of each cluster's
candidates, the *minimal* one: fewest requests, then fewest request
bytes, then lexicographically-first filename.  Every tiebreak is
deterministic, so merging the same inputs always writes byte-identical
output, which makes the merged directory itself corpus-diffable.

Merged files are rewritten through :meth:`Reproducer.save`, so the
output directory is a normal corpus: replayable with
``python -m repro.fuzz replay``, loadable with :func:`load_corpus`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.fuzz.corpus import Reproducer, load_corpus


def cluster_key(reproducer: Reproducer) -> str:
    """The merge identity of one reproducer, scoped by target and mode
    (the same root cause in different workloads is different findings):
    the cluster signature, falling back to the positional signature for
    pre-cluster corpus files, then to the content slug for
    signature-less (match/denoised) exemplars."""
    identity = reproducer.cluster or reproducer.signature or reproducer.slug
    return f"{reproducer.target}:{reproducer.mode}:{identity}"


def _rank(path: Path, reproducer: Reproducer) -> tuple[int, int, str]:
    """Merge preference within one cluster — smaller wins."""
    return (
        len(reproducer.requests),
        sum(len(request) for request in reproducer.requests),
        path.name,
    )


@dataclass
class MergeReport:
    """What one merge did."""

    #: Reproducer files scanned across every input directory.
    scanned: int = 0
    #: Files written into the output directory, one per cluster.
    written: list[Path] = field(default_factory=list)
    #: Scanned reproducers superseded by a smaller cluster-mate.
    dropped: int = 0

    def summary_line(self) -> str:
        return (
            f"merged {self.scanned} reproducer(s) -> "
            f"{len(self.written)} cluster(s), {self.dropped} duplicate(s) dropped"
        )


def merge_corpora(directories: list[Path], out_dir: Path) -> MergeReport:
    """Union the corpora in ``directories`` into ``out_dir``, one minimal
    reproducer per cluster.  Raises ``ValueError`` when an input
    directory is missing or holds no reproducers at all combined."""
    candidates: list[tuple[Path, Reproducer]] = []
    for directory in directories:
        if not Path(directory).is_dir():
            raise ValueError(f"not a corpus directory: {directory}")
        candidates.extend(load_corpus(Path(directory)))
    if not candidates:
        raise ValueError("no reproducers found in any input directory")

    best: dict[str, tuple[Path, Reproducer]] = {}
    for path, reproducer in candidates:
        key = cluster_key(reproducer)
        incumbent = best.get(key)
        if incumbent is None or _rank(path, reproducer) < _rank(*incumbent):
            best[key] = (path, reproducer)

    report = MergeReport(scanned=len(candidates))
    report.dropped = len(candidates) - len(best)
    out_dir = Path(out_dir)
    for key in sorted(best):
        _path, reproducer = best[key]
        report.written.append(reproducer.save(out_dir))
    return report
