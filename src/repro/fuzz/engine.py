"""The fuzzing campaign loop: seeded mutation → deployment → triage.

``run_campaign`` drives one ``(target, mode, seed, budget)`` campaign:

1. Derive the campaign RNG from ``sha256(target:mode:seed)`` — Python's
   ``hash()`` is salted per process, so it never touches identity.
2. Pull the next base request from the corpus pool (seeds plus mutants
   that previously produced a *novel* verdict — coverage-ish feedback
   without instrumentation), mutate it through the protocol module's
   contract-1.1 ``mutate`` hook, and send it through the live deployment.
3. Classify the exchange trace (:mod:`repro.fuzz.oracle`).  Novel
   divergences are minimized against fresh deployments
   (:mod:`repro.fuzz.triage`) and minted as corpus reproducers.

Everything downstream of the RNG is deterministic — the in-tree targets
are deterministic simulators (ASLR pointers vary per run but signatures
wildcard them) — so two runs with the same arguments emit byte-identical
corpus files and signature sets, which the acceptance tests assert.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.fuzz import corpus as corpus_mod
from repro.fuzz.driver import FuzzDeployment
from repro.fuzz.oracle import DENOISED, DIVERGENT, MATCH, is_finding
from repro.fuzz.targets import MODES, get_target
from repro.fuzz.triage import Deduper, minimize, verify
from repro.protocols import get as get_protocol
from repro.protocols.base import ProtocolModule

#: Corpus-pool cap: novelty feedback stops growing the pool past this.
_POOL_CAP = 256


def campaign_rng(target: str, mode: str, seed: int) -> random.Random:
    """The campaign's one RNG, stable across processes and platforms."""
    digest = hashlib.sha256(f"{target}:{mode}:{seed}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def mutant_stream(
    protocol: ProtocolModule,
    seeds: list[bytes],
    rng: random.Random,
    count: int,
) -> Iterator[bytes]:
    """The pure (feedback-free) mutant stream: ``count`` mutants drawn
    from a fixed pool.  The property tests pin its determinism; the
    campaign loop adds novelty feedback on top of the same draw order."""
    pool = list(seeds)
    if not pool:
        raise ValueError("mutant_stream needs at least one seed request")
    for _ in range(count):
        base = pool[rng.randrange(len(pool))]
        yield protocol.mutate(base, rng)


@dataclass
class CampaignConfig:
    """One fuzzing campaign's arguments."""

    target: str
    mode: str = "diverse"
    seed: int = 0
    budget: int = 300
    #: Minimize novel findings against fresh deployments before minting.
    minimize: bool = True
    #: Fresh-deployment probes each minimization may spend.
    probe_budget: int = 48
    #: Also mint the first ``denoised`` and first ``match`` exchange as
    #: pinned exemplars (used to seed verdict-diverse corpus entries).
    exemplars: bool = False
    #: Where reproducers are written; ``None`` mints in memory only.
    corpus_dir: Path | None = None
    #: Dump the campaign deployment's trace ring (JSONL) here — the
    #: nightly CI uploads it alongside minted reproducers on findings.
    trace_out: Path | None = None

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown oracle mode {self.mode!r}")
        if self.budget < 1:
            raise ValueError("budget must be >= 1")


@dataclass
class CampaignReport:
    """What one campaign did — findings plus where the time went."""

    config: CampaignConfig
    executed: int = 0
    verdicts: dict[str, int] = field(default_factory=dict)
    #: Minted reproducers (novel findings, plus exemplars if enabled).
    findings: list[corpus_mod.Reproducer] = field(default_factory=list)
    #: Paths written (when ``corpus_dir`` was set).
    written: list[Path] = field(default_factory=list)
    #: All distinct divergence signatures observed.
    signatures: list[str] = field(default_factory=list)
    #: Position-insensitive signature clusters (the human-facing finding
    #: count: one root cause surfacing at many token offsets is many
    #: signatures but one cluster).
    clusters: list[str] = field(default_factory=list)
    #: Divergent exchanges beyond the first per signature.
    duplicates: int = 0
    #: Novel findings that did not reproduce from the request log
    #: against a fresh deployment (nondeterministic / wall-clock) and
    #: were therefore not minted.
    unreproducible: int = 0
    #: Incoming-proxy stage timings (StageProfiler summary) — volatile,
    #: never part of the determinism contract.
    stage_summary: dict = field(default_factory=dict)

    def summary_line(self) -> str:
        verdicts = " ".join(
            f"{name}={count}" for name, count in sorted(self.verdicts.items())
        )
        return (
            f"fuzz {self.config.target}/{self.config.mode} "
            f"seed={self.config.seed} executed={self.executed} "
            f"findings={len(self.findings)} "
            f"unique_signatures={len(self.signatures)} "
            f"clusters={len(self.clusters)} "
            f"duplicates={self.duplicates} "
            f"unreproducible={self.unreproducible} [{verdicts}]"
        )


async def run_campaign(config: CampaignConfig) -> CampaignReport:
    """Run one seeded campaign; returns the report (and writes corpus
    files when ``config.corpus_dir`` is set)."""
    target = get_target(config.target)
    protocol = get_protocol(target.protocol)
    rng = campaign_rng(config.target, config.mode, config.seed)
    report = CampaignReport(config=config)
    deduper = Deduper()
    pool = list(target.seed_requests())
    if not pool:
        raise ValueError(f"target {config.target!r} has no seed requests")
    #: Every request sent since the deployment started, in order — the
    #: log minimization shrinks.  Divergences can depend on server
    #: state written arbitrarily far back (a SET three connections ago
    #: arms a GET's leak), so the log never resets; reconnects only
    #: reset *connection* state, which replay reproduces the same way.
    history: list[bytes] = []
    exemplar_minted = {DENOISED: False, MATCH: False}

    def mint(reproducer: corpus_mod.Reproducer) -> None:
        report.findings.append(reproducer)
        if config.corpus_dir is not None:
            report.written.append(reproducer.save(config.corpus_dir))

    async with FuzzDeployment(target, config.mode) as deployment:
        for _ in range(config.budget):
            base = pool[rng.randrange(len(pool))]
            mutant = protocol.mutate(base, rng)
            outcome = await deployment.execute(mutant)
            report.executed += 1
            report.verdicts[outcome.fuzz_verdict] = (
                report.verdicts.get(outcome.fuzz_verdict, 0) + 1
            )
            history.append(mutant)
            if is_finding(outcome, config.mode):
                if deduper.novel(outcome):
                    if len(pool) < _POOL_CAP:
                        pool.append(mutant)
                    requests: list[bytes] | None = list(history)
                    if config.minimize:
                        requests = await minimize(
                            config.target,
                            config.mode,
                            requests,
                            outcome.signature,
                            probe_budget=config.probe_budget,
                        )
                    if requests is None:
                        report.unreproducible += 1
                    else:
                        mint(
                            corpus_mod.Reproducer(
                                target=config.target,
                                mode=config.mode,
                                verdict=DIVERGENT,
                                requests=requests,
                                signature=outcome.signature,
                                cluster=outcome.cluster,
                                reason=outcome.reason,
                                seed=config.seed,
                            )
                        )
            elif (
                config.exemplars
                and outcome.fuzz_verdict in (DENOISED, MATCH)
                and not exemplar_minted[outcome.fuzz_verdict]
            ):
                # Exemplars pin non-divergent behaviour (masking that
                # worked, a plain match) as single-request reproducers —
                # but only if the verdict holds from a cold deployment.
                if await verify(
                    config.target, config.mode, [mutant], outcome.fuzz_verdict
                ):
                    exemplar_minted[outcome.fuzz_verdict] = True
                    mint(
                        corpus_mod.Reproducer(
                            target=config.target,
                            mode=config.mode,
                            verdict=outcome.fuzz_verdict,
                            requests=[mutant],
                            seed=config.seed,
                            comment=(
                                "pinned exemplar: masking made this "
                                "exchange unanimous"
                                if outcome.fuzz_verdict == DENOISED
                                else "pinned exemplar: unanimous without "
                                "masking"
                            ),
                        )
                    )
        report.signatures = deduper.signatures
        report.clusters = deduper.clusters
        report.duplicates = deduper.duplicates
        report.stage_summary = deployment.observer.profiler.summary()
        if config.trace_out is not None:
            deployment.observer.sink.write_jsonl(str(config.trace_out))
    return report
