"""Fuzzing oracle: classify exported exchange traces into fuzz verdicts.

The RDDR deployment itself is the oracle (the MicroFuzz move): every
mutant flows through a real proxy, and the proxy's exported trace —
verdict, denoise span, ``diff_signature`` — tells the engine what
happened.  The raw proxy verdicts collapse into four fuzz verdicts:

* ``match`` — unanimous, nothing masked.  The boring common case.
* ``denoised`` — unanimous only because the denoise/variance pipeline
  masked tokens.  Not a finding, but recorded: a corpus of denoised
  reproducers pins the masking behaviour against regressions.
* ``divergent`` — the proxy reported divergence.  In identical mode
  this is an RDDR comparison bug; in diverse mode a discovered
  scenario.  Carries the ``diff_signature`` used for dedup.
* ``error`` — the exchange never produced a comparable verdict
  (timeout, instance error, shed, blocked, client closed...).  Not a
  finding either way; the driver tears the connection down and moves on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Fuzz verdict names (also the values recorded in corpus files).
MATCH = "match"
DENOISED = "denoised"
DIVERGENT = "divergent"
ERROR = "error"

FUZZ_VERDICTS = (MATCH, DENOISED, DIVERGENT, ERROR)


@dataclass
class ExchangeOutcome:
    """What the deployment said about one request."""

    #: Raw incoming-proxy verdict (``unanimous``, ``divergent``, ...).
    verdict: str
    #: Proxy-supplied reason, e.g. the divergence description.
    reason: str | None
    #: Collapsed fuzz verdict: one of :data:`FUZZ_VERDICTS`.
    fuzz_verdict: str
    #: Diff-token dedup signature (divergent exchanges only).
    signature: str | None = None
    #: Position-insensitive signature cluster (divergent exchanges only):
    #: same diverging value-sets at *any* token offset share a cluster.
    cluster: str | None = None
    #: Tokens the denoise mask hid on this exchange.
    masked_tokens: int = 0
    #: The full exported trace dict, for artifact dumps.
    trace: dict = field(default_factory=dict, repr=False)
    #: The response the client read, if any (set by the driver).
    response: bytes | None = field(default=None, repr=False)


def _denoise_masked_tokens(trace: dict) -> int:
    """Tokens the denoise stage changed: filter-pair noise masking plus
    variance-rule rewrites (both count as "masking did real work")."""
    for child in trace.get("spans", {}).get("children", ()):
        if child.get("name") == "denoise":
            attrs = child.get("attrs", {})
            return int(attrs.get("masked_tokens", 0)) + int(
                attrs.get("variance_masked_tokens", 0)
            )
    return 0


def classify(trace: dict) -> ExchangeOutcome:
    """Collapse one exported trace dict into an :class:`ExchangeOutcome`."""
    verdict = str(trace.get("verdict", "unfinished"))
    reason = trace.get("reason")
    masked = _denoise_masked_tokens(trace)
    if verdict == "divergent":
        attrs = trace.get("spans", {}).get("attrs", {})
        signature = attrs.get("diff_signature")
        cluster = attrs.get("diff_cluster")
        return ExchangeOutcome(
            verdict=verdict,
            reason=reason,
            fuzz_verdict=DIVERGENT,
            signature=str(signature) if signature is not None else None,
            cluster=str(cluster) if cluster is not None else None,
            masked_tokens=masked,
            trace=trace,
        )
    if verdict == "unanimous":
        fuzz_verdict = DENOISED if masked > 0 else MATCH
        return ExchangeOutcome(
            verdict=verdict,
            reason=reason,
            fuzz_verdict=fuzz_verdict,
            masked_tokens=masked,
            trace=trace,
        )
    return ExchangeOutcome(
        verdict=verdict,
        reason=reason,
        fuzz_verdict=ERROR,
        masked_tokens=masked,
        trace=trace,
    )


def is_finding(outcome: ExchangeOutcome, mode: str) -> bool:
    """Is this outcome worth minting a reproducer for?

    Divergence is the finding in *both* oracle modes — identical mode
    reads it as a comparison-pipeline bug, diverse mode as a discovered
    scenario.  The ``mode`` parameter is kept explicit so future oracle
    modes (e.g. crash-only) can classify differently.
    """
    del mode
    return outcome.fuzz_verdict == DIVERGENT
