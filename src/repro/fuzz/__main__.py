"""CLI: run fuzz campaigns, replay corpus reproducers, promote findings.

Run one seeded campaign (writes reproducers into the corpus with
``--corpus``; ``--trace-out`` dumps the deployment's trace ring)::

    python -m repro.fuzz run --workload kvstore --seed 7 --budget 300
    python -m repro.fuzz run --workload pgbench --mode identical \\
        --seed 3 --budget 500 --corpus tests/fuzz_corpus

Replay (exit 1 if any recorded verdict no longer holds)::

    python -m repro.fuzz replay tests/fuzz_corpus/<file>.json
    python -m repro.fuzz replay --all

Merge per-campaign corpus directories (dedup by cluster signature,
keeping the minimal reproducer per cluster)::

    python -m repro.fuzz merge nightly-a/ nightly-b/ --out merged/

Promote the diverse-mode corpus into the scenario registry and run the
three-part proof for each::

    python -m repro.fuzz promote
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path

from repro.fuzz.corpus import CORPUS_DIR, Reproducer, load_corpus
from repro.fuzz.engine import CampaignConfig, run_campaign
from repro.fuzz.replay import replay_reproducer
from repro.fuzz.targets import MODES, TARGETS


def _run_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz run",
        description="Run one seeded fuzz campaign.",
    )
    parser.add_argument("--workload", required=True, choices=sorted(TARGETS))
    parser.add_argument("--mode", choices=MODES, default="diverse")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--budget", type=int, default=300, help="mutants to run")
    parser.add_argument(
        "--corpus",
        nargs="?",
        const=str(CORPUS_DIR),
        default=None,
        metavar="DIR",
        help="write reproducers here (default with no value: the "
        "in-repo tests/fuzz_corpus)",
    )
    parser.add_argument(
        "--no-minimize",
        action="store_true",
        help="mint findings with their full request history",
    )
    parser.add_argument(
        "--exemplars",
        action="store_true",
        help="also pin the first match and first denoised exchange",
    )
    parser.add_argument(
        "--json-out",
        default=None,
        metavar="PATH",
        help="write the campaign report (verdicts, signatures, stage "
        "timings) as JSON",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="dump the deployment's trace ring as JSONL (CI artifact)",
    )
    return parser


def _merge_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz merge",
        description="Union corpus directories, one minimal reproducer "
        "per cluster signature.",
    )
    parser.add_argument(
        "directories", nargs="+", metavar="DIR", help="corpus directories"
    )
    parser.add_argument(
        "--out",
        required=True,
        metavar="DIR",
        help="write the merged corpus here",
    )
    return parser


def _replay_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz replay",
        description="Replay reproducers and re-check recorded verdicts.",
    )
    parser.add_argument("files", nargs="*", help="reproducer JSON files")
    parser.add_argument(
        "--all", action="store_true", help="replay the whole in-repo corpus"
    )
    return parser


async def _cmd_run(args: argparse.Namespace) -> int:
    config = CampaignConfig(
        target=args.workload,
        mode=args.mode,
        seed=args.seed,
        budget=args.budget,
        minimize=not args.no_minimize,
        exemplars=args.exemplars,
        corpus_dir=Path(args.corpus) if args.corpus else None,
        trace_out=Path(args.trace_out) if args.trace_out else None,
    )
    report = await run_campaign(config)
    print(report.summary_line())
    for reproducer in report.findings:
        print(f"  minted {reproducer.filename} ({len(reproducer.requests)} request(s))")
    for path in report.written:
        print(f"  wrote {path}")
    if args.json_out:
        payload = {
            "target": config.target,
            "mode": config.mode,
            "seed": config.seed,
            "budget": config.budget,
            "executed": report.executed,
            "verdicts": report.verdicts,
            "signatures": report.signatures,
            "clusters": report.clusters,
            "duplicates": report.duplicates,
            "unreproducible": report.unreproducible,
            "findings": [r.filename for r in report.findings],
            "stage_summary": report.stage_summary,
        }
        Path(args.json_out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"  report -> {args.json_out}")
    return 0


async def _cmd_replay(args: argparse.Namespace) -> int:
    if args.all:
        entries = load_corpus()
        if not entries:
            print(f"corpus empty: {CORPUS_DIR}")
            return 1
    elif args.files:
        entries = [(Path(f), Reproducer.load(f)) for f in args.files]
    else:
        print("replay needs files or --all", file=sys.stderr)
        return 2
    failures = 0
    for _path, reproducer in entries:
        result = await replay_reproducer(reproducer)
        print(result.summary_line())
        failures += 0 if result.ok else 1
    if failures:
        print(f"{failures}/{len(entries)} reproducer(s) no longer hold")
        return 1
    print(f"{len(entries)} reproducer(s) replayed clean")
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    from repro.fuzz.merge import merge_corpora

    try:
        report = merge_corpora(
            [Path(d) for d in args.directories], Path(args.out)
        )
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    print(report.summary_line())
    for path in report.written:
        print(f"  kept {path.name}")
    return 0


async def _cmd_promote() -> int:
    from repro.fuzz.promote import register_corpus_scenarios
    from repro.scenarios.base import registry

    names = register_corpus_scenarios()
    if not names:
        print("no diverse-mode divergent reproducers to promote")
        return 1
    failures = 0
    for name in names:
        result = await registry.run(name)
        status = "pass" if result.passed else "FAIL"
        print(
            f"[{status}] {name}: benign_ok={result.benign_ok} "
            f"leak_without_rddr={result.leak_without_rddr} "
            f"mitigated={result.mitigated}"
        )
        failures += 0 if result.passed else 1
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    command, rest = argv[0], argv[1:]
    if command == "run":
        return asyncio.run(_cmd_run(_run_parser().parse_args(rest)))
    if command == "replay":
        return asyncio.run(_cmd_replay(_replay_parser().parse_args(rest)))
    if command == "merge":
        return _cmd_merge(_merge_parser().parse_args(rest))
    if command == "promote":
        return asyncio.run(_cmd_promote())
    print(
        f"unknown command {command!r} (run | replay | merge | promote)",
        file=sys.stderr,
    )
    return 2


if __name__ == "__main__":
    sys.exit(main())
