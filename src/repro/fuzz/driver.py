"""Fuzz driver: one live RDDR deployment plus a persistent client.

:class:`FuzzDeployment` stands up a target's N=2 instance set behind a
real ``repro.deploy(...)`` proxy and pushes requests through it one at a
time.  The oracle channel is the deployment's own trace sink (rate 1.0,
see :meth:`FuzzTarget.config`): after each request the driver waits for
the exchange's exported trace and classifies it.

The client speaks whatever the target's protocol module speaks — the
module's ``read_server_message`` *is* "read one response unit", the same
framing the proxy itself uses, so the driver needs no per-protocol
client code.  Protocols with a ``handshake`` capability (pgwire) run it
on every (re)connect; the handshake itself flows through the proxy as an
exchange, so the driver absorbs its trace before fuzzing resumes.

Divergence halts the connection (``divergence_policy="block"``), so the
driver tears the client down after every divergent or errored exchange
and reconnects lazily before the next request.
"""

from __future__ import annotations

import asyncio

import repro
from repro.fuzz.oracle import DIVERGENT, ERROR, ExchangeOutcome, classify
from repro.fuzz.targets import FuzzTarget, get_target
from repro.protocols import get as get_protocol
from repro.transport.retry import open_connection_retry
from repro.transport.streams import close_writer

#: Poll period while waiting for the sink to export an exchange trace.
_POLL_S = 0.002


class FuzzDeployment:
    """A started target deployment with a lazily-(re)connected client."""

    def __init__(self, target: FuzzTarget | str, mode: str) -> None:
        self.target = get_target(target) if isinstance(target, str) else target
        self.mode = mode
        self.config = self.target.config(mode)
        self.protocol = get_protocol(self.config.protocol)
        self.observer = repro.Observer(trace_capacity=64)
        self.deployment: repro.RddrDeployment | None = None
        self.servers: list = []
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._state: object | None = None

    async def __aenter__(self) -> "FuzzDeployment":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    async def start(self) -> "FuzzDeployment":
        addresses, self.servers = await self.target.start_instances(self.mode)
        self.deployment = await repro.deploy(
            self.config,
            instances=addresses,
            observer=self.observer,
            name=f"fuzz-{self.target.name}-{self.mode}",
        )
        return self

    async def close(self) -> None:
        await self._drop_client()
        if self.deployment is not None:
            await self.deployment.close()
            self.deployment = None
        for server in self.servers:
            await server.close()
        self.servers = []

    # ------------------------------------------------------------ client

    async def _drop_client(self) -> None:
        if self._writer is not None:
            await close_writer(self._writer)
        self._reader = self._writer = self._state = None

    async def _ensure_client(self) -> None:
        if self._writer is not None:
            return
        assert self.deployment is not None
        host, port = self.deployment.address
        self._reader, self._writer = await open_connection_retry(host, port)
        if self.protocol.capabilities().handshake:
            # The handshake is an exchange through the proxy; absorb its
            # trace so it cannot be mistaken for the next mutant's.
            baseline = self.observer.sink.emitted
            self._state = await self.protocol.handshake(self._reader, self._writer)
            await self._wait_emitted(baseline, timeout=self.config.exchange_timeout + 1.0)
        else:
            self._state = self.protocol.new_connection_state()

    async def _wait_emitted(self, baseline: int, *, timeout: float) -> dict | None:
        """Wait for the sink to export a trace past ``baseline``."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while self.observer.sink.emitted <= baseline:
            if loop.time() >= deadline:
                return None
            await asyncio.sleep(_POLL_S)
        return self.observer.sink.last()

    async def _note_request(self, request: bytes) -> None:
        """Advance the client-side protocol state exactly the way the
        proxy's ingress does: replay the raw bytes through
        ``read_client_message`` on a memory stream.  HTTP, for one,
        needs this — response framing depends on the request method
        (HEAD responses carry Content-Length but no body), which the
        state tracks per pipelined request."""
        feed = asyncio.StreamReader()
        feed.feed_data(request)
        feed.feed_eof()
        try:
            await self.protocol.read_client_message(feed, self._state)
        except Exception:
            pass  # unparseable request: the proxy will reject it too

    # ----------------------------------------------------------- execute

    async def execute(self, request: bytes) -> ExchangeOutcome:
        """Send one request through the deployment; classify its trace."""
        timeout = self.config.exchange_timeout + 2.0
        try:
            await self._ensure_client()
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            await self._drop_client()
            return ExchangeOutcome(
                verdict="connect_failed",
                reason=repr(exc),
                fuzz_verdict=ERROR,
            )
        assert self._reader is not None and self._writer is not None
        baseline = self.observer.sink.emitted
        response: bytes | None = None
        try:
            await self._note_request(request)
            self._writer.write(request)
            await self._writer.drain()
            if self.protocol.expects_response(request, self._state):
                response = await asyncio.wait_for(
                    self.protocol.read_server_message(
                        self._reader, self._state, request
                    ),
                    timeout,
                )
                if self.protocol.capabilities().finish_exchange:
                    self.protocol.finish_exchange(self._state)
        except asyncio.CancelledError:
            raise
        except Exception:
            # The read failing (block response, torn connection...) is
            # not the verdict — the trace is.  Fall through to it.
            await self._drop_client()
        trace = await self._wait_emitted(baseline, timeout=timeout)
        if trace is None:
            await self._drop_client()
            return ExchangeOutcome(
                verdict="lost",
                reason="no exchange trace exported",
                fuzz_verdict=ERROR,
                response=response,
            )
        outcome = classify(trace)
        outcome.response = response
        if outcome.fuzz_verdict in (DIVERGENT, ERROR):
            # "block" policy halts the connection on divergence; errored
            # exchanges leave framing in an unknown state.  Reconnect.
            await self._drop_client()
        return outcome

    async def execute_all(self, requests: list[bytes]) -> list[ExchangeOutcome]:
        """Run a request sequence in order (the reproducer replay path)."""
        return [await self.execute(request) for request in requests]
