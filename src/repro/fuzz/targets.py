"""Fuzzable deployments: workload name → instances + seed corpus.

A :class:`FuzzTarget` knows how to stand up the N=2 instance set for
each oracle mode and supplies the seed requests mutation starts from.

* ``identical`` mode starts two byte-identical instances — the denoise
  oracle (any divergence is an RDDR comparison bug).
* ``diverse`` mode starts two *different* implementations or versions —
  the discovery oracle (divergences are new Table-I-style scenarios).

The diverse instance sets reuse the repo's in-tree diversity sources:
the section V-E ASLR echo pair, the KeyDB GET prefix-leak kvstore pair,
the postsim/roachsim vendor pair, the markdown library pair, and a
number-formatting JSON pair.
"""

from __future__ import annotations

import json

from repro.core.config import RddrConfig
from repro.core.variance import POSTGRES_VERSION_RULES, VarianceRule

Address = tuple[str, int]

#: Same masking a real version-diverse database deployment configures
#: (paper section V-C2): vendor banners differ deterministically and
#: would otherwise diverge on every exchange.
VENDOR_BANNER_RULES = [
    VarianceRule(
        pattern=r"(PostgreSQL|CockroachDB|EnterpriseDB)[^\x00\r\n]*",
        description="database vendor banner",
    ),
    *POSTGRES_VERSION_RULES,
]

#: Oracle mode names.
IDENTICAL = "identical"
DIVERSE = "diverse"
MODES = (IDENTICAL, DIVERSE)

#: Tiny deterministic pgbench-shaped fixture (the full
#: ``load_pgbench`` scale inserts 10k rows per instance — far too slow
#: for the fresh deployments triage minimization spins up).
_PG_FUZZ_SETUP = """
CREATE TABLE pgbench_branches (bid integer PRIMARY KEY, bbalance integer, filler text);
CREATE TABLE pgbench_accounts (aid integer PRIMARY KEY, bid integer, abalance integer, filler text);
INSERT INTO pgbench_branches VALUES (1, 0, 'x');
INSERT INTO pgbench_accounts VALUES (1, 1, 4500, 'x'), (2, 1, -120, 'x'),
    (3, 1, 0, 'x'), (4, 1, 77, 'x'), (5, 1, -4999, 'x'), (6, 1, 1024, 'x');
"""


class FuzzTarget:
    """One fuzzable workload: protocol, instance sets, seed requests."""

    name: str = "abstract"
    protocol: str = "tcp"

    def seed_requests(self) -> list[bytes]:
        raise NotImplementedError

    def benign_requests(self) -> list[bytes]:
        """The scenario framework's benign leg: requests that must NOT
        diverge even on the diverse pair.  Defaults to the seed set;
        targets whose seeds deliberately include a divergence trigger
        (to arm the mutation pool) override this to exclude it."""
        return self.seed_requests()

    async def start_instances(self, mode: str) -> tuple[list[Address], list]:
        """Start the N=2 instance set for ``mode``; returns
        ``(addresses, server handles)``."""
        raise NotImplementedError

    def config(self, mode: str) -> RddrConfig:
        """The deployment config fuzz runs use.

        ``filter_pair`` stays ``None`` in *both* modes: with N=2 a
        filter pair would mask every difference between the only two
        instances, making divergence structurally impossible.  Traces
        are never sampled out (rate 1.0) because the exported trace —
        verdict, denoise span, ``diff_signature`` — *is* the oracle
        channel.
        """
        return RddrConfig(
            protocol=self.protocol,
            filter_pair=None,
            exchange_timeout=2.0,
            trace_sample_rate=1.0,
        )


class EchoTarget(FuzzTarget):
    """Line echo over ``tcp``; diverse mode is the section V-E ASLR pair.

    Both diverse instances run the *same* vulnerable echo binary under
    ASLR — the paper's diversity-by-randomization deployment.  Only
    requests longer than the 64-byte buffer leak the per-instance
    pointer, so divergence is input-dependent (exactly what the grow
    mutation hunts for).
    """

    name = "echo"
    protocol = "tcp"

    def seed_requests(self) -> list[bytes]:
        return [
            b"hello world\n",
            b"echo fuzz c0 r0 abcd1234\n",
            b"ping\n",
        ]

    async def start_instances(self, mode: str) -> tuple[list[Address], list]:
        if mode == IDENTICAL:
            from repro.apps.echo import EchoServer

            servers = [
                await EchoServer(name=f"fuzz-echo-{i}").start() for i in range(2)
            ]
        else:
            from repro.apps.aslr.echo_vuln import VulnerableEchoServer

            servers = [
                await VulnerableEchoServer(name=f"fuzz-aslr-{i}", aslr=True).start()
                for i in range(2)
            ]
        return [server.address for server in servers], servers


class KvstoreTarget(FuzzTarget):
    """RESP kvstore; diverse mode pairs the reference cache with the
    KeyDB-like implementation carrying the version-gated GET prefix
    leak (missing ``tenant:<id>:<field>`` keys resolve to another
    tenant's entry)."""

    name = "kvstore"
    protocol = "resp"

    def seed_requests(self) -> list[bytes]:
        from repro.protocols.resp import encode_command

        return [
            encode_command("SET", "tenant:acme:name", "acme-corp"),
            encode_command("SET", "tenant:zenith:name", "zenith-ltd"),
            encode_command("GET", "tenant:acme:name"),
            encode_command("GET", "tenant:zenith:email"),
            encode_command("EXISTS", "tenant:acme:name"),
            encode_command("PING"),
        ]

    def benign_requests(self) -> list[bytes]:
        from repro.protocols.resp import encode_command

        # The missing-key GET in the seed set IS the KeyDB prefix-leak
        # trigger — great for arming the mutation pool, wrong for the
        # "benign traffic passes" leg of a promoted scenario's proof.
        return [
            request
            for request in self.seed_requests()
            if request != encode_command("GET", "tenant:zenith:email")
        ]

    async def start_instances(self, mode: str) -> tuple[list[Address], list]:
        from repro.apps.kvstore import KeyDbLikeServer, RedisLikeServer

        if mode == IDENTICAL:
            servers = [
                await RedisLikeServer(name=f"fuzz-kv-{i}").start() for i in range(2)
            ]
        else:
            servers = [
                await RedisLikeServer(name="fuzz-kv-ref").start(),
                await KeyDbLikeServer(name="fuzz-kv-keydb", version="6.0.0").start(),
            ]
        return [server.address for server in servers], servers


class PgbenchTarget(FuzzTarget):
    """pgwire databases; diverse mode pairs postsim with roachsim.

    The pair shares the SQL dialect but diverges on capability and
    configuration surface (UDF support, default transaction isolation)
    — mutation-reachable fingerprinting divergences.  Vendor version
    banners are masked by variance rules in both modes, mirroring how
    a real operator configures a version-diverse deployment (paper
    section V-C2); without them every exchange would trivially diverge
    on the banner and nothing else could be discovered.
    """

    name = "pgbench"
    protocol = "pgwire"

    def seed_requests(self) -> list[bytes]:
        from repro.pgwire import messages as wire

        statements = [
            "SELECT abalance FROM pgbench_accounts WHERE aid = 1",
            "SELECT abalance FROM pgbench_accounts WHERE aid = 4",
            "SELECT count(*) FROM pgbench_branches",
            "SELECT 1",
        ]
        return [wire.query_message(sql).encode() for sql in statements]

    async def start_instances(self, mode: str) -> tuple[list[Address], list]:
        from repro.pgwire import serve_database
        from repro.vendors import create_postsim, create_roachsim

        if mode == IDENTICAL:
            engines = [create_postsim("13.0"), create_postsim("13.0")]
        else:
            engines = [create_postsim("13.0"), create_roachsim("21.2.5")]
        servers = []
        for engine in engines:
            for outcome in engine.execute(_PG_FUZZ_SETUP):
                if outcome.error is not None:
                    raise outcome.error
            servers.append(await serve_database(engine))
        return [server.address for server in servers], servers

    def config(self, mode: str) -> RddrConfig:
        config = super().config(mode)
        config.variance_rules = list(VENDOR_BANNER_RULES)
        return config


class HttpTarget(FuzzTarget):
    """HTTP markdown-rendering API; diverse mode pairs the two markdown
    libraries (CVE-2020-11888 scheme-validation divergence)."""

    name = "http"
    protocol = "http"

    def seed_requests(self) -> list[bytes]:
        def post_render(markdown: str) -> bytes:
            body = json.dumps({"markdown": markdown}).encode()
            return (
                b"POST /render HTTP/1.1\r\n"
                b"Host: fuzz.local\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                b"\r\n" + body
            )

        return [
            post_render("# title\n\nplain *emphasis* text"),
            post_render("[link](https://example.com/page)"),
            b"GET /health HTTP/1.1\r\nHost: fuzz.local\r\n\r\n",
        ]

    async def start_instances(self, mode: str) -> tuple[list[Address], list]:
        from repro.apps.restful.libs.markdown_pair import Markdown2Like, MarkdownLike
        from repro.apps.restful.servers import make_markdown_server
        from repro.web.server import HttpServer

        if mode == IDENTICAL:
            libraries = [MarkdownLike(), MarkdownLike()]
        else:
            libraries = [Markdown2Like(), MarkdownLike()]
        servers = [
            HttpServer(make_markdown_server(library, name=f"fuzz-md-{i}"))
            for i, library in enumerate(libraries)
        ]
        for server in servers:
            await server.start()
        return [server.address for server in servers], servers


class JsonTarget(FuzzTarget):
    """JSON-lines calculator; diverse mode pairs the reference with the
    legacy-number-formatting variant (whole floats rendered as ints —
    divergent only on inputs whose arithmetic lands on a whole number)."""

    name = "json"
    protocol = "json"

    def seed_requests(self) -> list[bytes]:
        documents = [
            {"op": "sum", "values": [1, 2, 3]},
            {"op": "avg", "values": [2, 5]},
            {"op": "max", "values": [7, -3, 7]},
        ]
        return [
            json.dumps(doc, separators=(",", ":")).encode() + b"\n"
            for doc in documents
        ]

    async def start_instances(self, mode: str) -> tuple[list[Address], list]:
        from repro.apps.jsonsvc import JsonCalcServer

        legacy = (False, False) if mode == IDENTICAL else (False, True)
        servers = [
            await JsonCalcServer(
                name=f"fuzz-json-{i}", legacy_numbers=flag
            ).start()
            for i, flag in enumerate(legacy)
        ]
        return [server.address for server in servers], servers


TARGETS: dict[str, FuzzTarget] = {
    target.name: target
    for target in (
        EchoTarget(),
        KvstoreTarget(),
        PgbenchTarget(),
        HttpTarget(),
        JsonTarget(),
    )
}


def get_target(name: str) -> FuzzTarget:
    try:
        return TARGETS[name]
    except KeyError:
        known = ", ".join(sorted(TARGETS))
        raise KeyError(f"unknown fuzz target {name!r} (known: {known})") from None
