"""Replayable reproducer corpus under ``tests/fuzz_corpus/``.

A reproducer is a self-contained JSON file: the target workload, oracle
mode, the minimized request sequence (base64 — requests are raw protocol
bytes), and the verdict the deployment produced when it was minted.
Replaying one (``python -m repro.fuzz replay <file>``, or the tier-1
``test_fuzz_corpus_replay`` battery) stands the same deployment back up,
runs the sequence, and asserts the recorded verdict still holds.

Files carry **no timestamps or host state** and are named by content
(``<target>-<mode>-<signature>.json``), so re-running the campaign that
found them overwrites byte-identically — the determinism the acceptance
bar checks.
"""

from __future__ import annotations

import base64
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

#: Corpus schema version, bumped on incompatible format changes.
FORMAT = 1

#: The in-repo corpus replayed by tier-1 and grown by nightly CI.
CORPUS_DIR = Path(__file__).resolve().parents[3] / "tests" / "fuzz_corpus"


@dataclass
class Reproducer:
    """One minimized finding (or pinned exemplar) and how to replay it."""

    #: Fuzz target name (``repro.fuzz.targets.TARGETS`` key).
    target: str
    #: Oracle mode the finding was made in (``identical``/``diverse``).
    mode: str
    #: Expected fuzz verdict of the *final* request
    #: (``divergent``/``denoised``/``match``).
    verdict: str
    #: Request sequence; earlier requests are state setup, the last one
    #: triggers the verdict.
    requests: list[bytes]
    #: Diff-token dedup signature (divergent findings only).
    signature: str | None = None
    #: Position-insensitive cluster signature (divergent findings only):
    #: the root-cause identity cross-campaign merging dedups on.  Older
    #: corpus files lack it and load as ``None`` (merge falls back to
    #: the positional signature).
    cluster: str | None = None
    #: Proxy-supplied divergence reason when minted (informational —
    #: replay asserts the verdict and signature, not this string).
    reason: str | None = None
    #: Campaign seed that found it.
    seed: int = 0
    #: Free-form human note (what the finding means).
    comment: str = ""
    format: int = field(default=FORMAT)

    # -------------------------------------------------------- identity

    @property
    def slug(self) -> str:
        """Content-derived identity: the dedup signature, or a digest of
        the request bytes for signature-less (match/denoised) entries."""
        if self.signature:
            return self.signature
        digest = hashlib.sha256()
        digest.update(self.verdict.encode())
        for request in self.requests:
            digest.update(len(request).to_bytes(4, "big"))
            digest.update(request)
        return digest.hexdigest()[:16]

    @property
    def filename(self) -> str:
        return f"{self.target}-{self.mode}-{self.slug}.json"

    # ----------------------------------------------------------- (de)ser

    def to_dict(self) -> dict:
        data = {
            "format": self.format,
            "target": self.target,
            "mode": self.mode,
            "verdict": self.verdict,
            "signature": self.signature,
            "reason": self.reason,
            "seed": self.seed,
            "comment": self.comment,
            "requests_b64": [
                base64.b64encode(request).decode("ascii")
                for request in self.requests
            ],
        }
        # Only when set: pre-cluster corpus files re-mint byte-identically.
        if self.cluster is not None:
            data["cluster"] = self.cluster
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Reproducer":
        if data.get("format") != FORMAT:
            raise ValueError(
                f"unsupported corpus format {data.get('format')!r} "
                f"(this build reads format {FORMAT})"
            )
        return cls(
            target=data["target"],
            mode=data["mode"],
            verdict=data["verdict"],
            signature=data.get("signature"),
            cluster=data.get("cluster"),
            reason=data.get("reason"),
            seed=int(data.get("seed", 0)),
            comment=data.get("comment", ""),
            requests=[
                base64.b64decode(encoded) for encoded in data["requests_b64"]
            ],
        )

    def save(self, directory: Path | None = None) -> Path:
        directory = CORPUS_DIR if directory is None else directory
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / self.filename
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    @classmethod
    def load(cls, path: Path | str) -> "Reproducer":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls.from_dict(data)


def load_corpus(directory: Path | None = None) -> list[tuple[Path, Reproducer]]:
    """Every reproducer in ``directory`` (default: the in-repo corpus),
    sorted by filename for stable test parametrization."""
    directory = CORPUS_DIR if directory is None else directory
    if not directory.is_dir():
        return []
    return [
        (path, Reproducer.load(path))
        for path in sorted(directory.glob("*.json"))
    ]
