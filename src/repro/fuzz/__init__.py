"""repro.fuzz — seeded divergence fuzzing for RDDR deployments.

ROADMAP item 3: instead of hand-writing every Table-I scenario, use the
deployment's own divergence verdict as a fuzzing oracle (the approach
MicroFuzz validates for microservice fuzzing).  The engine mutates
protocol-valid requests through the contract-1.1 ``mutate`` hook and
feeds them through a real ``repro.deploy(...)`` in one of two modes:

* **identical** — N=2 byte-identical instances.  Any divergent verdict
  is a *false positive of the RDDR comparison itself* (a denoise or
  ephemeral-state gap): the oracle for regression-testing the pipeline.
* **diverse** — N=2 different implementations/versions.  Divergent
  verdicts are *discovered scenarios* in the Table-I sense, minted into
  replayable reproducers and promotable into the scenario registry.

Everything is seeded and deterministic: same ``(target, mode, seed,
budget)`` → byte-identical mutant stream, findings, and corpus files.

Entry points::

    python -m repro.fuzz run --workload kvstore --seed 7 --budget 300
    python -m repro.fuzz replay tests/fuzz_corpus/<file>.json
    python -m repro.fuzz replay --all

See ``docs/fuzzing.md`` for the full design.
"""

from __future__ import annotations

from repro.fuzz.corpus import CORPUS_DIR, Reproducer, load_corpus
from repro.fuzz.engine import CampaignConfig, CampaignReport, run_campaign
from repro.fuzz.oracle import ExchangeOutcome, is_finding
from repro.fuzz.replay import replay_reproducer
from repro.fuzz.targets import TARGETS, FuzzTarget

__all__ = [
    "CORPUS_DIR",
    "CampaignConfig",
    "CampaignReport",
    "ExchangeOutcome",
    "FuzzTarget",
    "Reproducer",
    "TARGETS",
    "is_finding",
    "load_corpus",
    "replay_reproducer",
    "run_campaign",
]
