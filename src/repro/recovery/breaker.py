"""Circuit breaker for the outgoing proxy's backend path.

A dead backend turns every connection group into a slow failure: each
group redials the backend, burns the full ``open_connection_retry``
budget, and only then tears down — so instances see seconds of stall per
request instead of an immediate error.  The :class:`CircuitBreaker`
converts that into fast failure: after ``failure_threshold`` consecutive
failures the circuit *opens* and further attempts are rejected without
touching the socket (``CircuitOpenError``); after ``reset_timeout``
seconds one *half-open* trial attempt is let through, and its outcome
decides whether the circuit closes again or re-opens for another
timeout period.

The breaker is deliberately transport-agnostic: anything with
``allow()`` / ``record_success()`` / ``record_failure()`` can be passed
to :func:`repro.transport.retry.open_connection_retry`.
"""

from __future__ import annotations

import time
from typing import Callable

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Numeric encoding for the ``rddr_circuit_state`` gauge.
STATE_VALUES = {CLOSED: 0.0, OPEN: 1.0, HALF_OPEN: 2.0}


class CircuitBreaker:
    """Classic closed → open → half-open breaker with an injectable clock."""

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[[str, str], None] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout < 0:
            raise ValueError("reset_timeout must be >= 0")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        #: Optional ``(old_state, new_state)`` hook; public so an owner
        #: (e.g. the outgoing proxy) can attach event logging after
        #: construction.
        self.on_transition = on_transition
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._trial_in_flight = False

    @property
    def state(self) -> str:
        return self._state

    def _transition(self, new: str) -> None:
        if new == self._state:
            return
        old, self._state = self._state, new
        if self.on_transition is not None:
            self.on_transition(old, new)

    # ------------------------------------------------------------- protocol

    def allow(self) -> bool:
        """Whether an attempt may proceed right now.

        In the open state, the first call after ``reset_timeout`` moves
        the breaker to half-open and admits exactly one trial; further
        calls are rejected until that trial reports its outcome.
        """
        if self._state == CLOSED:
            return True
        if self._state == OPEN:
            if self._clock() - self._opened_at < self.reset_timeout:
                return False
            self._transition(HALF_OPEN)
            self._trial_in_flight = True
            return True
        # Half-open: one trial at a time.
        if self._trial_in_flight:
            return False
        self._trial_in_flight = True
        return True

    def record_success(self) -> None:
        self._failures = 0
        self._trial_in_flight = False
        self._transition(CLOSED)

    def record_failure(self) -> None:
        self._trial_in_flight = False
        if self._state == HALF_OPEN:
            self._opened_at = self._clock()
            self._transition(OPEN)
            return
        self._failures += 1
        if self._failures >= self.failure_threshold:
            self._opened_at = self._clock()
            self._transition(OPEN)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CircuitBreaker {self._state} failures={self._failures}>"
