"""The instance directory: where proxies learn about recovered instances.

One :class:`InstanceDirectory` is shared between the
:class:`~repro.recovery.supervisor.RecoverySupervisor` (the only writer)
and the RDDR proxies (readers).  Each instance slot carries the address
the proxy should dial and a *mode*:

``live``
    A full voting member.
``shadow``
    A rejoining instance: the incoming proxy replicates requests to it
    and compares its responses, but its vote never influences the
    verdict and its failures never degrade the exchange.
``out``
    Quarantined/restarting: the proxy must not dial it at all.

Every mutation bumps ``version``; proxies snapshot the directory *between
exchanges* and re-dial only when the version moved, so an address swap is
atomic with respect to exchange processing — an exchange always runs
against one consistent view.

The reverse channel: proxies call :meth:`report_failure` when they drop
an instance (connect failure, mid-exchange death, or a divergence
vote-out with ``fatal=True``) and :meth:`report_shadow` with the outcome
of every shadow comparison.  The supervisor subscribes to both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

Address = tuple[str, int]

MODE_LIVE = "live"
MODE_SHADOW = "shadow"
MODE_OUT = "out"

_MODES = (MODE_LIVE, MODE_SHADOW, MODE_OUT)


@dataclass(frozen=True)
class DirectoryEntry:
    """One instance slot: where to dial it and how to treat it."""

    index: int
    address: Address
    mode: str


class InstanceDirectory:
    """Versioned instance table with failure/shadow report channels."""

    def __init__(self, addresses: list[Address]) -> None:
        self._entries = [
            DirectoryEntry(index=i, address=address, mode=MODE_LIVE)
            for i, address in enumerate(addresses)
        ]
        self._version = 0
        self._failure_listeners: list[Callable[[int, str, bool], None]] = []
        self._shadow_listeners: list[Callable[[int, bool], None]] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def version(self) -> int:
        return self._version

    def snapshot(self) -> tuple[int, list[DirectoryEntry]]:
        """A consistent ``(version, entries)`` view for one exchange."""
        return self._version, list(self._entries)

    def entry(self, index: int) -> DirectoryEntry:
        return self._entries[index]

    # ------------------------------------------------------------- writes

    def set_address(self, index: int, address: Address) -> None:
        entry = self._entries[index]
        if entry.address == address:
            return
        self._entries[index] = DirectoryEntry(
            index=index, address=address, mode=entry.mode
        )
        self._version += 1

    def set_mode(self, index: int, mode: str) -> None:
        if mode not in _MODES:
            raise ValueError(f"unknown directory mode {mode!r}")
        entry = self._entries[index]
        if entry.mode == mode:
            return
        self._entries[index] = DirectoryEntry(
            index=index, address=entry.address, mode=mode
        )
        self._version += 1

    # ------------------------------------------------------------ reports

    def on_failure(self, listener: Callable[[int, str, bool], None]) -> None:
        """Subscribe to proxy-reported instance failures."""
        self._failure_listeners.append(listener)

    def on_shadow(self, listener: Callable[[int, bool], None]) -> None:
        """Subscribe to shadow-comparison outcomes (``clean`` flag)."""
        self._shadow_listeners.append(listener)

    def report_failure(self, index: int, reason: str, *, fatal: bool = False) -> None:
        """A proxy dropped instance ``index``; ``fatal`` skips the
        suspicion ladder (e.g. a divergence vote-out of a live instance)."""
        for listener in self._failure_listeners:
            listener(index, reason, fatal)

    def report_shadow(self, index: int, clean: bool) -> None:
        """The outcome of one shadow comparison for a rejoining instance."""
        for listener in self._shadow_listeners:
            listener(index, clean)
