"""Admission control for the incoming proxy: bounded concurrency + shed.

Without a concurrency bound, overload degrades the worst possible way:
every client's exchange slows down together until all of them time out.
The :class:`AdmissionController` caps the number of exchanges in flight
(``max_concurrent``); up to ``queue_limit`` further exchanges wait their
turn in FIFO order, and anything beyond that is *shed* immediately — the
caller serves a fast-fail response instead of stalling, so the clients
that are admitted still see normal latency.

``max_concurrent=None`` disables admission control entirely (the
controller admits everything and keeps no state), which is the default
so existing deployments are untouched.
"""

from __future__ import annotations

import asyncio
from collections import deque


class AdmissionController:
    """FIFO slot manager: admit, queue within bounds, or shed."""

    def __init__(self, max_concurrent: int | None, queue_limit: int = 0) -> None:
        if max_concurrent is not None and max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1 (or None to disable)")
        if queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        self.max_concurrent = max_concurrent
        self.queue_limit = queue_limit
        self._active = 0
        self._waiters: deque[asyncio.Future[None]] = deque()

    @property
    def active(self) -> int:
        return self._active

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    async def acquire(self) -> bool:
        """Take an exchange slot; ``False`` means shed the exchange now."""
        if self.max_concurrent is None:
            return True
        if self._active < self.max_concurrent:
            self._active += 1
            return True
        if len(self._waiters) >= self.queue_limit:
            return False
        waiter: asyncio.Future[None] = asyncio.get_running_loop().create_future()
        self._waiters.append(waiter)
        try:
            await waiter
        except asyncio.CancelledError:
            if waiter in self._waiters:
                self._waiters.remove(waiter)
            elif waiter.done() and not waiter.cancelled():
                # The slot was handed to us in the same tick we were
                # cancelled; pass it on so it is not lost.
                self._release_slot()
            raise
        return True

    def release(self) -> None:
        """Return a slot, handing it to the oldest waiter if one exists."""
        if self.max_concurrent is None:
            return
        if self._active < 1:
            raise RuntimeError("release() without a matching acquire()")
        self._release_slot()

    def _release_slot(self) -> None:
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)  # the slot transfers; _active unchanged
                return
        self._active -= 1
