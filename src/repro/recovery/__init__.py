"""repro.recovery — self-healing instance lifecycle for RDDR deployments.

PR 2 made degradation graceful (``degraded_quorum`` keeps serving on a
surviving majority); this package makes it *reversible*, closing the loop
the ROADMAP's long-running-deployment goal needs:

* :class:`InstanceDirectory` — the versioned instance table proxies
  snapshot between exchanges, so address swaps and mode changes (live /
  shadow / out) are atomic with respect to exchange processing;
* :class:`HealthMonitor` — periodic TCP + protocol-level liveness probes;
* :class:`RecoverySupervisor` — the ``LIVE → SUSPECT → QUARANTINED →
  RESTARTING → CATCHING_UP → REJOINING → LIVE`` state machine: quarantine
  failing instances, respawn them through the orchestrator, catch them up
  from the durable exchange journal (when one is configured), and
  warm-rejoin them after K consecutive clean shadow exchanges; plus the
  ``LIVE → DRIFT_SUSPECT → REPAIRING → LIVE`` in-place repair path the
  anti-entropy sentinel (``repro.sentinel``) drives on silent drift;
* :class:`CircuitBreaker` — closed/open/half-open fast failure for the
  outgoing proxy's backend path;
* :class:`AdmissionController` — bounded exchange concurrency with
  fast-fail shedding on the incoming proxy.

See ``docs/robustness.md`` for the state machine, tuning knobs, and the
circuit-breaker / load-shedding semantics.
"""

from repro.recovery.admission import AdmissionController
from repro.recovery.breaker import CircuitBreaker
from repro.recovery.directory import (
    MODE_LIVE,
    MODE_OUT,
    MODE_SHADOW,
    DirectoryEntry,
    InstanceDirectory,
)
from repro.recovery.monitor import HealthMonitor
from repro.recovery.supervisor import (
    CATCHING_UP,
    DRIFT_SUSPECT,
    LIVE,
    QUARANTINED,
    REJOINING,
    REPAIRING,
    RESTARTING,
    STATES,
    SUSPECT,
    RecoverySupervisor,
)

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "DirectoryEntry",
    "HealthMonitor",
    "InstanceDirectory",
    "RecoverySupervisor",
    "LIVE",
    "SUSPECT",
    "QUARANTINED",
    "RESTARTING",
    "CATCHING_UP",
    "REJOINING",
    "DRIFT_SUSPECT",
    "REPAIRING",
    "STATES",
    "MODE_LIVE",
    "MODE_SHADOW",
    "MODE_OUT",
]
