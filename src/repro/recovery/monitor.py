"""Async health probing of instance endpoints.

The :class:`HealthMonitor` runs one background task that, every
``period`` seconds, probes the endpoints its ``targets`` callable
returns and awaits ``report(index, ok)`` for each result.  A probe is a
TCP connect bounded by ``timeout``; when the protocol module exposes a
``liveness_request()`` (optional protocol extension returning the bytes
of a harmless request), the probe additionally sends it and requires a
response within the same timeout, catching instances that accept
connections but no longer serve.

The monitor carries no instance state of its own — suspicion counting
and the LIVE → SUSPECT → QUARANTINED ladder live in the
:class:`~repro.recovery.supervisor.RecoverySupervisor`, which owns the
full state machine.  A custom ``probe`` coroutine can replace the
built-in one (e.g. an application-level health endpoint).
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Awaitable, Callable

from repro.protocols.base import ProtocolModule, capabilities_of
from repro.transport.streams import ConnectionClosed, close_writer, drain_write

Address = tuple[str, int]

#: ``await probe(reader, writer)`` on a fresh connection; return liveness.
ProbeFn = Callable[[asyncio.StreamReader, asyncio.StreamWriter], Awaitable[bool]]


class HealthMonitor:
    """Periodic per-instance liveness probes feeding a report callback."""

    def __init__(
        self,
        targets: Callable[[], list[tuple[int, Address]]],
        report: Callable[[int, bool], Awaitable[None]],
        *,
        period: float = 0.25,
        timeout: float = 1.0,
        protocol: ProtocolModule | None = None,
        probe: ProbeFn | None = None,
    ) -> None:
        if period <= 0:
            raise ValueError("period must be > 0")
        if timeout <= 0:
            raise ValueError("timeout must be > 0")
        self.targets = targets
        self.report = report
        self.period = period
        self.timeout = timeout
        self.protocol = protocol
        self.probe = probe
        self._task: asyncio.Task | None = None

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        if self._task is not None:
            raise RuntimeError("health monitor already started")
        self._task = asyncio.ensure_future(self._run())

    async def close(self) -> None:
        if self._task is None:
            return
        task, self._task = self._task, None
        task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await task

    # ------------------------------------------------------------- probing

    async def _run(self) -> None:
        while True:
            await asyncio.sleep(self.period)
            targets = self.targets()
            if not targets:
                continue
            results = await asyncio.gather(
                *(self.probe_once(address) for _, address in targets)
            )
            for (index, _), ok in zip(targets, results):
                await self.report(index, ok)

    async def probe_once(self, address: Address) -> bool:
        """One probe: TCP connect, then the protocol liveness check."""
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(*address), timeout=self.timeout
            )
        except (OSError, asyncio.TimeoutError):
            return False
        try:
            return await asyncio.wait_for(
                self._check(reader, writer), timeout=self.timeout
            )
        except (OSError, asyncio.TimeoutError, ConnectionError, ConnectionClosed):
            return False
        finally:
            await close_writer(writer)

    async def _check(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        if self.probe is not None:
            return bool(await self.probe(reader, writer))
        if not capabilities_of(self.protocol).liveness:
            return True  # a successful connect is the whole probe
        request = self.protocol.liveness_request()  # type: ignore[attr-defined]
        writer.write(request)
        await drain_write(writer)
        state = self.protocol.new_connection_state()
        response = await self.protocol.read_server_message(reader, state, request)
        return bool(response)
