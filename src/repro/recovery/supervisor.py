"""The recovery supervisor: closing the degradation loop.

PR 2's ``degraded_quorum`` keeps a deployment serving when instances die
or diverge, but degradation was one-way: a dropped instance never came
back, so redundancy bled away monotonically.  The
:class:`RecoverySupervisor` drives each instance through

::

    LIVE → SUSPECT → QUARANTINED → RESTARTING → REJOINING → LIVE

* **LIVE → SUSPECT** — a failed health probe (or a proxy-reported drop)
  raises suspicion; a clean probe clears it.
* **SUSPECT → QUARANTINED** — ``probe_failure_threshold`` consecutive
  failures, or a *fatal* proxy report (a divergence vote-out of a live
  instance), take the instance out of the directory so proxies stop
  dialing it.
* **QUARANTINED → RESTARTING** — the supervisor respawns the pod through
  :meth:`Cluster.restart_pod` (same factory, fresh port) and, when the
  deployment runs fault shims, re-interposes a fresh
  :class:`~repro.faults.FaultProxy` in front of the new pod.
* **RESTARTING → CATCHING_UP** — with a durable exchange journal
  configured (``journal_dir``), the fresh pod is first *caught up*: the
  latest app snapshot is restored and the journal tail of committed
  state-mutating exchanges is replayed through the published (possibly
  fault-shimmed) address, each replayed response verified against the
  journaled digest.  A failed catch-up counts as a failed restart and
  goes around the respawn loop.  Without a journal this state is
  skipped, preserving PR 3 behaviour byte-for-byte.
* **CATCHING_UP → REJOINING** — the new address is published in the
  :class:`~repro.recovery.directory.InstanceDirectory` in *shadow* mode:
  the incoming proxy replicates to the instance and compares its
  responses, but its vote cannot affect any verdict.  On idle services
  (``rejoin_probe_interval``) the supervisor drives synthetic probe
  exchanges through the incoming proxy so rejoin still progresses.
* **REJOINING → LIVE** — after ``rejoin_clean_exchanges`` consecutive
  clean, matching shadow exchanges the instance is promoted back to a
  full voting member (``rddr_recoveries_total``).

Two further states close the *silent drift* gap (``repro.sentinel``):

* **LIVE → DRIFT_SUSPECT** — the anti-entropy sentinel confirmed that
  this instance's chunked state digests diverge from the group majority
  even though it answers every probe and exchange.
* **DRIFT_SUSPECT → REPAIRING → LIVE** — :meth:`repair_drift` repairs
  the instance *in place*: it is pulled out of replication
  (``MODE_OUT``), the CATCHING_UP restore/replay machinery rebuilds its
  state from the journal at its *current* address (no pod restart), the
  commit gap is drained, and the instance returns to voting.  After
  ``sentinel_repair_budget`` failed repairs the sentinel escalates
  through :meth:`escalate_drift` into the ordinary quarantine → respawn
  loop above.

Every transition is recorded three ways: a ``recovery_state`` event in
the deployment's event log, a ``type: "recovery"`` record in the trace
sink (so the quarantine → rejoin timeline lines up with exchange
traces), and the ``rddr_live_instances`` / ``rddr_quarantined_instances``
gauges.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from typing import Callable

from repro.core import events as ev
from repro.core.config import RddrConfig
from repro.core.events import EventLog
from repro.faults import FaultProxy, FaultSchedule
from repro.journal import ExchangeJournal, replay_into
from repro.obs import Observer
from repro.protocols.base import capabilities_of, resolve
from repro.recovery.directory import (
    MODE_LIVE,
    MODE_OUT,
    MODE_SHADOW,
    InstanceDirectory,
)
from repro.recovery.monitor import HealthMonitor, ProbeFn
from repro.transport.streams import close_writer

#: The per-instance recovery states.
LIVE = "LIVE"
SUSPECT = "SUSPECT"
QUARANTINED = "QUARANTINED"
RESTARTING = "RESTARTING"
CATCHING_UP = "CATCHING_UP"
REJOINING = "REJOINING"
DRIFT_SUSPECT = "DRIFT_SUSPECT"
REPAIRING = "REPAIRING"

STATES = (
    LIVE,
    SUSPECT,
    QUARANTINED,
    RESTARTING,
    CATCHING_UP,
    REJOINING,
    DRIFT_SUSPECT,
    REPAIRING,
)

#: States the health monitor keeps probing (the rest have no live address).
#: DRIFT_SUSPECT instances still serve traffic, so they stay probed.
_PROBED = frozenset({LIVE, SUSPECT, REJOINING, DRIFT_SUSPECT})


class RecoverySupervisor:
    """Health-probes, quarantines, respawns, and warm-rejoins instances."""

    def __init__(
        self,
        cluster,
        deployment: str,
        directory: InstanceDirectory,
        config: RddrConfig,
        *,
        events: EventLog,
        observer: Observer,
        fault_schedule: FaultSchedule | None = None,
        shims: list[FaultProxy] | None = None,
        retired_shims: list[FaultProxy] | None = None,
        outgoing_proxies: list | None = None,
        probe: ProbeFn | None = None,
        journal: ExchangeJournal | None = None,
        proxy_address: Callable[[], tuple[str, int]] | None = None,
    ) -> None:
        self.cluster = cluster
        self.deployment = deployment
        self.directory = directory
        self.config = config
        self.events = events
        self.observer = observer
        self.fault_schedule = fault_schedule
        self.shims = shims if shims is not None else []
        self.retired_shims = retired_shims if retired_shims is not None else []
        self.outgoing_proxies = outgoing_proxies or []
        #: Durable exchange journal for CATCHING_UP (None = skip that state).
        self.journal = journal
        #: Zero-arg callable returning the incoming proxy's client-facing
        #: address, used to drive synthetic rejoin-probe exchanges.
        self.proxy_address = proxy_address
        self.states = [LIVE] * len(directory)
        self._fail_counts = [0] * len(directory)
        self._clean_counts = [0] * len(directory)
        self._last_shadow = [0.0] * len(directory)
        self._rejoin_events: dict[int, asyncio.Event] = {}
        self._recovery_tasks: dict[int, asyncio.Task] = {}
        self._protocol = resolve(config.protocol)
        self._closed = False
        self.monitor = HealthMonitor(
            self._probe_targets,
            self.probe_result,
            period=config.probe_period,
            timeout=config.probe_timeout,
            # Connect-only probing drops the in-band liveness request (a
            # monitor with no protocol probes by TCP connect alone).
            protocol=None if config.probe_connect_only else self._protocol,
            probe=probe,
        )
        directory.on_failure(self.instance_failed)
        directory.on_shadow(self.shadow_result)
        self._publish_gauges()

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> "RecoverySupervisor":
        self.monitor.start()
        return self

    async def close(self) -> None:
        """Stop probing and abandon in-flight restarts (before the proxies
        and pods go away, so a mid-restart close cannot dial the void)."""
        if self._closed:
            return
        self._closed = True
        await self.monitor.close()
        tasks = list(self._recovery_tasks.values())
        self._recovery_tasks.clear()
        for task in tasks:
            task.cancel()
        for task in tasks:
            with contextlib.suppress(asyncio.CancelledError):
                await task

    # ------------------------------------------------------------- queries

    def state(self, index: int) -> str:
        return self.states[index]

    @property
    def all_live(self) -> bool:
        return all(state == LIVE for state in self.states)

    def _probe_targets(self) -> list[tuple[int, tuple[str, int]]]:
        return [
            (index, self.directory.entry(index).address)
            for index, state in enumerate(self.states)
            if state in _PROBED
        ]

    # -------------------------------------------------------- transitions

    def _set_state(self, index: int, new: str, reason: str) -> None:
        old = self.states[index]
        if old == new:
            return
        self.states[index] = new
        self.events.record(
            ev.RECOVERY_STATE,
            f"instance {index}: {old} -> {new} ({reason})",
            proxy=self.deployment,
        )
        self.observer.record_recovery_transition(
            service=self.deployment,
            instance=index,
            old=old,
            new=new,
            reason=reason,
        )
        set_health = getattr(self.cluster, "set_pod_health", None)
        if set_health is not None:
            set_health(self.deployment, index, new)
        self._publish_gauges()

    def _publish_gauges(self) -> None:
        live = sum(1 for state in self.states if state == LIVE)
        quarantined = sum(
            1
            for state in self.states
            if state in (QUARANTINED, RESTARTING, CATCHING_UP, REPAIRING)
        )
        self.observer.set_instance_gauges(
            service=self.deployment, live=live, quarantined=quarantined
        )

    # ------------------------------------------------------------- reports

    async def probe_result(self, index: int, ok: bool) -> None:
        if self._closed:
            return
        state = self.states[index]
        if state not in _PROBED:
            return
        if ok:
            self._fail_counts[index] = 0
            if state == SUSPECT:
                self._set_state(index, LIVE, "probe recovered")
            return
        self._fail_counts[index] += 1
        if state == LIVE:
            self._set_state(index, SUSPECT, "probe failed")
        if self._fail_counts[index] >= self.config.probe_failure_threshold:
            self._quarantine(index, f"{self._fail_counts[index]} failed probes")

    def instance_failed(self, index: int, reason: str, fatal: bool) -> None:
        """A proxy dropped this instance mid-exchange or voted it out."""
        if self._closed or self.states[index] not in _PROBED:
            return
        if fatal:
            self._quarantine(index, reason)
            return
        self._fail_counts[index] += 1
        if self.states[index] == LIVE:
            self._set_state(index, SUSPECT, reason)
        if self._fail_counts[index] >= self.config.probe_failure_threshold:
            self._quarantine(index, reason)

    def shadow_result(self, index: int, clean: bool) -> None:
        """One shadow-comparison outcome for a REJOINING instance."""
        if self._closed or self.states[index] != REJOINING:
            return
        self._last_shadow[index] = time.monotonic()
        if clean:
            self._clean_counts[index] += 1
        else:
            self._clean_counts[index] = 0
        if self._clean_counts[index] >= self.config.rejoin_clean_exchanges:
            event = self._rejoin_events.get(index)
            if event is not None:
                event.set()

    # ------------------------------------------------------------ recovery

    def _quarantine(self, index: int, reason: str) -> None:
        self._fail_counts[index] = 0
        self._set_state(index, QUARANTINED, reason)
        self.directory.set_mode(index, MODE_OUT)
        rejoin = self._rejoin_events.get(index)
        if rejoin is not None:
            rejoin.set()  # wake a waiting _recover loop; it re-checks state
        if index not in self._recovery_tasks:
            self._recovery_tasks[index] = asyncio.ensure_future(
                self._recover(index)
            )

    async def _recover(self, index: int) -> None:
        """Respawn the pod and warm-rejoin it; loops if it dies again."""
        backoff = self.config.restart_backoff
        try:
            while not self._closed:
                self._set_state(index, RESTARTING, "respawning pod")
                try:
                    published = await self._respawn(index)
                except asyncio.CancelledError:
                    raise
                except Exception as error:
                    self.events.record(
                        ev.RECOVERY_STATE,
                        f"instance {index}: restart failed: {error}",
                        proxy=self.deployment,
                    )
                    await asyncio.sleep(backoff)
                    backoff = min(backoff * 2, 1.0)
                    continue
                backoff = self.config.restart_backoff
                for proxy in self.outgoing_proxies:
                    proxy.reset_instance(index)
                self.directory.set_address(index, published)
                caught_up_to = 0
                if self.journal is not None:
                    stats = await self._catch_up(index, published)
                    if stats is None:
                        await asyncio.sleep(backoff)
                        backoff = min(backoff * 2, 1.0)
                        continue
                    backoff = self.config.restart_backoff
                    caught_up_to = stats.last_id
                self._clean_counts[index] = 0
                self._fail_counts[index] = 0
                rejoined = self._rejoin_events[index] = asyncio.Event()
                self._last_shadow[index] = time.monotonic()
                self._set_state(index, REJOINING, "shadow comparison")
                self.directory.set_mode(index, MODE_SHADOW)
                prober = self._start_rejoin_prober(index)
                try:
                    await rejoined.wait()
                finally:
                    if prober is not None:
                        prober.cancel()
                        with contextlib.suppress(asyncio.CancelledError):
                            await prober
                if (
                    self.states[index] == REJOINING
                    and self._clean_counts[index]
                    >= self.config.rejoin_clean_exchanges
                ):
                    if self.journal is not None and not await self._drain_gap(
                        index, published, caught_up_to
                    ):
                        self.directory.set_mode(index, MODE_OUT)
                        await asyncio.sleep(backoff)
                        backoff = min(backoff * 2, 1.0)
                        continue
                    self._set_state(
                        index,
                        LIVE,
                        f"{self.config.rejoin_clean_exchanges} clean shadow "
                        "exchanges",
                    )
                    self.directory.set_mode(index, MODE_LIVE)
                    self.observer.recovery_completed(service=self.deployment)
                    return
                # Re-quarantined while rejoining: go around again.
        finally:
            self._rejoin_events.pop(index, None)
            self._recovery_tasks.pop(index, None)

    async def _catch_up(
        self, index: int, address: tuple[str, int], *, state: str = CATCHING_UP
    ):
        """CATCHING_UP: restore + replay the journal into the fresh pod.

        Runs while the instance is still ``out`` of the directory, so no
        client exchange replicates to it during the replay — but clients
        keep committing to the *journal*, so after the full replay the
        tail is re-checked and delta-replayed until it is stable across
        an event-loop tick.  Returns the merged
        :class:`~repro.journal.replay.CatchupStats`, or ``None`` (failed
        restart, go around the respawn loop) when the replay dies on a
        connect failure, lost connection, or response deadline.

        ``state`` is the recovery state the replay runs under:
        ``CATCHING_UP`` on the respawn path, ``REPAIRING`` when
        :meth:`repair_drift` reuses the machinery in place.
        """
        assert self.journal is not None
        self._set_state(
            index,
            state,
            f"replaying journal tail (last id {self.journal.last_id})",
        )
        try:
            stats = await replay_into(
                self.journal,
                address,
                self._protocol,
                deadline=self.config.instance_deadline(),
                connect_attempts=self.config.connect_attempts,
                verify=self.config.catchup_verify,
            )
            for _ in range(8):  # bounded: traffic can outrun the tail chase
                if self.journal.last_id <= stats.last_id:
                    # Let an exchange parked at its commit point land
                    # before declaring the tail stable.
                    await asyncio.sleep(0)
                    if self.journal.last_id <= stats.last_id:
                        break
                delta = await replay_into(
                    self.journal,
                    address,
                    self._protocol,
                    deadline=self.config.instance_deadline(),
                    connect_attempts=self.config.connect_attempts,
                    verify=self.config.catchup_verify,
                    after=stats.last_id,
                )
                stats.replayed += delta.replayed
                stats.mismatches += delta.mismatches
                stats.last_id = max(stats.last_id, delta.last_id)
        except asyncio.CancelledError:
            raise
        except Exception as error:
            self.events.record(
                ev.RECOVERY_STATE,
                f"instance {index}: catch-up failed: {error}",
                proxy=self.deployment,
            )
            self.observer.record_catchup(
                service=self.deployment,
                instance=index,
                epoch=0,
                replayed=0,
                mismatches=0,
                last_id=self.journal.last_id,
                restored=False,
                outcome=f"failed: {error}",
            )
            return None
        self.events.record(
            ev.RECOVERY_STATE,
            f"instance {index}: caught up ({stats.replayed} replayed from "
            f"epoch {stats.epoch}, {stats.mismatches} digest mismatches)",
            proxy=self.deployment,
        )
        self.observer.record_catchup(
            service=self.deployment,
            instance=index,
            epoch=stats.epoch,
            replayed=stats.replayed,
            mismatches=stats.mismatches,
            last_id=stats.last_id,
            restored=stats.restored,
        )
        return stats

    async def _drain_gap(
        self, index: int, address: tuple[str, int], anchor: int
    ) -> bool:
        """Replay the commit gap before promoting a rejoined instance.

        An exchange whose directory snapshot predates the shadow flip
        never replicated to this instance, yet can commit to the journal
        *after* catch-up declared the tail stable.  Those records sit in
        ``(anchor, tail]`` — replay them (unverified: the suffix double-
        applies exchanges that did replicate, which converges but can
        change responses) so the promoted instance holds every committed
        write.
        """
        assert self.journal is not None
        if self.journal.last_id <= anchor:
            return True
        try:
            stats = await replay_into(
                self.journal,
                address,
                self._protocol,
                deadline=self.config.instance_deadline(),
                connect_attempts=self.config.connect_attempts,
                verify=False,
                after=anchor,
            )
        except asyncio.CancelledError:
            raise
        except Exception as error:
            self.events.record(
                ev.RECOVERY_STATE,
                f"instance {index}: rejoin gap replay failed: {error}",
                proxy=self.deployment,
            )
            return False
        self.events.record(
            ev.RECOVERY_STATE,
            f"instance {index}: rejoin gap replayed "
            f"({stats.replayed} records after id {anchor})",
            proxy=self.deployment,
        )
        return True

    # ------------------------------------------------------- drift repair

    def drift_suspected(self, index: int, reason: str) -> None:
        """The sentinel confirmed this LIVE instance's state digests
        diverge from the group majority."""
        if self._closed or self.states[index] != LIVE:
            return
        self._set_state(index, DRIFT_SUSPECT, reason)

    def drift_cleared(self, index: int, reason: str) -> None:
        """A later audit found the instance back in agreement."""
        if self._closed or self.states[index] != DRIFT_SUSPECT:
            return
        self._set_state(index, LIVE, reason)

    async def repair_drift(self, index: int, *, reason: str) -> bool:
        """Repair a drifted instance *in place*: journal restore + tail
        replay at its current address, no pod restart.

        The instance is pulled out of replication (``MODE_OUT``) for the
        duration — the surviving quorum keeps serving — then the
        CATCHING_UP machinery rebuilds its state from the snapshot
        anchor and the journal tail, the commit gap is drained, and the
        instance returns to LIVE voting.  Returns ``False`` (leaving the
        instance DRIFT_SUSPECT and back in replication) when the replay
        fails; the sentinel escalates after ``sentinel_repair_budget``
        failures.
        """
        if (
            self._closed
            or self.journal is None
            or self.states[index] not in (LIVE, DRIFT_SUSPECT)
            or index in self._recovery_tasks
        ):
            return False
        address = self.directory.entry(index).address
        self._set_state(index, REPAIRING, reason)
        self.directory.set_mode(index, MODE_OUT)
        stats = await self._catch_up(index, address, state=REPAIRING)
        if self._closed or self.states[index] != REPAIRING:
            return False  # closed, or escalated/quarantined under us
        if stats is None or not await self._drain_gap(
            index, address, stats.last_id
        ):
            self.directory.set_mode(index, MODE_LIVE)
            self._set_state(index, DRIFT_SUSPECT, "in-place repair failed")
            return False
        self.directory.set_mode(index, MODE_LIVE)
        self._fail_counts[index] = 0
        self._set_state(index, LIVE, "drift repaired in place")
        return True

    def escalate_drift(self, index: int, reason: str) -> None:
        """Repairs exhausted the budget: fall back to the full
        quarantine → respawn → warm-rejoin loop."""
        if self._closed or self.states[index] not in (
            LIVE,
            DRIFT_SUSPECT,
            REPAIRING,
        ):
            return
        self._quarantine(index, reason)

    # -------------------------------------------------------- rejoin probes

    def _start_rejoin_prober(self, index: int) -> asyncio.Task | None:
        """On idle services, synthetic probe exchanges keep rejoin moving."""
        interval = self.config.rejoin_probe_interval
        if (
            interval is None
            or self.proxy_address is None
            or not capabilities_of(self._protocol).liveness
        ):
            return None
        return asyncio.ensure_future(self._drive_rejoin(index, interval))

    async def _drive_rejoin(self, index: int, interval: float) -> None:
        while not self._closed and self.states[index] == REJOINING:
            await asyncio.sleep(interval)
            if self._closed or self.states[index] != REJOINING:
                return
            if time.monotonic() - self._last_shadow[index] < interval:
                continue  # client traffic is already driving comparisons
            try:
                await self._probe_exchange()
            except asyncio.CancelledError:
                raise
            except Exception:
                continue  # chaos can flap the proxy dial; just retry

    async def _probe_exchange(self) -> None:
        """One synthetic liveness exchange through the incoming proxy —
        replicated to every instance, so the shadow gets compared."""
        assert self.proxy_address is not None
        reader, writer = await asyncio.open_connection(*self.proxy_address())
        try:
            state = await self._protocol.handshake(reader, writer)
            request = self._protocol.liveness_request()  # type: ignore[attr-defined]
            writer.write(request)
            await writer.drain()
            if self._protocol.expects_response(request, state):
                await asyncio.wait_for(
                    self._protocol.read_server_message(reader, state, request),
                    timeout=self.config.probe_timeout,
                )
        finally:
            await close_writer(writer)

    async def _respawn(self, index: int) -> tuple[str, int]:
        """Restart the pod (re-interposing any fault shim); returns the
        address proxies should dial."""
        pod = await self.cluster.restart_pod(self.deployment, index)
        if self.fault_schedule is None or index >= len(self.shims):
            return pod.address
        old = self.shims[index]
        shim = FaultProxy(
            pod.address,
            self.fault_schedule,
            instance=index,
            protocol=self.config.protocol,
            name=f"{self.deployment}-fault-{index}",
            observer=self.observer,
        )
        await shim.start()
        self.shims[index] = shim
        self.retired_shims.append(old)
        await old.close()
        return shim.address
