"""The recovery supervisor: closing the degradation loop.

PR 2's ``degraded_quorum`` keeps a deployment serving when instances die
or diverge, but degradation was one-way: a dropped instance never came
back, so redundancy bled away monotonically.  The
:class:`RecoverySupervisor` drives each instance through

::

    LIVE → SUSPECT → QUARANTINED → RESTARTING → REJOINING → LIVE

* **LIVE → SUSPECT** — a failed health probe (or a proxy-reported drop)
  raises suspicion; a clean probe clears it.
* **SUSPECT → QUARANTINED** — ``probe_failure_threshold`` consecutive
  failures, or a *fatal* proxy report (a divergence vote-out of a live
  instance), take the instance out of the directory so proxies stop
  dialing it.
* **QUARANTINED → RESTARTING** — the supervisor respawns the pod through
  :meth:`Cluster.restart_pod` (same factory, fresh port) and, when the
  deployment runs fault shims, re-interposes a fresh
  :class:`~repro.faults.FaultProxy` in front of the new pod.
* **RESTARTING → REJOINING** — the new address is published in the
  :class:`~repro.recovery.directory.InstanceDirectory` in *shadow* mode:
  the incoming proxy replicates to the instance and compares its
  responses, but its vote cannot affect any verdict.
* **REJOINING → LIVE** — after ``rejoin_clean_exchanges`` consecutive
  clean, matching shadow exchanges the instance is promoted back to a
  full voting member (``rddr_recoveries_total``).

Every transition is recorded three ways: a ``recovery_state`` event in
the deployment's event log, a ``type: "recovery"`` record in the trace
sink (so the quarantine → rejoin timeline lines up with exchange
traces), and the ``rddr_live_instances`` / ``rddr_quarantined_instances``
gauges.
"""

from __future__ import annotations

import asyncio
import contextlib

from repro.core import events as ev
from repro.core.config import RddrConfig
from repro.core.events import EventLog
from repro.faults import FaultProxy, FaultSchedule
from repro.obs import Observer
from repro.protocols.base import resolve
from repro.recovery.directory import (
    MODE_LIVE,
    MODE_OUT,
    MODE_SHADOW,
    InstanceDirectory,
)
from repro.recovery.monitor import HealthMonitor, ProbeFn

#: The per-instance recovery states.
LIVE = "LIVE"
SUSPECT = "SUSPECT"
QUARANTINED = "QUARANTINED"
RESTARTING = "RESTARTING"
REJOINING = "REJOINING"

STATES = (LIVE, SUSPECT, QUARANTINED, RESTARTING, REJOINING)

#: States the health monitor keeps probing (the rest have no live address).
_PROBED = frozenset({LIVE, SUSPECT, REJOINING})


class RecoverySupervisor:
    """Health-probes, quarantines, respawns, and warm-rejoins instances."""

    def __init__(
        self,
        cluster,
        deployment: str,
        directory: InstanceDirectory,
        config: RddrConfig,
        *,
        events: EventLog,
        observer: Observer,
        fault_schedule: FaultSchedule | None = None,
        shims: list[FaultProxy] | None = None,
        retired_shims: list[FaultProxy] | None = None,
        outgoing_proxies: list | None = None,
        probe: ProbeFn | None = None,
    ) -> None:
        self.cluster = cluster
        self.deployment = deployment
        self.directory = directory
        self.config = config
        self.events = events
        self.observer = observer
        self.fault_schedule = fault_schedule
        self.shims = shims if shims is not None else []
        self.retired_shims = retired_shims if retired_shims is not None else []
        self.outgoing_proxies = outgoing_proxies or []
        self.states = [LIVE] * len(directory)
        self._fail_counts = [0] * len(directory)
        self._clean_counts = [0] * len(directory)
        self._rejoin_events: dict[int, asyncio.Event] = {}
        self._recovery_tasks: dict[int, asyncio.Task] = {}
        self._closed = False
        self.monitor = HealthMonitor(
            self._probe_targets,
            self.probe_result,
            period=config.probe_period,
            timeout=config.probe_timeout,
            protocol=resolve(config.protocol),
            probe=probe,
        )
        directory.on_failure(self.instance_failed)
        directory.on_shadow(self.shadow_result)
        self._publish_gauges()

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> "RecoverySupervisor":
        self.monitor.start()
        return self

    async def close(self) -> None:
        """Stop probing and abandon in-flight restarts (before the proxies
        and pods go away, so a mid-restart close cannot dial the void)."""
        if self._closed:
            return
        self._closed = True
        await self.monitor.close()
        tasks = list(self._recovery_tasks.values())
        self._recovery_tasks.clear()
        for task in tasks:
            task.cancel()
        for task in tasks:
            with contextlib.suppress(asyncio.CancelledError):
                await task

    # ------------------------------------------------------------- queries

    def state(self, index: int) -> str:
        return self.states[index]

    @property
    def all_live(self) -> bool:
        return all(state == LIVE for state in self.states)

    def _probe_targets(self) -> list[tuple[int, tuple[str, int]]]:
        return [
            (index, self.directory.entry(index).address)
            for index, state in enumerate(self.states)
            if state in _PROBED
        ]

    # -------------------------------------------------------- transitions

    def _set_state(self, index: int, new: str, reason: str) -> None:
        old = self.states[index]
        if old == new:
            return
        self.states[index] = new
        self.events.record(
            ev.RECOVERY_STATE,
            f"instance {index}: {old} -> {new} ({reason})",
            proxy=self.deployment,
        )
        self.observer.record_recovery_transition(
            service=self.deployment,
            instance=index,
            old=old,
            new=new,
            reason=reason,
        )
        set_health = getattr(self.cluster, "set_pod_health", None)
        if set_health is not None:
            set_health(self.deployment, index, new)
        self._publish_gauges()

    def _publish_gauges(self) -> None:
        live = sum(1 for state in self.states if state == LIVE)
        quarantined = sum(
            1 for state in self.states if state in (QUARANTINED, RESTARTING)
        )
        self.observer.set_instance_gauges(
            service=self.deployment, live=live, quarantined=quarantined
        )

    # ------------------------------------------------------------- reports

    async def probe_result(self, index: int, ok: bool) -> None:
        if self._closed:
            return
        state = self.states[index]
        if state not in _PROBED:
            return
        if ok:
            self._fail_counts[index] = 0
            if state == SUSPECT:
                self._set_state(index, LIVE, "probe recovered")
            return
        self._fail_counts[index] += 1
        if state == LIVE:
            self._set_state(index, SUSPECT, "probe failed")
        if self._fail_counts[index] >= self.config.probe_failure_threshold:
            self._quarantine(index, f"{self._fail_counts[index]} failed probes")

    def instance_failed(self, index: int, reason: str, fatal: bool) -> None:
        """A proxy dropped this instance mid-exchange or voted it out."""
        if self._closed or self.states[index] not in _PROBED:
            return
        if fatal:
            self._quarantine(index, reason)
            return
        self._fail_counts[index] += 1
        if self.states[index] == LIVE:
            self._set_state(index, SUSPECT, reason)
        if self._fail_counts[index] >= self.config.probe_failure_threshold:
            self._quarantine(index, reason)

    def shadow_result(self, index: int, clean: bool) -> None:
        """One shadow-comparison outcome for a REJOINING instance."""
        if self._closed or self.states[index] != REJOINING:
            return
        if clean:
            self._clean_counts[index] += 1
        else:
            self._clean_counts[index] = 0
        if self._clean_counts[index] >= self.config.rejoin_clean_exchanges:
            event = self._rejoin_events.get(index)
            if event is not None:
                event.set()

    # ------------------------------------------------------------ recovery

    def _quarantine(self, index: int, reason: str) -> None:
        self._fail_counts[index] = 0
        self._set_state(index, QUARANTINED, reason)
        self.directory.set_mode(index, MODE_OUT)
        rejoin = self._rejoin_events.get(index)
        if rejoin is not None:
            rejoin.set()  # wake a waiting _recover loop; it re-checks state
        if index not in self._recovery_tasks:
            self._recovery_tasks[index] = asyncio.ensure_future(
                self._recover(index)
            )

    async def _recover(self, index: int) -> None:
        """Respawn the pod and warm-rejoin it; loops if it dies again."""
        backoff = self.config.restart_backoff
        try:
            while not self._closed:
                self._set_state(index, RESTARTING, "respawning pod")
                try:
                    published = await self._respawn(index)
                except asyncio.CancelledError:
                    raise
                except Exception as error:
                    self.events.record(
                        ev.RECOVERY_STATE,
                        f"instance {index}: restart failed: {error}",
                        proxy=self.deployment,
                    )
                    await asyncio.sleep(backoff)
                    backoff = min(backoff * 2, 1.0)
                    continue
                backoff = self.config.restart_backoff
                for proxy in self.outgoing_proxies:
                    proxy.reset_instance(index)
                self.directory.set_address(index, published)
                self._clean_counts[index] = 0
                self._fail_counts[index] = 0
                rejoined = self._rejoin_events[index] = asyncio.Event()
                self._set_state(index, REJOINING, "shadow comparison")
                self.directory.set_mode(index, MODE_SHADOW)
                await rejoined.wait()
                if (
                    self.states[index] == REJOINING
                    and self._clean_counts[index]
                    >= self.config.rejoin_clean_exchanges
                ):
                    self._set_state(
                        index,
                        LIVE,
                        f"{self.config.rejoin_clean_exchanges} clean shadow "
                        "exchanges",
                    )
                    self.directory.set_mode(index, MODE_LIVE)
                    self.observer.recovery_completed(service=self.deployment)
                    return
                # Re-quarantined while rejoining: go around again.
        finally:
            self._rejoin_events.pop(index, None)
            self._recovery_tasks.pop(index, None)

    async def _respawn(self, index: int) -> tuple[str, int]:
        """Restart the pod (re-interposing any fault shim); returns the
        address proxies should dial."""
        pod = await self.cluster.restart_pod(self.deployment, index)
        if self.fault_schedule is None or index >= len(self.shims):
            return pod.address
        old = self.shims[index]
        shim = FaultProxy(
            pod.address,
            self.fault_schedule,
            instance=index,
            protocol=self.config.protocol,
            name=f"{self.deployment}-fault-{index}",
            observer=self.observer,
        )
        await shim.start()
        self.shims[index] = shim
        self.retired_shims.append(old)
        await old.close()
        return shim.address
