"""Simulated-host resource accounting (substitution for AWS telemetry).

The paper measures CPU and memory of each deployment's process tree on a
32-vCPU / 128 GB AWS machine.  That telemetry is not reproducible off
the authors' testbed, so this module derives the same quantities from
*measured execution work*: every query the mini SQL engine runs accounts
work units (rows scanned, comparisons, function calls, bytes — see
:class:`repro.sqlengine.evaluator.WorkCounters`), and a
:class:`SimulatedHost` converts work into time, CPU utilisation, and
resident memory under a fixed-core model:

* ``time = max(longest per-client serial chain, total work / cores)`` —
  clients are serial, the host is work-conserving across cores;
* ``cpu utilisation = total work / (time * cores)``;
* ``memory = sum of instance resident bytes + per-connection buffers``.

The *shapes* the paper reports follow from the model: a 3-instance
deployment does ~3x the work and holds ~3x the bytes, but its CPU
*ratio* to the baseline falls as client parallelism saturates the same
fixed core budget for both deployments (Figure 4), and throughput knees
when demanded cores exceed the host's (Figures 5/6).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

#: Work units one core retires per second.  A calibration constant: its
#: absolute value cancels out of every normalized (RDDR / baseline)
#: metric the benches report.
WORK_UNITS_PER_CORE_SECOND = 2_000_000

#: Per-connection buffer bytes (matches PostgreSQL's order of magnitude).
CONNECTION_BYTES = 1_000_000


@dataclass(frozen=True)
class ExecutionEstimate:
    """Derived execution metrics for one run on the simulated host."""

    time_s: float
    cpu_utilization: float  # 0..1 of the whole host
    peak_memory_bytes: int

    @property
    def cpu_percent(self) -> float:
        return 100.0 * self.cpu_utilization


@dataclass
class SimulatedHost:
    """The evaluation machine: m5a.8xlarge (32 vCPU, 128 GB)."""

    cores: int = 32
    memory_bytes: int = 128 * 1024**3
    work_rate: int = WORK_UNITS_PER_CORE_SECOND

    def execute(
        self,
        total_work: int,
        client_chains: list[int],
        resident_bytes: int,
        connections: int,
    ) -> ExecutionEstimate:
        """Derive time/CPU/memory for a run.

        ``client_chains`` holds each closed-loop client's serial work —
        the critical path no amount of cores can shrink.
        """
        serial_floor = max(client_chains, default=0) / self.work_rate
        parallel_floor = total_work / (self.cores * self.work_rate)
        time_s = max(serial_floor, parallel_floor, 1e-9)
        utilization = min(1.0, total_work / (time_s * self.cores * self.work_rate))
        memory = resident_bytes + connections * CONNECTION_BYTES
        return ExecutionEstimate(
            time_s=time_s, cpu_utilization=utilization, peak_memory_bytes=memory
        )


@dataclass
class ResourceSample:
    """One time-bucket sample of a live deployment."""

    at_s: float
    cpu_percent: float
    memory_bytes: int


class WorkSampler:
    """Samples the work counters of live databases into a time series.

    Used by the Figure 6 bench: while a real asyncio pgbench run is in
    flight, the sampler polls each engine's cumulative work counters and
    converts per-bucket deltas to CPU% on the simulated host.
    """

    def __init__(
        self,
        databases: list,
        host: SimulatedHost,
        *,
        interval_s: float = 0.1,
        proxy_metrics=None,
        connections: int = 0,
    ) -> None:
        self.databases = databases
        self.host = host
        self.interval_s = interval_s
        self.proxy_metrics = proxy_metrics
        self.connections = connections
        self.samples: list[ResourceSample] = []
        self._task: asyncio.Task | None = None
        self._stop = asyncio.Event()

    def _total_work(self) -> int:
        total = sum(db.total_work.total_units() for db in self.databases)
        if self.proxy_metrics is not None:
            total += (
                self.proxy_metrics.bytes_from_clients
                + self.proxy_metrics.bytes_to_clients
            ) // 64
        return total

    def _resident_bytes(self) -> int:
        return (
            sum(db.resident_bytes() for db in self.databases)
            + self.connections * CONNECTION_BYTES
        )

    async def _run(self) -> None:
        started = time.perf_counter()
        last_work = self._total_work()
        while not self._stop.is_set():
            try:
                await asyncio.wait_for(self._stop.wait(), timeout=self.interval_s)
            except asyncio.TimeoutError:
                pass
            now = time.perf_counter() - started
            work = self._total_work()
            delta = work - last_work
            last_work = work
            cpu = 100.0 * delta / (self.interval_s * self.host.cores * self.host.work_rate)
            self.samples.append(
                ResourceSample(
                    at_s=now,
                    cpu_percent=min(100.0, cpu),
                    memory_bytes=self._resident_bytes(),
                )
            )

    def start(self) -> None:
        self._stop.clear()
        self._task = asyncio.ensure_future(self._run())

    async def stop(self) -> list[ResourceSample]:
        self._stop.set()
        if self._task is not None:
            await self._task
        return self.samples
