"""Concurrent client driver for the throughput/latency benchmarks.

Closed-loop clients, as in pgbench: each client runs its transactions
back to back on its own connection; throughput is completed transactions
over wall-clock time, latency is per-transaction.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from repro.analysis.stats import percentile
from repro.pgwire.client import PgClient

Address = tuple[str, int]


@dataclass
class RunResult:
    """One benchmark run's measurements."""

    clients: int
    transactions: int
    duration_s: float
    latencies_s: list[float] = field(default_factory=list)
    errors: int = 0

    @property
    def throughput_tps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.transactions / self.duration_s

    @property
    def mean_latency_ms(self) -> float:
        if not self.latencies_s:
            return 0.0
        return 1000 * sum(self.latencies_s) / len(self.latencies_s)

    def latency_percentile_ms(self, q: float) -> float:
        if not self.latencies_s:
            return 0.0
        return 1000 * percentile(self.latencies_s, q)


async def run_pg_clients(
    address: Address,
    streams: list[list[str]],
    *,
    user: str = "postgres",
) -> RunResult:
    """Run one closed-loop pgwire client per stream, concurrently."""
    latencies: list[float] = []
    errors = 0
    completed = 0

    async def client_loop(statements: list[str]) -> None:
        nonlocal errors, completed
        connection = await PgClient.connect(*address, user=user)
        try:
            for sql in statements:
                started = time.perf_counter()
                outcome = await connection.query(sql)
                latencies.append(time.perf_counter() - started)
                if outcome.error is not None:
                    errors += 1
                else:
                    completed += 1
        finally:
            await connection.close()

    started = time.perf_counter()
    await asyncio.gather(*(client_loop(stream) for stream in streams))
    duration = time.perf_counter() - started
    return RunResult(
        clients=len(streams),
        transactions=completed,
        duration_s=duration,
        latencies_s=latencies,
        errors=errors,
    )
