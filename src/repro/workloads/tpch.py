"""TPC-H workload: schema, deterministic data generator, and query set.

The paper's Figure 4 runs the 22 TPC-H queries (minus one that could not
execute in parallel, i.e. 21) against a scale-factor-10 PostgreSQL.  Here
the schema and column distributions follow the TPC-H specification; the
scale is laptop-sized (default SF 0.002) and the 21-query set is derived
from the TPC-H shapes expressible in the mini engine's dialect — the
eight canonical no-subquery queries (Q1, Q3, Q5, Q6, Q10, Q12, Q14, Q19)
instantiated with the specification's parameter-substitution variants to
fill out 21 entries.  EXPERIMENTS.md documents this substitution.
"""

from __future__ import annotations

import datetime

import numpy as np

from repro.sqlengine.database import Database

#: Rows per table at SF 1, from the TPC-H specification.
BASE_ROWS = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,
}

SCHEMA = """
CREATE TABLE region (r_regionkey integer PRIMARY KEY, r_name text, r_comment text);
CREATE TABLE nation (n_nationkey integer PRIMARY KEY, n_name text,
                     n_regionkey integer, n_comment text);
CREATE TABLE supplier (s_suppkey integer PRIMARY KEY, s_name text, s_address text,
                       s_nationkey integer, s_phone text, s_acctbal double precision,
                       s_comment text);
CREATE TABLE customer (c_custkey integer PRIMARY KEY, c_name text, c_address text,
                       c_nationkey integer, c_phone text, c_acctbal double precision,
                       c_mktsegment text, c_comment text);
CREATE TABLE part (p_partkey integer PRIMARY KEY, p_name text, p_mfgr text,
                   p_brand text, p_type text, p_size integer, p_container text,
                   p_retailprice double precision, p_comment text);
CREATE TABLE partsupp (ps_partkey integer, ps_suppkey integer,
                       ps_availqty integer, ps_supplycost double precision,
                       ps_comment text);
CREATE TABLE orders (o_orderkey integer PRIMARY KEY, o_custkey integer,
                     o_orderstatus text, o_totalprice double precision,
                     o_orderdate date, o_orderpriority text, o_clerk text,
                     o_shippriority integer, o_comment text);
CREATE TABLE lineitem (l_orderkey integer, l_partkey integer, l_suppkey integer,
                       l_linenumber integer, l_quantity double precision,
                       l_extendedprice double precision, l_discount double precision,
                       l_tax double precision, l_returnflag text, l_linestatus text,
                       l_shipdate date, l_commitdate date, l_receiptdate date,
                       l_shipinstruct text, l_shipmode text, l_comment text);
"""

_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
_SHIPMODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
_SHIPINSTRUCT = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]
_BRANDS = [f"Brand#{m}{n}" for m in range(1, 6) for n in range(1, 6)]
_TYPES = [
    f"{a} {b} {c}"
    for a in ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
    for b in ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED")
    for c in ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")
]
_CONTAINERS = [
    f"{a} {b}"
    for a in ("SM", "MED", "LG", "JUMBO", "WRAP")
    for b in ("CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM")
]

_START = datetime.date(1992, 1, 1).toordinal()
_END = datetime.date(1998, 8, 2).toordinal()


def row_counts(scale_factor: float) -> dict[str, int]:
    """Table sizes at ``scale_factor`` (fixed tables stay fixed)."""
    counts = {}
    for table, base in BASE_ROWS.items():
        if table in ("region", "nation"):
            counts[table] = base
        else:
            counts[table] = max(1, int(base * scale_factor))
    return counts


def load_tpch(database: Database, scale_factor: float = 0.002, seed: int = 7) -> dict[str, int]:
    """Create the schema and deterministically populate ``database``.

    Rows are loaded through the storage API (not INSERT statements) for
    speed; values follow the TPC-H column domains.
    """
    for outcome in database.execute(SCHEMA):
        if outcome.error is not None:
            raise outcome.error
    rng = np.random.default_rng(seed)
    counts = row_counts(scale_factor)

    region = database.catalog.table("region")
    for key, name in enumerate(_REGIONS):
        region.insert([key, name, f"region {name.lower()}"])

    nation = database.catalog.table("nation")
    for key, (name, regionkey) in enumerate(_NATIONS):
        nation.insert([key, name, regionkey, f"nation {name.lower()}"])

    supplier = database.catalog.table("supplier")
    for key in range(1, counts["supplier"] + 1):
        supplier.insert(
            [
                key,
                f"Supplier#{key:09d}",
                f"addr-{key}",
                int(rng.integers(0, 25)),
                f"{rng.integers(10, 35)}-555-{key % 10000:04d}",
                float(np.round(rng.uniform(-999.99, 9999.99), 2)),
                "supplier comment",
            ]
        )

    customer = database.catalog.table("customer")
    for key in range(1, counts["customer"] + 1):
        customer.insert(
            [
                key,
                f"Customer#{key:09d}",
                f"addr-{key}",
                int(rng.integers(0, 25)),
                f"{rng.integers(10, 35)}-555-{key % 10000:04d}",
                float(np.round(rng.uniform(-999.99, 9999.99), 2)),
                _SEGMENTS[int(rng.integers(0, len(_SEGMENTS)))],
                "customer comment",
            ]
        )

    part = database.catalog.table("part")
    for key in range(1, counts["part"] + 1):
        part.insert(
            [
                key,
                f"part {key} goldenrod",
                f"Manufacturer#{key % 5 + 1}",
                _BRANDS[int(rng.integers(0, len(_BRANDS)))],
                _TYPES[int(rng.integers(0, len(_TYPES)))],
                int(rng.integers(1, 51)),
                _CONTAINERS[int(rng.integers(0, len(_CONTAINERS)))],
                float(np.round(900 + (key % 1000) * 0.1, 2)),
                "part comment",
            ]
        )

    partsupp = database.catalog.table("partsupp")
    suppliers = counts["supplier"]
    for key in range(1, counts["partsupp"] + 1):
        partkey = (key - 1) % counts["part"] + 1
        partsupp.insert(
            [
                partkey,
                int(rng.integers(1, suppliers + 1)),
                int(rng.integers(1, 10000)),
                float(np.round(rng.uniform(1.0, 1000.0), 2)),
                "partsupp comment",
            ]
        )

    orders = database.catalog.table("orders")
    lineitem = database.catalog.table("lineitem")
    customers = counts["customer"]
    parts = counts["part"]
    order_dates: dict[int, datetime.date] = {}
    for key in range(1, counts["orders"] + 1):
        orderdate = datetime.date.fromordinal(int(rng.integers(_START, _END - 151)))
        order_dates[key] = orderdate
        orders.insert(
            [
                key,
                int(rng.integers(1, customers + 1)),
                str(rng.choice(["O", "F", "P"])),
                float(np.round(rng.uniform(1000.0, 400000.0), 2)),
                orderdate,
                _PRIORITIES[int(rng.integers(0, len(_PRIORITIES)))],
                f"Clerk#{int(rng.integers(1, 1000)):09d}",
                0,
                "order comment",
            ]
        )
    lines_per_order = max(1, counts["lineitem"] // max(counts["orders"], 1))
    linenumber_counter = 0
    for orderkey in range(1, counts["orders"] + 1):
        orderdate = order_dates[orderkey]
        for line in range(1, lines_per_order + 1):
            linenumber_counter += 1
            if linenumber_counter > counts["lineitem"]:
                break
            shipdate = orderdate + datetime.timedelta(days=int(rng.integers(1, 122)))
            commitdate = orderdate + datetime.timedelta(days=int(rng.integers(30, 91)))
            receiptdate = shipdate + datetime.timedelta(days=int(rng.integers(1, 31)))
            quantity = float(rng.integers(1, 51))
            price = float(np.round(rng.uniform(901.0, 104949.5), 2))
            lineitem.insert(
                [
                    orderkey,
                    int(rng.integers(1, parts + 1)),
                    int(rng.integers(1, suppliers + 1)),
                    line,
                    quantity,
                    price,
                    float(np.round(rng.uniform(0.0, 0.10), 2)),
                    float(np.round(rng.uniform(0.0, 0.08), 2)),
                    str(rng.choice(["R", "A", "N"])),
                    str(rng.choice(["O", "F"])),
                    shipdate,
                    commitdate,
                    receiptdate,
                    _SHIPINSTRUCT[int(rng.integers(0, len(_SHIPINSTRUCT)))],
                    _SHIPMODES[int(rng.integers(0, len(_SHIPMODES)))],
                    "lineitem comment",
                ]
            )
    return counts


# ---------------------------------------------------------------------------
# Query set


def q1(delta: int = 90) -> str:
    return f"""
SELECT l_returnflag, l_linestatus,
       sum(l_quantity) AS sum_qty,
       sum(l_extendedprice) AS sum_base_price,
       sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       avg(l_quantity) AS avg_qty,
       avg(l_extendedprice) AS avg_price,
       avg(l_discount) AS avg_disc,
       count(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '{delta} day'
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus
"""


def q3(segment: str = "BUILDING", day: str = "1995-03-15") -> str:
    return f"""
SELECT l_orderkey,
       sum(l_extendedprice * (1 - l_discount)) AS revenue,
       o_orderdate, o_shippriority
FROM customer, orders, lineitem
WHERE c_mktsegment = '{segment}'
  AND c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate < DATE '{day}'
  AND l_shipdate > DATE '{day}'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate
LIMIT 10
"""


def q5(region: str = "ASIA", start: str = "1994-01-01") -> str:
    return f"""
SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem, supplier, nation, region
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND l_suppkey = s_suppkey
  AND c_nationkey = s_nationkey
  AND s_nationkey = n_nationkey
  AND n_regionkey = r_regionkey
  AND r_name = '{region}'
  AND o_orderdate >= DATE '{start}'
  AND o_orderdate < DATE '{start}' + INTERVAL '1 year'
GROUP BY n_name
ORDER BY revenue DESC
"""


def q6(start: str = "1994-01-01", discount: float = 0.06, quantity: int = 24) -> str:
    return f"""
SELECT sum(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '{start}'
  AND l_shipdate < DATE '{start}' + INTERVAL '1 year'
  AND l_discount BETWEEN {discount - 0.01:.2f} AND {discount + 0.01:.2f}
  AND l_quantity < {quantity}
"""


def q10(start: str = "1993-10-01") -> str:
    return f"""
SELECT c_custkey, c_name,
       sum(l_extendedprice * (1 - l_discount)) AS revenue,
       c_acctbal, n_name, c_address, c_phone
FROM customer, orders, lineitem, nation
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate >= DATE '{start}'
  AND o_orderdate < DATE '{start}' + INTERVAL '3 month'
  AND l_returnflag = 'R'
  AND c_nationkey = n_nationkey
GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address
ORDER BY revenue DESC
LIMIT 20
"""


def q12(mode1: str = "MAIL", mode2: str = "SHIP", start: str = "1994-01-01") -> str:
    return f"""
SELECT l_shipmode,
       sum(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH'
                THEN 1 ELSE 0 END) AS high_line_count,
       sum(CASE WHEN o_orderpriority <> '1-URGENT' AND o_orderpriority <> '2-HIGH'
                THEN 1 ELSE 0 END) AS low_line_count
FROM orders, lineitem
WHERE o_orderkey = l_orderkey
  AND l_shipmode IN ('{mode1}', '{mode2}')
  AND l_commitdate < l_receiptdate
  AND l_shipdate < l_commitdate
  AND l_receiptdate >= DATE '{start}'
  AND l_receiptdate < DATE '{start}' + INTERVAL '1 year'
GROUP BY l_shipmode
ORDER BY l_shipmode
"""


def q14(start: str = "1995-09-01") -> str:
    return f"""
SELECT 100.00 * sum(CASE WHEN p_type LIKE 'PROMO%'
                         THEN l_extendedprice * (1 - l_discount)
                         ELSE 0 END) / sum(l_extendedprice * (1 - l_discount))
       AS promo_revenue
FROM lineitem, part
WHERE l_partkey = p_partkey
  AND l_shipdate >= DATE '{start}'
  AND l_shipdate < DATE '{start}' + INTERVAL '1 month'
"""


def q4(start: str = "1993-07-01") -> str:
    """Q4 in its standard decorrelated (semi-join) form: ``EXISTS`` over
    lineitem becomes ``IN`` over the late-lineitem order keys, which the
    engine answers with a hashed membership set."""
    return f"""
SELECT o_orderpriority, count(*) AS order_count
FROM orders
WHERE o_orderdate >= DATE '{start}'
  AND o_orderdate < DATE '{start}' + INTERVAL '3 month'
  AND o_orderkey IN (
      SELECT l_orderkey FROM lineitem WHERE l_commitdate < l_receiptdate
  )
GROUP BY o_orderpriority
ORDER BY o_orderpriority
"""


def q17(brand: str = "Brand#23", container: str = "MED BOX") -> str:
    return f"""
SELECT sum(l_extendedprice) / 7.0 AS avg_yearly
FROM lineitem, part
WHERE p_partkey = l_partkey
  AND p_brand = '{brand}'
  AND p_container = '{container}'
  AND l_quantity < (
      SELECT 0.2 * avg(l_quantity) FROM lineitem
      WHERE l_partkey = p_partkey
  )
"""


def q18(quantity: int = 150) -> str:
    return f"""
SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice,
       sum(l_quantity)
FROM customer, orders, lineitem
WHERE o_orderkey IN (
      SELECT l_orderkey FROM lineitem
      GROUP BY l_orderkey HAVING sum(l_quantity) > {quantity}
  )
  AND c_custkey = o_custkey
  AND o_orderkey = l_orderkey
GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
ORDER BY o_totalprice DESC, o_orderdate
LIMIT 100
"""


def q22(balance: float = 0.0) -> str:
    """A Q22-shaped query: customers above the average balance who have
    never ordered (scalar subquery + NOT EXISTS)."""
    return f"""
SELECT count(*) AS numcust, sum(c_acctbal) AS totacctbal
FROM customer
WHERE c_acctbal > (
      SELECT avg(c_acctbal) FROM customer WHERE c_acctbal > {balance}
  )
  AND NOT EXISTS (
      SELECT 1 FROM orders WHERE o_custkey = c_custkey
  )
"""


def q19(brand: str = "Brand#12", quantity: int = 1) -> str:
    return f"""
SELECT sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM lineitem, part
WHERE p_partkey = l_partkey
  AND p_brand = '{brand}'
  AND l_quantity >= {quantity} AND l_quantity <= {quantity + 10}
  AND p_size BETWEEN 1 AND 15
  AND l_shipmode IN ('AIR', 'REG AIR')
  AND l_shipinstruct = 'DELIVER IN PERSON'
"""


def query_set() -> list[tuple[str, str]]:
    """The 21 named queries of the Figure 4 run."""
    queries: list[tuple[str, str]] = [
        ("Q1", q1()),
        ("Q1b", q1(delta=60)),
        ("Q3", q3()),
        ("Q3b", q3(segment="MACHINERY", day="1995-03-22")),
        ("Q4", q4()),
        ("Q4b", q4(start="1994-01-01")),
        ("Q5", q5()),
        ("Q5b", q5(region="EUROPE", start="1995-01-01")),
        ("Q6", q6()),
        ("Q6b", q6(start="1995-01-01", discount=0.05, quantity=30)),
        ("Q10", q10()),
        ("Q10b", q10(start="1994-01-01")),
        ("Q12", q12()),
        ("Q12b", q12(mode1="RAIL", mode2="TRUCK", start="1995-01-01")),
        ("Q14", q14()),
        ("Q14b", q14(start="1994-03-01")),
        ("Q17", q17()),
        ("Q18", q18()),
        ("Q19", q19()),
        ("Q19b", q19(brand="Brand#23", quantity=10)),
        ("Q22", q22()),
    ]
    assert len(queries) == 21
    return queries
