"""Benchmark workloads: TPC-H, pgbench, client drivers, resource model."""

from repro.workloads.clients import RunResult, run_pg_clients
from repro.workloads.pgbench import load_pgbench, select_transaction, transaction_stream
from repro.workloads.resources import (
    ExecutionEstimate,
    ResourceSample,
    SimulatedHost,
    WorkSampler,
)
from repro.workloads.tpch import load_tpch, query_set, row_counts

__all__ = [
    "RunResult",
    "run_pg_clients",
    "load_pgbench",
    "select_transaction",
    "transaction_stream",
    "ExecutionEstimate",
    "ResourceSample",
    "SimulatedHost",
    "WorkSampler",
    "load_tpch",
    "query_set",
    "row_counts",
]
