"""pgbench workload: schema, loader, and the SELECT transaction mix.

The paper's Figure 5/6 runs ``pgbench`` in SELECT-only mode against a
scale-factor-100 database (10,001,100 rows) with 10,000 transactions per
client.  The schema and the transaction (one indexed point SELECT on
``pgbench_accounts``) are the real pgbench ones; scale and transaction
counts are laptop-sized and documented per bench in EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np

from repro.sqlengine.database import Database

#: pgbench row multipliers per unit of scale factor (real pgbench uses
#: 100,000 accounts per scale unit; we use 10,000 to keep the in-memory
#: engine laptop-sized — a x10 downscale applied uniformly).
ACCOUNTS_PER_SCALE = 10_000
TELLERS_PER_SCALE = 10
BRANCHES_PER_SCALE = 1

SCHEMA = """
CREATE TABLE pgbench_branches (bid integer PRIMARY KEY, bbalance integer, filler text);
CREATE TABLE pgbench_tellers (tid integer PRIMARY KEY, bid integer,
                              tbalance integer, filler text);
CREATE TABLE pgbench_accounts (aid integer PRIMARY KEY, bid integer,
                               abalance integer, filler text);
CREATE TABLE pgbench_history (tid integer, bid integer, aid integer,
                              delta integer, mtime text, filler text);
"""


def load_pgbench(database: Database, scale: int = 10, seed: int = 11) -> dict[str, int]:
    """Create and populate the pgbench schema at ``scale``."""
    for outcome in database.execute(SCHEMA):
        if outcome.error is not None:
            raise outcome.error
    rng = np.random.default_rng(seed)
    filler = "x" * 84  # pgbench pads rows to fixed width

    branches = database.catalog.table("pgbench_branches")
    for bid in range(1, scale * BRANCHES_PER_SCALE + 1):
        branches.insert([bid, 0, filler])

    tellers = database.catalog.table("pgbench_tellers")
    for tid in range(1, scale * TELLERS_PER_SCALE + 1):
        tellers.insert([tid, (tid - 1) // TELLERS_PER_SCALE + 1, 0, filler])

    accounts = database.catalog.table("pgbench_accounts")
    n_accounts = scale * ACCOUNTS_PER_SCALE
    balances = rng.integers(-5000, 5000, size=n_accounts)
    for aid in range(1, n_accounts + 1):
        accounts.insert(
            [aid, (aid - 1) // ACCOUNTS_PER_SCALE + 1, int(balances[aid - 1]), filler]
        )
    return {
        "pgbench_branches": scale * BRANCHES_PER_SCALE,
        "pgbench_tellers": scale * TELLERS_PER_SCALE,
        "pgbench_accounts": n_accounts,
        "pgbench_history": 0,
    }


def select_transaction(aid: int) -> str:
    """The pgbench -S (SELECT-only) transaction."""
    return f"SELECT abalance FROM pgbench_accounts WHERE aid = {aid};"


def transaction_stream(
    n_transactions: int, scale: int, seed: int
) -> list[str]:
    """A deterministic per-client stream of SELECT transactions."""
    rng = np.random.default_rng(seed)
    n_accounts = scale * ACCOUNTS_PER_SCALE
    aids = rng.integers(1, n_accounts + 1, size=n_transactions)
    return [select_transaction(int(aid)) for aid in aids]
