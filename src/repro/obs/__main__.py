"""CLI: summarize a trace JSONL into a per-stage latency table.

::

    python -m repro.obs TRACES.jsonl [--proxy NAME] [--top 3]
    python -m repro.obs tree TRACES.jsonl [MORE.jsonl ...]

Reads trace records (one JSON object per line, as written by a
:class:`repro.obs.TraceSink` stream or exported via ``sink.jsonl()``),
skips non-trace records (recovery/catch-up timeline entries), and prints
verdict counts plus per-stage count/mean/p50/p95/p99/max latencies.
Unlike the live ``rddr_stage_seconds`` histogram, percentiles here are
exact — computed from the raw span durations in the file.

The ``tree`` subcommand instead stitches execution-indexed records
(traces and journal commits, from any number of hops' files) into
multi-hop call trees — one block per root exchange (see
:mod:`repro.graph.stitch`).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.stats import percentile


def _walk(span: dict):
    yield span
    for child in span.get("children", ()):
        yield from _walk(child)


def summarize(lines, *, proxy: str | None = None) -> dict:
    """Aggregate trace JSONL lines into verdict counts and per-stage
    duration lists; malformed or non-trace lines are counted, not fatal."""
    verdicts: dict[str, int] = {}
    stages: dict[str, list[float]] = {}
    slowest: dict[str, tuple[float, str]] = {}
    traces = skipped = 0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            skipped += 1
            continue
        if not isinstance(record, dict) or "spans" not in record:
            skipped += 1
            continue
        if proxy is not None and record.get("proxy") != proxy:
            skipped += 1
            continue
        traces += 1
        verdict = record.get("verdict", "unknown")
        verdicts[verdict] = verdicts.get(verdict, 0) + 1
        exchange_id = record.get("exchange_id", "?")
        for span in _walk(record["spans"]):
            name = span.get("name", "?")
            duration = float(span.get("duration_s", 0.0))
            stages.setdefault(name, []).append(duration)
            if name not in slowest or duration > slowest[name][0]:
                slowest[name] = (duration, exchange_id)
    return {
        "traces": traces,
        "skipped": skipped,
        "verdicts": dict(sorted(verdicts.items())),
        "stages": {
            name: {
                "count": len(durations),
                "mean_ms": 1000 * sum(durations) / len(durations),
                "p50_ms": 1000 * percentile(durations, 50),
                "p95_ms": 1000 * percentile(durations, 95),
                "p99_ms": 1000 * percentile(durations, 99),
                "max_ms": 1000 * max(durations),
                "slowest_exchange": slowest[name][1],
            }
            for name, durations in sorted(stages.items())
        },
    }


def render(summary: dict) -> str:
    out = [
        f"traces: {summary['traces']}  (skipped {summary['skipped']} "
        "non-trace/filtered lines)"
    ]
    out.append(
        "verdicts: "
        + (
            ", ".join(f"{k}={v}" for k, v in summary["verdicts"].items())
            or "(none)"
        )
    )
    header = (
        f"{'stage':<12} {'count':>6} {'mean':>9} {'p50':>9} "
        f"{'p95':>9} {'p99':>9} {'max':>9}  slowest exchange"
    )
    out.append(header)
    out.append("-" * len(header))
    for name, row in summary["stages"].items():
        out.append(
            f"{name:<12} {row['count']:>6} {row['mean_ms']:>8.3f}m "
            f"{row['p50_ms']:>8.3f}m {row['p95_ms']:>8.3f}m "
            f"{row['p99_ms']:>8.3f}m {row['max_ms']:>8.3f}m  "
            f"{row['slowest_exchange']}"
        )
    return "\n".join(out)


def tree_main(argv: list[str]) -> int:
    """``python -m repro.obs tree``: stitched multi-hop call trees."""
    from repro.graph.stitch import load_jsonl, render_trees, stitch

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs tree",
        description="Stitch execution-indexed trace/journal JSONL "
        "(from any number of hops) into per-root call trees.",
    )
    parser.add_argument(
        "paths", nargs="+", help="trace JSONL file(s), or - for stdin"
    )
    parser.add_argument("--json", action="store_true", help="emit JSON, not a tree")
    args = parser.parse_args(argv)
    records: list[dict] = []
    for path in args.paths:
        if path == "-":
            records.extend(load_jsonl(sys.stdin))
        else:
            with open(path) as stream:
                records.extend(load_jsonl(stream))
    trees = stitch(records)
    if args.json:
        print(
            json.dumps(
                [
                    {
                        "root": tree.root_id,
                        "hops": tree.hops,
                        "nodes": [
                            {
                                "path": [list(seg) for seg in node.path],
                                "verdicts": node.verdicts,
                                "journal": len(node.journal),
                                "synthesized": node.synthesized,
                            }
                            for node in tree.nodes()
                        ],
                    }
                    for tree in trees
                ],
                indent=2,
            )
        )
    else:
        print(render_trees(trees))
    return 0 if trees else 1


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "tree":
        return tree_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarize a trace JSONL: per-stage latency table "
        "+ verdict counts.",
    )
    parser.add_argument("path", help="trace JSONL file, or - for stdin")
    parser.add_argument("--proxy", default=None, help="only this proxy's traces")
    parser.add_argument("--json", action="store_true", help="emit JSON, not a table")
    args = parser.parse_args(argv)
    if args.path == "-":
        summary = summarize(sys.stdin, proxy=args.proxy)
    else:
        with open(args.path) as stream:
            summary = summarize(stream, proxy=args.proxy)
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(render(summary))
    return 0 if summary["traces"] else 1


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # |head closed the pipe: not an error
        sys.exit(0)
