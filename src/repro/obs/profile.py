"""Performance observability: stage histograms, exemplars, runtime probe.

Two instruments behind the exchange pipeline:

* :class:`StageProfiler` — folds every finished trace's span tree into
  streaming log-bucketed histograms keyed by stage name, exported as
  ``rddr_stage_seconds{proxy=...,stage=...}``.  Each bucket remembers
  the last exchange id that landed in it (a *trace exemplar*), so
  "where is the p99 going?" answers with a concrete trace to pull from
  the sink — per-request identity that survives aggregation.
* :class:`RuntimeProbe` — an async sampler for the things span trees
  cannot see: event-loop scheduling lag, GC pauses (via
  ``gc.callbacks``), and resident set size, exported as gauges and
  summarised for the ``repro.bench`` baseline reports.

Both are cheap enough to stay on in production: the profiler is O(spans)
integer bucketing per *sampled* trace, and the probe wakes a few times a
second.  The ``repro.bench`` harness consumes both through
:meth:`StageProfiler.summary` and :meth:`RuntimeProbe.summary`.
"""

from __future__ import annotations

import asyncio
import gc
import os
import time

from repro.obs.metrics import HistogramSeries, MetricsRegistry
from repro.obs.trace import ExchangeTrace

#: Log-spaced buckets for per-stage durations (seconds): factor-4 steps
#: from 2 µs (a no-op span) to ~8.4 s (a stalled backend), 12 buckets.
STAGE_BUCKETS = tuple(2e-6 * 4**i for i in range(12))


def _bucket_quantile(
    buckets: tuple[float, ...], counts: list[int], q: float
) -> float:
    """Interpolated ``q``-th quantile (0..100) over merged bucket counts —
    the same fixed-bucket estimate :meth:`HistogramSeries.quantile` uses,
    lifted out so multiple series can be summed before querying."""
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = (q / 100) * total
    seen = 0
    for i, count in enumerate(counts):
        seen += count
        if seen >= rank:
            upper = buckets[i] if i < len(buckets) else buckets[-1]
            lower = buckets[i - 1] if i > 0 else 0.0
            if count == 0 or i >= len(buckets):
                return upper
            fraction = (rank - (seen - count)) / count
            return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
    return buckets[-1]


class StageProfiler:
    """Aggregates span durations by stage name into the registry.

    One histogram series per ``(proxy, stage)``; every observation
    carries the exchange id as its exemplar.  The ``exchange`` root span
    is recorded under stage ``exchange`` — the whole-pipeline wall time
    the per-stage children decompose.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._family = registry.histogram(
            "rddr_stage_seconds",
            "Time spent per pipeline stage, from exchange span trees.",
            ("proxy", "stage"),
            buckets=STAGE_BUCKETS,
        )
        # labels() resolves through the family's series table on every
        # call; stage/proxy cardinality is tiny and stable, so pin the
        # series objects here (one lookup per span on the hot path).
        self._series_cache: dict[tuple[str, str], HistogramSeries] = {}

    def _series(self, proxy: str, stage: str) -> HistogramSeries:
        key = (proxy, stage)
        series = self._series_cache.get(key)
        if series is None:
            series = self._family.labels(proxy=proxy, stage=stage)
            self._series_cache[key] = series
        return series

    def record_trace(self, trace: ExchangeTrace) -> None:
        """Fold one finished trace's span tree into the stage histograms."""
        exchange_id = getattr(trace, "exchange_id", None)
        proxy = trace.proxy
        root = trace.root
        for span in root.walk():
            stage = "exchange" if span is root else span.name
            self._series(proxy, stage).observe(
                span.duration_s, exemplar=exchange_id
            )

    # ----------------------------------------------------------- queries

    def stages(self, *, proxy: str | None = None) -> list[str]:
        """Stage names observed so far (sorted), optionally per proxy."""
        names = {
            labels["stage"]
            for labels, _ in self._iter_series(proxy=proxy)
        }
        return sorted(names)

    def _iter_series(self, *, proxy: str | None):
        for series in self._family.series():
            labels = dict(zip(self._family.labelnames, series.labelvalues))
            if proxy is not None and labels["proxy"] != proxy:
                continue
            yield labels, series

    def summary(self, *, proxy: str | None = None) -> dict[str, dict]:
        """Per-stage breakdown: count, totals, bucket-estimate quantiles,
        and the exemplar of the slowest populated bucket — the shape the
        ``BENCH_*.json`` reports commit."""
        merged: dict[str, dict] = {}
        for labels, series in self._iter_series(proxy=proxy):
            assert isinstance(series, HistogramSeries)
            entry = merged.setdefault(
                labels["stage"],
                {
                    "count": 0,
                    "sum_s": 0.0,
                    "_counts": [0] * len(series.bucket_counts),
                    "_exemplars": {},
                },
            )
            entry["count"] += series.count
            entry["sum_s"] += series.sum
            for i, count in enumerate(series.bucket_counts):
                entry["_counts"][i] += count
            if series.exemplars:
                entry["_exemplars"].update(series.exemplars)
        out: dict[str, dict] = {}
        for stage in sorted(merged):
            entry = merged[stage]
            counts = entry.pop("_counts")
            exemplars = entry.pop("_exemplars")
            count = entry["count"]
            entry["mean_ms"] = 1000 * entry["sum_s"] / count if count else 0.0
            for q in (50, 95, 99):
                entry[f"p{q}_ms"] = 1000 * _bucket_quantile(
                    STAGE_BUCKETS, counts, q
                )
            entry["sum_s"] = round(entry["sum_s"], 9)
            if exemplars:
                # The slowest populated bucket's exemplar: the trace to
                # pull when asking where the tail went.
                entry["slowest_exemplar"] = exemplars[max(exemplars)]
            out[stage] = entry
        return out


def _read_rss_bytes() -> int:
    """Current resident set size; 0 when the platform offers no view."""
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            pages = int(handle.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        # ru_maxrss is the *peak* (kilobytes on Linux) — a high-water
        # fallback, better than nothing where /proc is absent.
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:
        return 0


class RuntimeProbe:
    """Async sampler for event-loop lag, GC pauses, and RSS.

    ``start()`` spawns the sampling task and registers a ``gc.callbacks``
    hook; ``stop()`` undoes both (the hook is process-global, so probes
    must be stopped, not abandoned).  Gauges report the latest sample;
    :meth:`summary` reports aggregates for the bench harness.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        interval: float = 0.05,
        service: str = "rddr",
    ) -> None:
        if interval <= 0:
            raise ValueError("probe interval must be positive")
        self.interval = interval
        self.service = service
        labels = {"service": service}
        self._lag_gauge = registry.gauge(
            "rddr_eventloop_lag_seconds",
            "Latest sampled event-loop scheduling lag.",
            ("service",),
        ).labels(**labels)
        self._rss_gauge = registry.gauge(
            "rddr_rss_bytes",
            "Latest sampled resident set size of this process.",
            ("service",),
        ).labels(**labels)
        self._gc_pause_gauge = registry.gauge(
            "rddr_gc_pause_seconds",
            "Duration of the most recent garbage-collection pause.",
            ("service",),
        ).labels(**labels)
        self._gc_pauses = registry.counter(
            "rddr_gc_pauses_total",
            "Garbage-collection pauses observed, by generation.",
            ("service", "generation"),
        )
        self._task: asyncio.Task | None = None
        # Pin ONE bound-method object: attribute access creates a fresh
        # one each time, so identity checks against gc.callbacks need
        # the same object that start() appended.
        self._gc_hook = self._on_gc
        self._gc_started: float | None = None
        self._lag_samples = 0
        self._lag_sum = 0.0
        self._lag_max = 0.0
        self._gc_pause_count = 0
        self._gc_pause_sum = 0.0
        self._gc_pause_max = 0.0
        self._gc_by_generation: dict[int, int] = {}
        self._rss_last = 0
        self._rss_max = 0

    # ---------------------------------------------------------- lifecycle

    async def start(self) -> "RuntimeProbe":
        if self._task is not None:
            raise RuntimeError("probe already started")
        gc.callbacks.append(self._gc_hook)
        self._sample_rss()
        self._task = asyncio.create_task(self._run(), name="rddr-runtime-probe")
        return self

    async def stop(self) -> None:
        if self._gc_callback_installed():
            gc.callbacks.remove(self._gc_hook)
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    def _gc_callback_installed(self) -> bool:
        return any(callback is self._gc_hook for callback in gc.callbacks)

    # ----------------------------------------------------------- sampling

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            target = loop.time() + self.interval
            await asyncio.sleep(self.interval)
            lag = max(0.0, loop.time() - target)
            self._lag_samples += 1
            self._lag_sum += lag
            if lag > self._lag_max:
                self._lag_max = lag
            self._lag_gauge.set(lag)
            self._sample_rss()

    def _sample_rss(self) -> None:
        rss = _read_rss_bytes()
        self._rss_last = rss
        if rss > self._rss_max:
            self._rss_max = rss
        self._rss_gauge.set(float(rss))

    def _on_gc(self, phase: str, info: dict) -> None:
        if phase == "start":
            self._gc_started = time.perf_counter()
            return
        if phase != "stop" or self._gc_started is None:
            return
        pause = time.perf_counter() - self._gc_started
        self._gc_started = None
        generation = int(info.get("generation", -1))
        self._gc_pause_count += 1
        self._gc_pause_sum += pause
        if pause > self._gc_pause_max:
            self._gc_pause_max = pause
        self._gc_by_generation[generation] = (
            self._gc_by_generation.get(generation, 0) + 1
        )
        self._gc_pause_gauge.set(pause)
        self._gc_pauses.labels(
            service=self.service, generation=str(generation)
        ).inc()

    # ------------------------------------------------------------ queries

    def summary(self) -> dict:
        """Aggregates for the bench report (JSON-able)."""
        samples = self._lag_samples
        return {
            "interval_s": self.interval,
            "eventloop_lag_ms": {
                "samples": samples,
                "mean": 1000 * self._lag_sum / samples if samples else 0.0,
                "max": 1000 * self._lag_max,
            },
            "gc": {
                "pauses": self._gc_pause_count,
                "pause_ms_total": 1000 * self._gc_pause_sum,
                "pause_ms_max": 1000 * self._gc_pause_max,
                "by_generation": {
                    str(generation): count
                    for generation, count in sorted(
                        self._gc_by_generation.items()
                    )
                },
            },
            "rss_bytes": {"last": self._rss_last, "max": self._rss_max},
        }


__all__ = ["STAGE_BUCKETS", "StageProfiler", "RuntimeProbe"]
