"""Labeled metrics registry (paper section V-G's accounting, productionised).

A :class:`MetricsRegistry` holds named metric *families* — ``Counter``,
``Gauge``, and fixed-bucket ``Histogram`` — each carrying a declared set
of label names.  ``family.labels(proxy="x", protocol="tcp")`` returns the
*series* for that label combination, which is the object the hot path
increments.  Two export surfaces:

* :meth:`MetricsRegistry.expose_text` — Prometheus text exposition
  (``# HELP`` / ``# TYPE`` headers, alphabetically ordered families and
  series, escaped label values);
* :meth:`MetricsRegistry.snapshot` — a JSON-able dict the benchmark
  harnesses consume.

Cardinality is bounded: each family accepts at most
``max_series_per_family`` distinct label sets; further combinations
collapse into a single overflow series whose label values are
``"_other_"``, so a label leak (e.g. a client-controlled value) degrades
aggregation instead of exhausting memory.
"""

from __future__ import annotations

import re
from bisect import bisect_left

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Label value substituted when a family exceeds its cardinality bound.
OVERFLOW_LABEL_VALUE = "_other_"

#: Default buckets for latency histograms (seconds).
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _format_value(value: float) -> str:
    """Prometheus-style number: integral values without a decimal point."""
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labelnames: tuple[str, ...], labelvalues: tuple[str, ...],
                   extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = sorted(tuple(zip(labelnames, labelvalues)) + extra)
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape_label_value(value)}"' for name, value in pairs)
    return "{" + body + "}"


class _Series:
    """One (family, label set) combination."""

    __slots__ = ("labelvalues",)

    def __init__(self, labelvalues: tuple[str, ...]) -> None:
        self.labelvalues = labelvalues


class CounterSeries(_Series):
    __slots__ = ("_value",)

    def __init__(self, labelvalues: tuple[str, ...]) -> None:
        super().__init__(labelvalues)
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters cannot decrease")
        self._value += amount

    def set(self, value: float) -> None:
        """Overwrite the total — compatibility hook for the legacy
        ``ProxyMetrics`` attribute-assignment API; not part of the
        Prometheus counter contract."""
        self._value = float(value)


class GaugeSeries(_Series):
    __slots__ = ("_value",)

    def __init__(self, labelvalues: tuple[str, ...]) -> None:
        super().__init__(labelvalues)
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount


class HistogramSeries(_Series):
    """Fixed-bucket histogram: bounded memory regardless of sample count.

    Optionally carries *trace exemplars*: each bucket remembers the last
    exemplar (an exchange id) observed into it, so a p99 outlier bucket
    points straight at a concrete trace record — per-request identity
    that survives aggregation.  Exemplar storage is lazy; histograms
    observed without exemplars pay nothing.
    """

    __slots__ = ("buckets", "bucket_counts", "_sum", "_count", "exemplars")

    def __init__(self, labelvalues: tuple[str, ...], buckets: tuple[float, ...]) -> None:
        super().__init__(labelvalues)
        self.buckets = buckets
        self.bucket_counts = [0] * (len(buckets) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0
        #: ``{bucket index: last exemplar}``; None until first exemplar.
        self.exemplars: dict[int, str] | None = None

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def observe(self, value: float, *, exemplar: str | None = None) -> None:
        index = bisect_left(self.buckets, value)
        self.bucket_counts[index] += 1
        self._sum += value
        self._count += 1
        if exemplar is not None:
            if self.exemplars is None:
                self.exemplars = {}
            self.exemplars[index] = exemplar

    def bucket_exemplars(self) -> dict[str, str]:
        """``{upper bound: exemplar}`` for every bucket that has one."""
        if not self.exemplars:
            return {}
        bounds = [*self.buckets, float("inf")]
        return {
            _format_value(bounds[index]): exemplar
            for index, exemplar in sorted(self.exemplars.items())
        }

    def cumulative_counts(self) -> list[int]:
        total = 0
        out = []
        for count in self.bucket_counts:
            total += count
            out.append(total)
        return out

    def quantile(self, q: float) -> float:
        """Estimated ``q``-th quantile (0..100), interpolated within the
        containing bucket — the standard fixed-bucket estimate."""
        if not 0 <= q <= 100:
            raise ValueError("quantile must be in [0, 100]")
        if self._count == 0:
            return 0.0
        rank = (q / 100) * self._count
        cumulative = self.cumulative_counts()
        for i, seen in enumerate(cumulative):
            if seen >= rank:
                upper = self.buckets[i] if i < len(self.buckets) else self.buckets[-1]
                lower = self.buckets[i - 1] if i > 0 else 0.0
                in_bucket = self.bucket_counts[i]
                if in_bucket == 0 or i >= len(self.buckets):
                    return upper
                below = cumulative[i] - in_bucket
                fraction = (rank - below) / in_bucket
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        return self.buckets[-1]


class MetricFamily:
    """A named metric with a fixed label-name set and bounded cardinality."""

    def __init__(
        self,
        kind: str,
        name: str,
        help: str,
        labelnames: tuple[str, ...],
        *,
        max_series: int,
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        if buckets is not None and list(buckets) != sorted(set(buckets)):
            raise ValueError("histogram buckets must be strictly increasing")
        self.kind = kind
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.max_series = max_series
        self.buckets = tuple(buckets) if buckets is not None else None
        self.dropped_series = 0
        self._series: dict[tuple[str, ...], _Series] = {}

    def _make_series(self, labelvalues: tuple[str, ...]) -> _Series:
        if self.kind == "counter":
            return CounterSeries(labelvalues)
        if self.kind == "gauge":
            return GaugeSeries(labelvalues)
        assert self.buckets is not None
        return HistogramSeries(labelvalues, self.buckets)

    def labels(self, **labelvalues: str):
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {sorted(self.labelnames)}, "
                f"got {sorted(labelvalues)}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        series = self._series.get(key)
        if series is not None:
            return series
        if len(self._series) >= self.max_series:
            self.dropped_series += 1
            overflow_key = tuple(OVERFLOW_LABEL_VALUE for _ in self.labelnames)
            series = self._series.get(overflow_key)
            if series is None:
                series = self._make_series(overflow_key)
                self._series[overflow_key] = series
            return series
        series = self._make_series(key)
        self._series[key] = series
        return series

    def series(self) -> list[_Series]:
        return [self._series[key] for key in sorted(self._series)]

    def __len__(self) -> int:
        return len(self._series)


class MetricsRegistry:
    """Registry of metric families with text and JSON export surfaces."""

    def __init__(self, *, max_series_per_family: int = 256) -> None:
        self.max_series_per_family = max_series_per_family
        self._families: dict[str, MetricFamily] = {}

    # ------------------------------------------------------------ creation

    def _family(
        self,
        kind: str,
        name: str,
        help: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...] | None = None,
    ) -> MetricFamily:
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind or existing.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind} "
                    f"with labels {existing.labelnames}"
                )
            return existing
        family = MetricFamily(
            kind, name, help, tuple(labelnames),
            max_series=self.max_series_per_family, buckets=buckets,
        )
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "", labelnames: tuple[str, ...] = ()) -> MetricFamily:
        return self._family("counter", name, help, tuple(labelnames))

    def gauge(self, name: str, help: str = "", labelnames: tuple[str, ...] = ()) -> MetricFamily:
        return self._family("gauge", name, help, tuple(labelnames))

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        *,
        buckets: tuple[float, ...] = LATENCY_BUCKETS,
    ) -> MetricFamily:
        return self._family("histogram", name, help, tuple(labelnames), tuple(buckets))

    # ------------------------------------------------------------- queries

    def get(self, name: str) -> MetricFamily | None:
        return self._families.get(name)

    def families(self) -> list[MetricFamily]:
        return [self._families[name] for name in sorted(self._families)]

    def total(self, name: str, **label_filter: str) -> float:
        """Sum of all series of ``name`` whose labels match the filter.

        For histograms the per-series *count* is summed.  Unknown metric
        names total 0.0, so callers can probe before traffic has flowed.
        """
        family = self._families.get(name)
        if family is None:
            return 0.0
        total = 0.0
        for series in family.series():
            labels = dict(zip(family.labelnames, series.labelvalues))
            if all(labels.get(key) == str(value) for key, value in label_filter.items()):
                if isinstance(series, HistogramSeries):
                    total += series.count
                else:
                    total += series.value
        return total

    # ------------------------------------------------------------- export

    def expose_text(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for family in self.families():
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for series in family.series():
                labels = _render_labels(family.labelnames, series.labelvalues)
                if isinstance(series, HistogramSeries):
                    cumulative = series.cumulative_counts()
                    bounds = [*series.buckets, float("inf")]
                    for bound, count in zip(bounds, cumulative):
                        bucket_labels = _render_labels(
                            family.labelnames,
                            series.labelvalues,
                            extra=(("le", _format_value(bound)),),
                        )
                        lines.append(f"{family.name}_bucket{bucket_labels} {count}")
                    lines.append(f"{family.name}_sum{labels} {_format_value(series.sum)}")
                    lines.append(f"{family.name}_count{labels} {series.count}")
                else:
                    lines.append(f"{family.name}{labels} {_format_value(series.value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict[str, dict]:
        """JSON-able view of every family and series."""
        out: dict[str, dict] = {}
        for family in self.families():
            rendered = []
            for series in family.series():
                labels = dict(zip(family.labelnames, series.labelvalues))
                if isinstance(series, HistogramSeries):
                    entry = {
                        "labels": labels,
                        "buckets": list(series.buckets),
                        "bucket_counts": list(series.bucket_counts),
                        "sum": series.sum,
                        "count": series.count,
                    }
                    if series.exemplars:
                        entry["exemplars"] = series.bucket_exemplars()
                    rendered.append(entry)
                else:
                    rendered.append({"labels": labels, "value": series.value})
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "series": rendered,
            }
        return out
