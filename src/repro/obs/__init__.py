"""repro.obs — observability for RDDR deployments.

Two pillars behind one :class:`Observer` bundle:

* **Trace layer** (:mod:`repro.obs.trace`) — every exchange gets a
  stable exchange id and a span tree with per-instance timings and the
  divergence verdict, exported as JSON lines through a ring-buffered
  :class:`TraceSink`.
* **Labeled metrics** (:mod:`repro.obs.metrics`) — ``Counter`` /
  ``Gauge`` / fixed-bucket ``Histogram`` families with bounded label
  cardinality, a Prometheus text exposition, and a JSON snapshot API.

See ``docs/observability.md`` for the trace schema and metric names.
"""

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    OVERFLOW_LABEL_VALUE,
    CounterSeries,
    GaugeSeries,
    HistogramSeries,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.observer import Observer, active_observer, use
from repro.obs.trace import ExchangeTrace, Span, Tracer, TraceSink

__all__ = [
    "LATENCY_BUCKETS",
    "OVERFLOW_LABEL_VALUE",
    "CounterSeries",
    "GaugeSeries",
    "HistogramSeries",
    "MetricFamily",
    "MetricsRegistry",
    "Observer",
    "active_observer",
    "use",
    "ExchangeTrace",
    "Span",
    "Tracer",
    "TraceSink",
]
