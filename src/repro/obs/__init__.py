"""repro.obs — observability for RDDR deployments.

Two pillars behind one :class:`Observer` bundle:

* **Trace layer** (:mod:`repro.obs.trace`) — every exchange gets a
  stable exchange id and a span tree with per-instance timings and the
  divergence verdict, exported as JSON lines through a ring-buffered
  :class:`TraceSink`.
* **Labeled metrics** (:mod:`repro.obs.metrics`) — ``Counter`` /
  ``Gauge`` / fixed-bucket ``Histogram`` families with bounded label
  cardinality, a Prometheus text exposition, and a JSON snapshot API.

Plus a **performance layer** (:mod:`repro.obs.profile`): a
:class:`StageProfiler` folding span trees into per-stage log-bucketed
histograms with trace exemplars, and a :class:`RuntimeProbe` sampling
event-loop lag, GC pauses, and RSS — the substrate ``repro.bench``
builds its committed ``BENCH_*.json`` baselines on.  Tracing can be
deterministically sampled (:class:`TraceSampler`); sampled-out
exchanges take an allocation-free :class:`NullExchangeTrace` path.

See ``docs/observability.md`` for the trace schema and metric names,
and ``python -m repro.obs <traces.jsonl>`` for offline summaries.
"""

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    OVERFLOW_LABEL_VALUE,
    CounterSeries,
    GaugeSeries,
    HistogramSeries,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.observer import Observer, active_observer, use
from repro.obs.profile import STAGE_BUCKETS, RuntimeProbe, StageProfiler
from repro.obs.trace import (
    ExchangeTrace,
    NullExchangeTrace,
    Span,
    Tracer,
    TraceSampler,
    TraceSink,
)

__all__ = [
    "LATENCY_BUCKETS",
    "OVERFLOW_LABEL_VALUE",
    "STAGE_BUCKETS",
    "CounterSeries",
    "GaugeSeries",
    "HistogramSeries",
    "MetricFamily",
    "MetricsRegistry",
    "Observer",
    "RuntimeProbe",
    "StageProfiler",
    "active_observer",
    "use",
    "ExchangeTrace",
    "NullExchangeTrace",
    "Span",
    "Tracer",
    "TraceSampler",
    "TraceSink",
]
