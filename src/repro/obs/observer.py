"""The Observer: one bundle of registry + tracer + sink per deployment.

Proxies report through an :class:`Observer`; a deployment shares one so
every proxy's exchanges land in the same registry and trace ring.  The
*active observer* is a context-variable: wrap any code standing up its
own :class:`~repro.core.rddr.RddrDeployment` (scenario runners, app
deployment helpers) in :func:`use` and the deployments it creates report
into your observer without plumbing changes::

    observer = Observer()
    with obs.use(observer):
        await scenario()            # creates RddrDeployment internally
    print(observer.metrics_text())
    print(observer.sink.jsonl())
"""

from __future__ import annotations

import contextlib
import contextvars
import time
from typing import Callable, Iterator

from repro.obs.metrics import LATENCY_BUCKETS, MetricsRegistry
from repro.obs.profile import StageProfiler
from repro.obs.trace import (
    ExchangeTrace,
    NullExchangeTrace,
    TraceSampler,
    TraceSink,
    Tracer,
)

_ACTIVE: contextvars.ContextVar["Observer | None"] = contextvars.ContextVar(
    "repro_obs_active_observer", default=None
)


def active_observer() -> "Observer | None":
    """The observer installed by the innermost :func:`use`, if any."""
    return _ACTIVE.get()


@contextlib.contextmanager
def use(observer: "Observer") -> Iterator["Observer"]:
    """Make ``observer`` the default for deployments created inside."""
    token = _ACTIVE.set(observer)
    try:
        yield observer
    finally:
        _ACTIVE.reset(token)


class Observer:
    """Shared observability context: metrics registry, tracer, trace sink."""

    def __init__(
        self,
        *,
        registry: MetricsRegistry | None = None,
        sink: TraceSink | None = None,
        trace_capacity: int = 1024,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sink = sink if sink is not None else TraceSink(capacity=trace_capacity)
        self.tracer = Tracer(self.sink, clock=clock)
        self.profiler = StageProfiler(self.registry)
        self._traces_dropped = self.registry.counter(
            "rddr_traces_dropped_total",
            "Finished traces lost to ring-buffer wrap with no stream attached.",
        )
        if self.sink.on_drop is None:
            self.sink.on_drop = self._traces_dropped.labels().inc
        self._exchanges = self.registry.counter(
            "rddr_exchanges_total",
            "Exchanges completed, by divergence verdict.",
            ("proxy", "protocol", "verdict"),
        )
        self._instance_latency = self.registry.histogram(
            "rddr_instance_latency_seconds",
            "Per-instance response read time within an exchange.",
            ("proxy", "instance"),
            buckets=LATENCY_BUCKETS,
        )
        self._events = self.registry.counter(
            "rddr_events_total",
            "Structured events recorded, by kind.",
            ("proxy", "kind"),
        )
        self._live_instances = self.registry.gauge(
            "rddr_live_instances",
            "Instances currently LIVE (full voting members).",
            ("service",),
        )
        self._quarantined_instances = self.registry.gauge(
            "rddr_quarantined_instances",
            "Instances currently quarantined or restarting.",
            ("service",),
        )
        self._recoveries = self.registry.counter(
            "rddr_recoveries_total",
            "Instances warm-rejoined after quarantine and respawn.",
            ("service",),
        )
        self._recovery_transitions = self.registry.counter(
            "rddr_recovery_transitions_total",
            "Recovery state-machine transitions, by target state.",
            ("service", "to"),
        )
        self._journal_records = self.registry.counter(
            "rddr_journal_records_total",
            "Exchanges appended to the durable journal.",
            ("service",),
        )
        self._journal_bytes = self.registry.gauge(
            "rddr_journal_bytes",
            "Current on-disk size of the exchange journal.",
            ("service",),
        )
        self._catchup_replayed = self.registry.counter(
            "rddr_catchup_replayed_total",
            "Journaled exchanges replayed into recovering instances.",
            ("service",),
        )
        self._catchup_lag = self.registry.gauge(
            "rddr_catchup_lag_exchanges",
            "Journal tail length behind the latest snapshot epoch "
            "(exchanges a recovering instance must replay).",
            ("service",),
        )
        self._sentinel_audits = self.registry.counter(
            "rddr_sentinel_audits_total",
            "Anti-entropy state audits completed, by outcome.",
            ("service", "outcome"),
        )
        self._drift_detected = self.registry.counter(
            "rddr_drift_detected_total",
            "Confirmed silent state drifts (minority instance diverging "
            "from the group's chunked digests).",
            ("service",),
        )
        self._drift_repaired = self.registry.counter(
            "rddr_drift_repaired_total",
            "Drifted instances repaired in place via journal replay, "
            "verified by a post-repair digest audit.",
            ("service",),
        )
        # Hot-path label-handle caches: labels() re-resolves the series
        # table per call, and finish_exchange runs once per exchange.
        # Cardinality is small and stable (proxies x verdicts/instances).
        self._verdict_series: dict[tuple[str, str, str], object] = {}
        self._instance_series: dict[tuple[str, str], object] = {}

    # ---------------------------------------------------------- factories

    def proxy_metrics(self, proxy: str, protocol: str):
        """A :class:`~repro.core.metrics.ProxyMetrics` view labeled for
        one proxy, backed by this observer's registry."""
        from repro.core.metrics import ProxyMetrics

        return ProxyMetrics(self.registry, proxy=proxy, protocol=protocol)

    # ---------------------------------------------------------- exchanges

    def begin_exchange(
        self,
        *,
        proxy: str,
        protocol: str,
        direction: str,
        exchange: int,
        sampler: TraceSampler | None = None,
    ) -> ExchangeTrace:
        """Start a trace for one exchange.

        With a ``sampler``, exchanges it drops get the allocation-free
        :class:`NullExchangeTrace` instead of a span tree — their verdict
        is still counted by :meth:`finish_exchange`, but nothing reaches
        the sink or the stage profiler.
        """
        if sampler is not None and not sampler.sampled(exchange):
            return NullExchangeTrace(  # type: ignore[return-value]
                proxy=proxy, protocol=protocol, exchange=exchange
            )
        return self.tracer.begin(
            proxy=proxy, protocol=protocol, direction=direction, exchange=exchange
        )

    def finish_exchange(self, trace: ExchangeTrace) -> dict | None:
        """Close the trace, account its verdict and per-instance latencies,
        and export it (unless the trace was marked ``discard``)."""
        trace.finish()
        if trace.discard:
            return None
        if trace.verdict == ExchangeTrace.UNFINISHED:
            trace.set_verdict("error")
        key = (trace.proxy, trace.protocol, trace.verdict)
        counter = self._verdict_series.get(key)
        if counter is None:
            counter = self._exchanges.labels(
                proxy=trace.proxy, protocol=trace.protocol, verdict=trace.verdict
            )
            self._verdict_series[key] = counter
        counter.inc()
        if not trace.sampled:
            return None
        for index, timings in trace.instance_timings().items():
            recv = timings.get("recv_s")
            if recv is not None and not timings.get("recv_cancelled"):
                series_key = (trace.proxy, str(index))
                series = self._instance_series.get(series_key)
                if series is None:
                    series = self._instance_latency.labels(
                        proxy=trace.proxy, instance=series_key[1]
                    )
                    self._instance_series[series_key] = series
                series.observe(recv)
        self.profiler.record_trace(trace)
        return self.tracer.finish(trace)

    # ------------------------------------------------------------- events

    def event_recorded(self, event) -> None:
        self._events.labels(proxy=event.proxy, kind=event.kind).inc()

    # ----------------------------------------------------------- recovery

    def record_recovery_transition(
        self, *, service: str, instance: int, old: str, new: str, reason: str = ""
    ) -> dict:
        """Account a recovery state-machine transition and tag it into the
        trace sink, so a quarantine → rejoin timeline reads inline with
        the exchange traces it interleaves with."""
        self._recovery_transitions.labels(service=service, to=new).inc()
        record = {
            "type": "recovery",
            "service": service,
            "instance": instance,
            "from": old,
            "to": new,
            "reason": reason,
            "started_wall": time.time(),
        }
        self.sink.emit(record)
        return record

    def set_instance_gauges(self, *, service: str, live: int, quarantined: int) -> None:
        self._live_instances.labels(service=service).set(float(live))
        self._quarantined_instances.labels(service=service).set(float(quarantined))

    def recovery_completed(self, *, service: str) -> None:
        self._recoveries.labels(service=service).inc()

    # ------------------------------------------------------------ journal

    def journal_appended(
        self,
        service: str,
        frame_bytes: int,
        journal_bytes: int,
        *,
        exec_index: str | None = None,
    ) -> None:
        self._journal_records.labels(service=service).inc()
        self._journal_bytes.labels(service=service).set(float(journal_bytes))
        if exec_index is not None:
            # Tag indexed journal commits into the trace sink so journal
            # records stitch into the same call tree as exchange traces
            # (``type: "journal"`` records; the durable journal format is
            # unchanged).
            self.sink.emit(
                {
                    "type": "journal",
                    "service": service,
                    "exec_index": exec_index,
                    "frame_bytes": frame_bytes,
                    "journal_bytes": journal_bytes,
                    "started_wall": time.time(),
                }
            )

    def record_catchup(
        self,
        *,
        service: str,
        instance: int,
        epoch: int,
        replayed: int,
        mismatches: int,
        last_id: int,
        restored: bool,
        outcome: str = "ok",
    ) -> dict:
        """Account one catch-up pass and tag it into the trace sink so the
        quarantine → catch-up → rejoin timeline reads inline with the
        exchange traces (``type: "catchup"`` records)."""
        self._catchup_replayed.labels(service=service).inc(replayed)
        self._catchup_lag.labels(service=service).set(float(max(0, last_id - epoch)))
        record = {
            "type": "catchup",
            "service": service,
            "instance": instance,
            "epoch": epoch,
            "replayed": replayed,
            "mismatches": mismatches,
            "last_id": last_id,
            "restored": restored,
            "outcome": outcome,
            "started_wall": time.time(),
        }
        self.sink.emit(record)
        return record

    # ----------------------------------------------------------- sentinel

    def record_sentinel_audit(self, *, service: str, outcome: str) -> None:
        """Count one anti-entropy audit round.  Outcomes: ``clean``,
        ``divergent``, ``no_majority``, ``error``, ``skipped``.  Audits
        are metrics-only — a clean audit every period would churn the
        trace ring for nothing; drift findings get sink records via
        :meth:`record_drift`."""
        self._sentinel_audits.labels(service=service, outcome=outcome).inc()

    def record_drift(
        self,
        *,
        service: str,
        instance: int,
        action: str,
        chunks: tuple[int, ...] | list[int],
        chunk_bytes: int,
        last_id: int = 0,
        exec_index: str | None = None,
        reason: str = "",
    ) -> dict:
        """Account one drift finding and tag it into the trace sink
        (``type: "drift"`` records), so detection → repair → escalation
        reads inline with the exchange and recovery timeline.

        ``action`` is one of ``detected``, ``repaired``,
        ``repair_failed``, ``escalated``; the counters move on the first
        two.  ``exec_index`` is the execution index of the last journal-
        committed exchange at capture time — the newest exchange the
        divergent chunks can cover — so drift records stitch into the
        same call trees as ``type:"journal"`` records.
        """
        if action == "detected":
            self._drift_detected.labels(service=service).inc()
        elif action == "repaired":
            self._drift_repaired.labels(service=service).inc()
        record = {
            "type": "drift",
            "service": service,
            "instance": instance,
            "action": action,
            "chunks": list(chunks),
            "chunk_bytes": chunk_bytes,
            "last_id": last_id,
            "exec_index": exec_index,
            "reason": reason,
            "started_wall": time.time(),
        }
        self.sink.emit(record)
        return record

    # ------------------------------------------------------------ exports

    def metrics_text(self) -> str:
        return self.registry.expose_text()

    def metrics_snapshot(self) -> dict:
        return self.registry.snapshot()

    def traces(self) -> list[dict]:
        return self.sink.traces()
