"""Exchange-level tracing: span trees per client exchange, ring-buffered.

Every exchange an RDDR proxy handles gets one :class:`ExchangeTrace` — a
stable exchange id plus a span tree recording where the time went
(``replicate`` → per-instance ``send``/``recv`` → ``denoise`` → ``diff``
→ ``respond`` on the incoming proxy; ``collect`` → ``merge`` →
``backend`` → ``fan-back`` on the outgoing one) and the divergence
verdict.  Finished traces are exported as JSON-able dicts into a
:class:`TraceSink`, a fixed-capacity ring buffer with a JSON-lines view,
so tracing is always-on without unbounded memory (the MicroFuzz
"cheap always-on instrumentation" requirement).

Spans are wall-clock timed with a monotonic clock and safe to open from
concurrently-scheduled coroutines on one event loop; a span cancelled
mid-``await`` (e.g. a per-instance read abandoned by the exchange
timeout) is closed with ``cancelled: true`` so per-instance timings
survive timeouts.

Tracing can be *sampled*: a :class:`TraceSampler` decides, from the
exchange counter alone (deterministic under a seed, so two runs of the
same workload sample the same exchanges), whether an exchange gets a
real :class:`ExchangeTrace` or the allocation-free
:class:`NullExchangeTrace`.  The null trace answers the whole span API
with shared immutable singletons, so a sampled-out exchange constructs
zero :class:`Span` objects — the perf-observability fast path the
``repro.bench`` baselines measure.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import deque
from typing import IO, Callable, Iterator


class Span:
    """One timed step; children nest under it in the exported tree."""

    __slots__ = ("name", "start", "end", "attrs", "children")

    def __init__(self, name: str, start: float, **attrs: object) -> None:
        self.name = name
        self.start = start
        self.end: float | None = None
        self.attrs: dict[str, object] = attrs
        self.children: list[Span] = []

    @property
    def duration_s(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self, origin: float) -> dict:
        out: dict[str, object] = {
            "name": self.name,
            "start_s": round(self.start - origin, 9),
            "duration_s": round(self.duration_s, 9),
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [child.to_dict(origin) for child in self.children]
        return out

    def walk(self) -> Iterator["Span"]:
        # Iterative pre-order: a nested generator per child costs a frame
        # per span per hop, which shows up on the per-exchange hot path.
        stack = [self]
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))


class _SpanContext:
    __slots__ = ("_span", "_clock")

    def __init__(self, span: Span, clock: Callable[[], float]) -> None:
        self._span = span
        self._clock = clock

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            if isinstance(exc, asyncio.CancelledError):
                self._span.attrs["cancelled"] = True
            else:
                self._span.attrs["error"] = type(exc).__name__
        self._span.end = self._clock()
        return False


class ExchangeTrace:
    """The span tree and verdict for one exchange through one proxy."""

    #: Verdict before any stage has decided the exchange's fate.
    UNFINISHED = "unfinished"

    #: Real traces build span trees; the NullExchangeTrace overrides this.
    sampled = True

    def __init__(
        self,
        *,
        exchange_id: str,
        proxy: str,
        protocol: str,
        direction: str,
        exchange: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.exchange_id = exchange_id
        self.proxy = proxy
        self.protocol = protocol
        self.direction = direction
        self.exchange = exchange
        self._clock = clock
        self.started_wall = time.time()
        self.root = Span("exchange", clock())
        self.verdict = self.UNFINISHED
        self.reason: str | None = None
        #: Set to skip export (e.g. a connection group closing cleanly).
        self.discard = False
        self._timings: dict[int, dict[str, float]] | None = None

    # ------------------------------------------------------------- spans

    def span(self, name: str, *, parent: Span | None = None, **attrs: object) -> _SpanContext:
        """Open a child span (of ``parent``, or of the root) as a context
        manager; the span closes — recording its duration — on exit."""
        span = Span(name, self._clock(), **attrs)
        (parent or self.root).children.append(span)
        return _SpanContext(span, self._clock)

    def set_verdict(self, verdict: str, reason: str | None = None) -> None:
        self.verdict = verdict
        if reason is not None:
            self.reason = reason

    def finish(self) -> None:
        if self.root.end is None:
            self.root.end = self._clock()

    @property
    def finished(self) -> bool:
        return self.root.end is not None

    # ----------------------------------------------------------- queries

    def instance_timings(self) -> dict[int, dict[str, float]]:
        """Per-instance send/recv durations collected from the span tree,
        e.g. ``{0: {"send_s": ..., "recv_s": ...}, 1: {...}}``.

        The walk is cached once the trace has finished (the tree can no
        longer change): the observer and the exported dict both ask.
        """
        if self._timings is not None:
            return self._timings
        timings: dict[int, dict[str, float]] = {}
        for span in self.root.walk():
            instance = span.attrs.get("instance")
            if instance is None or span.name not in ("send", "recv"):
                continue
            entry = timings.setdefault(int(instance), {})  # type: ignore[arg-type]
            entry[f"{span.name}_s"] = round(span.duration_s, 9)
            if span.attrs.get("cancelled"):
                entry[f"{span.name}_cancelled"] = True
        if self.finished:
            self._timings = timings
        return timings

    def to_dict(self) -> dict:
        self.finish()
        return {
            "exchange_id": self.exchange_id,
            "proxy": self.proxy,
            "protocol": self.protocol,
            "direction": self.direction,
            "exchange": self.exchange,
            "verdict": self.verdict,
            "reason": self.reason,
            "started_wall": self.started_wall,
            "duration_s": round(self.root.duration_s, 9),
            "instances": {str(k): v for k, v in sorted(self.instance_timings().items())},
            "spans": self.root.to_dict(self.root.start),
        }


class _NullAttrs:
    """Write-discarding stand-in for a span's ``attrs`` dict."""

    __slots__ = ()

    def __setitem__(self, key: str, value: object) -> None:
        pass

    def get(self, key: str, default: object = None) -> object:
        return default

    def __contains__(self, key: str) -> bool:
        return False

    def __bool__(self) -> bool:
        return False


class _NullSpan:
    """Shared immutable span returned by the sampled-out fast path."""

    __slots__ = ()

    name = "null"
    start = 0.0
    end = 0.0
    duration_s = 0.0
    attrs = _NullAttrs()
    children: tuple = ()

    def walk(self) -> Iterator["Span"]:
        return iter(())


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self):
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullSpanContext()
_NO_TIMINGS: dict[int, dict[str, float]] = {}


class NullExchangeTrace:
    """Allocation-free trace for exchanges the sampler dropped.

    Implements the subset of the :class:`ExchangeTrace` surface the
    proxies touch per exchange — ``span()``, ``set_verdict()``,
    ``finish()``, ``root.attrs`` writes — against shared singletons, so
    the only per-exchange cost is this one tiny object (needed because
    the verdict must still be counted per exchange).  It is never
    exported to the sink and constructs zero :class:`Span` objects.
    """

    __slots__ = ("proxy", "protocol", "exchange", "verdict", "reason", "discard")

    sampled = False
    root = _NULL_SPAN
    finished = True

    def __init__(self, *, proxy: str, protocol: str, exchange: int = 0) -> None:
        self.proxy = proxy
        self.protocol = protocol
        self.exchange = exchange
        self.verdict = ExchangeTrace.UNFINISHED
        self.reason: str | None = None
        self.discard = False

    def span(self, name: str, *, parent=None, **attrs: object) -> _NullSpanContext:
        return _NULL_CONTEXT

    def set_verdict(self, verdict: str, reason: str | None = None) -> None:
        self.verdict = verdict
        if reason is not None:
            self.reason = reason

    def finish(self) -> None:
        pass

    def instance_timings(self) -> dict[int, dict[str, float]]:
        return _NO_TIMINGS


class TraceSampler:
    """Deterministic head sampling keyed on the exchange counter.

    The decision is a pure function of ``(seed, exchange)`` — a
    splitmix64-style mix, no RNG state — so two runs of the same seeded
    workload trace *exactly* the same exchanges, and a trace-rate
    ablation changes only how many exchanges are observed, never which
    requests flow.
    """

    __slots__ = ("rate", "seed", "_threshold")

    def __init__(self, rate: float = 1.0, seed: int = 0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("trace sample rate must be in [0, 1]")
        self.rate = rate
        self.seed = seed
        self._threshold = int(rate * (1 << 64))

    def sampled(self, exchange: int) -> bool:
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        x = (exchange + 0x9E3779B97F4A7C15 * (self.seed + 1)) & 0xFFFFFFFFFFFFFFFF
        x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 31
        return x < self._threshold


class TraceSink:
    """Fixed-capacity ring buffer of finished traces, exported as JSONL.

    When the ring wraps with no stream attached, the overwritten trace is
    lost — ``dropped`` counts those losses and ``on_drop`` (wired by the
    Observer to ``rddr_traces_dropped_total``) surfaces them, so silent
    ring-wrap loss is visible instead of discovered during an incident.
    """

    def __init__(self, capacity: int = 1024, *, stream: IO[str] | None = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._buffer: deque[dict] = deque(maxlen=capacity)
        self._stream = stream
        self.emitted = 0
        self.dropped = 0
        self.on_drop: Callable[[], None] | None = None

    def emit(self, trace: dict) -> None:
        if self._stream is not None:
            self._stream.write(json.dumps(trace, sort_keys=True) + "\n")
        elif len(self._buffer) == self.capacity:
            self.dropped += 1
            if self.on_drop is not None:
                self.on_drop()
        self._buffer.append(trace)
        self.emitted += 1

    def traces(self) -> list[dict]:
        return list(self._buffer)

    def last(self) -> dict | None:
        return self._buffer[-1] if self._buffer else None

    def jsonl(self) -> str:
        return "".join(json.dumps(trace, sort_keys=True) + "\n" for trace in self._buffer)

    def write_jsonl(self, path: str) -> int:
        """Dump the buffered traces to ``path``; returns the trace count."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.jsonl())
        return len(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()

    def __len__(self) -> int:
        return len(self._buffer)


class Tracer:
    """Creates exchange traces and exports them into a sink."""

    def __init__(self, sink: TraceSink, *, clock: Callable[[], float] = time.monotonic) -> None:
        self.sink = sink
        self._clock = clock

    def begin(self, *, proxy: str, protocol: str, direction: str, exchange: int) -> ExchangeTrace:
        return ExchangeTrace(
            exchange_id=f"{proxy}-{exchange:06d}",
            proxy=proxy,
            protocol=protocol,
            direction=direction,
            exchange=exchange,
            clock=self._clock,
        )

    def finish(self, trace: ExchangeTrace) -> dict | None:
        trace.finish()
        if trace.discard:
            return None
        exported = trace.to_dict()
        self.sink.emit(exported)
        return exported
