"""Exchange-level tracing: span trees per client exchange, ring-buffered.

Every exchange an RDDR proxy handles gets one :class:`ExchangeTrace` — a
stable exchange id plus a span tree recording where the time went
(``replicate`` → per-instance ``send``/``recv`` → ``denoise`` → ``diff``
→ ``respond`` on the incoming proxy; ``collect`` → ``merge`` →
``backend`` → ``fan-back`` on the outgoing one) and the divergence
verdict.  Finished traces are exported as JSON-able dicts into a
:class:`TraceSink`, a fixed-capacity ring buffer with a JSON-lines view,
so tracing is always-on without unbounded memory (the MicroFuzz
"cheap always-on instrumentation" requirement).

Spans are wall-clock timed with a monotonic clock and safe to open from
concurrently-scheduled coroutines on one event loop; a span cancelled
mid-``await`` (e.g. a per-instance read abandoned by the exchange
timeout) is closed with ``cancelled: true`` so per-instance timings
survive timeouts.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import deque
from typing import IO, Callable, Iterator


class Span:
    """One timed step; children nest under it in the exported tree."""

    __slots__ = ("name", "start", "end", "attrs", "children")

    def __init__(self, name: str, start: float, **attrs: object) -> None:
        self.name = name
        self.start = start
        self.end: float | None = None
        self.attrs: dict[str, object] = attrs
        self.children: list[Span] = []

    @property
    def duration_s(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self, origin: float) -> dict:
        out: dict[str, object] = {
            "name": self.name,
            "start_s": round(self.start - origin, 9),
            "duration_s": round(self.duration_s, 9),
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [child.to_dict(origin) for child in self.children]
        return out

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()


class _SpanContext:
    __slots__ = ("_span", "_clock")

    def __init__(self, span: Span, clock: Callable[[], float]) -> None:
        self._span = span
        self._clock = clock

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            if isinstance(exc, asyncio.CancelledError):
                self._span.attrs["cancelled"] = True
            else:
                self._span.attrs["error"] = type(exc).__name__
        self._span.end = self._clock()
        return False


class ExchangeTrace:
    """The span tree and verdict for one exchange through one proxy."""

    #: Verdict before any stage has decided the exchange's fate.
    UNFINISHED = "unfinished"

    def __init__(
        self,
        *,
        exchange_id: str,
        proxy: str,
        protocol: str,
        direction: str,
        exchange: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.exchange_id = exchange_id
        self.proxy = proxy
        self.protocol = protocol
        self.direction = direction
        self.exchange = exchange
        self._clock = clock
        self.started_wall = time.time()
        self.root = Span("exchange", clock())
        self.verdict = self.UNFINISHED
        self.reason: str | None = None
        #: Set to skip export (e.g. a connection group closing cleanly).
        self.discard = False

    # ------------------------------------------------------------- spans

    def span(self, name: str, *, parent: Span | None = None, **attrs: object) -> _SpanContext:
        """Open a child span (of ``parent``, or of the root) as a context
        manager; the span closes — recording its duration — on exit."""
        span = Span(name, self._clock(), **attrs)
        (parent or self.root).children.append(span)
        return _SpanContext(span, self._clock)

    def set_verdict(self, verdict: str, reason: str | None = None) -> None:
        self.verdict = verdict
        if reason is not None:
            self.reason = reason

    def finish(self) -> None:
        if self.root.end is None:
            self.root.end = self._clock()

    @property
    def finished(self) -> bool:
        return self.root.end is not None

    # ----------------------------------------------------------- queries

    def instance_timings(self) -> dict[int, dict[str, float]]:
        """Per-instance send/recv durations collected from the span tree,
        e.g. ``{0: {"send_s": ..., "recv_s": ...}, 1: {...}}``."""
        timings: dict[int, dict[str, float]] = {}
        for span in self.root.walk():
            instance = span.attrs.get("instance")
            if instance is None or span.name not in ("send", "recv"):
                continue
            entry = timings.setdefault(int(instance), {})  # type: ignore[arg-type]
            entry[f"{span.name}_s"] = round(span.duration_s, 9)
            if span.attrs.get("cancelled"):
                entry[f"{span.name}_cancelled"] = True
        return timings

    def to_dict(self) -> dict:
        self.finish()
        return {
            "exchange_id": self.exchange_id,
            "proxy": self.proxy,
            "protocol": self.protocol,
            "direction": self.direction,
            "exchange": self.exchange,
            "verdict": self.verdict,
            "reason": self.reason,
            "started_wall": self.started_wall,
            "duration_s": round(self.root.duration_s, 9),
            "instances": {str(k): v for k, v in sorted(self.instance_timings().items())},
            "spans": self.root.to_dict(self.root.start),
        }


class TraceSink:
    """Fixed-capacity ring buffer of finished traces, exported as JSONL."""

    def __init__(self, capacity: int = 1024, *, stream: IO[str] | None = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._buffer: deque[dict] = deque(maxlen=capacity)
        self._stream = stream
        self.emitted = 0

    def emit(self, trace: dict) -> None:
        self._buffer.append(trace)
        self.emitted += 1
        if self._stream is not None:
            self._stream.write(json.dumps(trace, sort_keys=True) + "\n")

    def traces(self) -> list[dict]:
        return list(self._buffer)

    def last(self) -> dict | None:
        return self._buffer[-1] if self._buffer else None

    def jsonl(self) -> str:
        return "".join(json.dumps(trace, sort_keys=True) + "\n" for trace in self._buffer)

    def write_jsonl(self, path: str) -> int:
        """Dump the buffered traces to ``path``; returns the trace count."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.jsonl())
        return len(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()

    def __len__(self) -> int:
        return len(self._buffer)


class Tracer:
    """Creates exchange traces and exports them into a sink."""

    def __init__(self, sink: TraceSink, *, clock: Callable[[], float] = time.monotonic) -> None:
        self.sink = sink
        self._clock = clock

    def begin(self, *, proxy: str, protocol: str, direction: str, exchange: int) -> ExchangeTrace:
        return ExchangeTrace(
            exchange_id=f"{proxy}-{exchange:06d}",
            proxy=proxy,
            protocol=protocol,
            direction=direction,
            exchange=exchange,
            clock=self._clock,
        )

    def finish(self, trace: ExchangeTrace) -> dict | None:
        trace.finish()
        if trace.discard:
            return None
        exported = trace.to_dict()
        self.sink.emit(exported)
        return exported
