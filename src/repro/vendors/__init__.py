"""Diverse vendor database engines (paper section IV-C / V-C2).

Three pgwire-compatible engines built on the same mini SQL substrate but
with the behavioural differences of their real-world counterparts:

* :func:`create_postsim` — PostgreSQL-like, version-parameterized CVEs.
* :func:`create_roachsim` — CockroachDB-like, rejects UDFs.
* :func:`create_enterprisesim` — EnterpriseDB-like, fixed behaviour.
"""

from repro.vendors.enterprisesim import create_enterprisesim
from repro.vendors.postsim import create_postsim, parse_version, profile_for_version
from repro.vendors.roachsim import create_roachsim

__all__ = [
    "create_enterprisesim",
    "create_postsim",
    "create_roachsim",
    "parse_version",
    "profile_for_version",
]
