"""roachsim — the CockroachDB-like vendor engine.

Speaks the same wire protocol and SQL dialect as postsim (CockroachDB is
pgwire-compatible), but diverges exactly where the real product does in
the paper's evaluation (section V-C2):

* **No user-defined functions or operators.**  ``CREATE FUNCTION`` fails
  with an "unimplemented" error — which is why CVE-2017-7484 cannot be
  exploited against it, and why RDDR sees a divergence at the exploit's
  first step.
* **Serializable-only isolation** is reported, matching the paper's note
  that Postgres had to be configured to serializable to behave
  identically.
* A CockroachDB-style version string.
"""

from __future__ import annotations

from repro.sqlengine.database import Database, EngineProfile


def profile_for_version(version: str = "21.2.5") -> EngineProfile:
    return EngineProfile(
        name="roachsim",
        version=version,
        version_string=(
            f"CockroachDB CCL v{version} (roachsim, x86_64-repro)"
        ),
        supports_udf=False,
        udf_error_message=(
            "unimplemented: CREATE FUNCTION unsupported: user-defined "
            "functions are not yet supported"
        ),
        planner_stats_leak=False,
        rls_pushdown_leak=False,
        defaults={
            "client_min_messages": "notice",
            "default_transaction_isolation": "serializable",
        },
    )


def create_roachsim(version: str = "21.2.5") -> Database:
    """Create a roachsim engine instance at ``version``."""
    return Database(profile_for_version(version))
