"""postsim — the PostgreSQL-like vendor engine, version-parameterized.

``create_postsim("10.7")`` returns a database whose observable behaviour
matches the vulnerability state of that PostgreSQL version for the two
CVEs the paper exploits:

* versions <= 9.2.20 carry **CVE-2017-7484** (planner statistics leak);
* versions 10.0 – 10.7 carry **CVE-2019-10130** (RLS pushdown leak).

Everything else (SQL dialect, wire protocol, UDF support) is identical
across versions, exactly the property version diversity relies on.
"""

from __future__ import annotations

from repro.sqlengine.database import Database, EngineProfile

#: Fix boundaries, from the CVE advisories the paper cites.
PLANNER_LEAK_FIXED_IN = (9, 2, 21)
RLS_LEAK_INTRODUCED_IN = (10, 0)
RLS_LEAK_FIXED_IN = (10, 8)


def parse_version(version: str) -> tuple[int, ...]:
    """Parse a dotted version string into a comparable tuple."""
    return tuple(int(part) for part in version.strip().split("."))


def profile_for_version(version: str) -> EngineProfile:
    """The :class:`EngineProfile` matching one postsim release."""
    parsed = parse_version(version)
    return EngineProfile(
        name="postsim",
        version=version,
        version_string=(
            f"PostgreSQL {version} (postsim) on x86_64-repro, compiled by repro-cc"
        ),
        supports_udf=True,
        planner_stats_leak=parsed < PLANNER_LEAK_FIXED_IN,
        rls_pushdown_leak=RLS_LEAK_INTRODUCED_IN <= parsed < RLS_LEAK_FIXED_IN,
    )


def create_postsim(version: str = "13.0") -> Database:
    """Create a postsim engine instance at ``version``."""
    return Database(profile_for_version(version))
