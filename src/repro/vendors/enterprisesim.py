"""enterprisesim — the EnterpriseDB-like vendor engine.

The paper lists EnterpriseDB as a third pgwire-compatible implementation
suitable for diverse deployment.  enterprisesim behaves like a fixed
postsim (no CVE leak paths) with its own version string, giving tests a
third independent "vendor" for 3-way implementation diversity.
"""

from __future__ import annotations

from repro.sqlengine.database import Database, EngineProfile


def profile_for_version(version: str = "13.5.9") -> EngineProfile:
    return EngineProfile(
        name="enterprisesim",
        version=version,
        version_string=(
            f"EnterpriseDB Advanced Server {version} (enterprisesim) on x86_64-repro"
        ),
        supports_udf=True,
        planner_stats_leak=False,
        rls_pushdown_leak=False,
    )


def create_enterprisesim(version: str = "13.5.9") -> Database:
    """Create an enterprisesim engine instance at ``version``."""
    return Database(profile_for_version(version))
