"""repro — reproduction of "Back to the Future: N-Versioning of
Microservices" (Espinoza, Wood, Forrest, Tiwari; DSN 2022).

The package implements RDDR — an N-versioning proxy architecture that
Replicates requests to N diverse instances of a protected microservice,
De-noises nondeterminism with a filter pair, Diffs the responses, and
Responds (forwarding on unanimity, blocking on divergence) — together
with every substrate its evaluation needs: a micro web framework, a mini
SQL engine speaking the PostgreSQL wire protocol, diverse vendor
databases, an in-process orchestrator, the vulnerable applications from
Table I, and the TPC-H / pgbench workloads behind Figures 4-6.

Quick start::

    import repro

    deployment = await repro.deploy(
        instances=[(host1, p1), (host2, p2)], protocol="http"
    )
    # clients now talk to deployment.address
    print(deployment.metrics_text())      # Prometheus exposition
    print(deployment.traces()[-1])        # last exchange's span tree
"""

import dataclasses
import warnings

from repro.core import (
    EphemeralStateStore,
    EventLog,
    FilterPair,
    IncomingRequestProxy,
    NoiseMask,
    OutgoingRequestProxy,
    ProxyMetrics,
    RddrConfig,
    RddrDeployment,
    VarianceRule,
    diff_tokens,
)
from repro.faults import FaultProxy, FaultSchedule, FaultSpec
from repro.obs import MetricsRegistry, Observer, TraceSink
from repro.protocols import get_protocol
from repro.protocols.base import ProtocolModule

__version__ = "1.1.0"

#: The legacy config-field-keyword shim warns once per process, not per
#: call — a migration nudge, not log spam.
_deploy_override_warned = False


async def deploy(
    config: RddrConfig | None = None,
    *,
    instances: list[tuple[str, int]],
    protocol: str | ProtocolModule | None = None,
    observer: Observer | None = None,
    name: str = "rddr",
    host: str = "127.0.0.1",
    port: int = 0,
    **overrides: object,
) -> RddrDeployment:
    """Stand up RDDR over already-running instances — the one-call facade.

    The preferred form passes a prebuilt config positionally::

        await repro.deploy(RddrConfig(protocol="http", ...),
                           instances=[(h1, p1), (h2, p2)])

    Parameters:

    * ``config`` — a full :class:`RddrConfig`, positionally or as
      ``config=`` (anything else positional is a :class:`TypeError`);
    * ``instances`` — the N instance addresses the incoming proxy guards;
    * ``protocol`` — a registry name (``"tcp"``, ``"http"``, ``"json"``,
      ``"pgwire"``, ``"resp"``) or a :class:`ProtocolModule` instance
      (wins for the incoming leg when ``config`` is also given);
    * ``observer`` — a :class:`repro.obs.Observer` collecting metrics and
      exchange traces (a deployment-private one is created by default).

    **Deprecated**: :class:`RddrConfig` field names are still accepted as
    direct keywords (``await repro.deploy(instances=...,
    divergence_policy="vote")``) and folded into the config, with a
    one-time :class:`DeprecationWarning` — build the config yourself
    instead.

    Returns a started :class:`RddrDeployment` (an async context manager);
    clients connect to ``deployment.address``.  For microservices that
    also *call* backends, use :meth:`RddrDeployment.add_outgoing_proxy`
    before starting the instances.
    """
    if config is not None and not isinstance(config, RddrConfig):
        raise TypeError(
            "deploy() accepts a prebuilt RddrConfig as its only positional "
            f"argument, got {type(config).__name__}; pass instance "
            "addresses via the instances= keyword"
        )
    if overrides:
        valid = {field.name for field in dataclasses.fields(RddrConfig)}
        unknown = sorted(set(overrides) - valid)
        if unknown:
            raise TypeError(
                f"deploy() got unexpected keyword argument(s) {unknown}; "
                "valid RddrConfig overrides are: " + ", ".join(sorted(valid))
            )
        global _deploy_override_warned
        if not _deploy_override_warned:
            _deploy_override_warned = True
            warnings.warn(
                "passing RddrConfig fields as deploy() keywords is "
                "deprecated; build an RddrConfig and pass it as the first "
                "argument",
                DeprecationWarning,
                stacklevel=2,
            )
    if config is None:
        protocol_name = (
            protocol if isinstance(protocol, str)
            else protocol.name if protocol is not None
            else "tcp"
        )
        config = RddrConfig(protocol=protocol_name, **overrides)  # type: ignore[arg-type]
    elif overrides:
        config = dataclasses.replace(config, **overrides)  # type: ignore[arg-type]
    deployment = RddrDeployment(name, config, host, observer=observer)
    try:
        await deployment.start_incoming_proxy(
            list(instances), port=port, protocol=protocol
        )
    except Exception:
        await deployment.close()
        raise
    return deployment


__all__ = [
    "EphemeralStateStore",
    "EventLog",
    "FaultProxy",
    "FaultSchedule",
    "FaultSpec",
    "FilterPair",
    "IncomingRequestProxy",
    "MetricsRegistry",
    "NoiseMask",
    "Observer",
    "OutgoingRequestProxy",
    "ProtocolModule",
    "ProxyMetrics",
    "RddrConfig",
    "RddrDeployment",
    "TraceSink",
    "VarianceRule",
    "deploy",
    "diff_tokens",
    "get_protocol",
    "__version__",
]
