"""repro — reproduction of "Back to the Future: N-Versioning of
Microservices" (Espinoza, Wood, Forrest, Tiwari; DSN 2022).

The package implements RDDR — an N-versioning proxy architecture that
Replicates requests to N diverse instances of a protected microservice,
De-noises nondeterminism with a filter pair, Diffs the responses, and
Responds (forwarding on unanimity, blocking on divergence) — together
with every substrate its evaluation needs: a micro web framework, a mini
SQL engine speaking the PostgreSQL wire protocol, diverse vendor
databases, an in-process orchestrator, the vulnerable applications from
Table I, and the TPC-H / pgbench workloads behind Figures 4-6.

Quick start::

    from repro import RddrDeployment, RddrConfig

    deployment = RddrDeployment("demo", RddrConfig(protocol="http"))
    await deployment.start_incoming_proxy([(host1, p1), (host2, p2)])
    # clients now talk to deployment.address
"""

from repro.core import (
    EphemeralStateStore,
    EventLog,
    FilterPair,
    IncomingRequestProxy,
    NoiseMask,
    OutgoingRequestProxy,
    ProxyMetrics,
    RddrConfig,
    RddrDeployment,
    VarianceRule,
    diff_tokens,
)
from repro.protocols import get_protocol

__version__ = "1.0.0"

__all__ = [
    "EphemeralStateStore",
    "EventLog",
    "FilterPair",
    "IncomingRequestProxy",
    "NoiseMask",
    "OutgoingRequestProxy",
    "ProxyMetrics",
    "RddrConfig",
    "RddrDeployment",
    "VarianceRule",
    "diff_tokens",
    "get_protocol",
    "__version__",
]
