"""Plain-text table and series renderers for the benchmark harnesses.

Every benchmark prints the rows/series its paper table or figure
reports; these helpers keep the output format consistent.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    columns = [str(h) for h in headers]
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in columns]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(columns, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    *,
    title: str = "",
    precision: int = 3,
) -> str:
    """Render one-figure-series-per-column (x in the first column)."""
    headers = [x_label, *series.keys()]
    rows = []
    for index, x in enumerate(x_values):
        row: list[object] = [x]
        for values in series.values():
            row.append(round(float(values[index]), precision))
        rows.append(row)
    return format_table(headers, rows, title=title)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)
