"""Deployment-topology overhead model (paper section II, Figure 1).

The motivation claims that N-versioning only the "Search" and "Compose
Post" services of the DeathStarBench social-network deployment costs
about 20% extra, versus 300% for 3-versioning the whole application.
This module builds that topology as a graph (networkx) and computes the
overhead of selective N-versioning so the claim can be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

#: The social-network deployment of Gan et al. (Figure 1): front end,
#: logic tier, and storage tier, with edges along the request paths.
SOCIAL_NETWORK_SERVICES = {
    # service: (tier, downstream services)
    "load-balancer": ("frontend", ["frontend-logic"]),
    "frontend-logic": ("frontend", [
        "search", "compose-post", "read-timeline", "write-timeline",
        "user-service", "social-graph", "media", "text-service",
    ]),
    "search": ("logic", ["post-storage"]),
    "compose-post": ("logic", ["post-storage", "user-storage", "media-storage"]),
    "read-timeline": ("logic", ["home-timeline-storage", "post-storage"]),
    "write-timeline": ("logic", ["home-timeline-storage", "social-graph-storage"]),
    "user-service": ("logic", ["user-storage"]),
    "social-graph": ("logic", ["social-graph-storage"]),
    "media": ("logic", ["media-storage"]),
    "text-service": ("logic", []),
    "url-shorten": ("logic", []),
    "user-mention": ("logic", ["user-storage"]),
    "unique-id": ("logic", []),
    "user-storage": ("storage", []),
    "post-storage": ("storage", []),
    "home-timeline-storage": ("storage", []),
    "social-graph-storage": ("storage", []),
    "media-storage": ("storage", []),
    "user-cache": ("storage", []),
    "post-cache": ("storage", []),
}


def build_social_network() -> nx.DiGraph:
    """The Figure 1 deployment as a directed service graph."""
    graph = nx.DiGraph()
    for service, (tier, downstream) in SOCIAL_NETWORK_SERVICES.items():
        graph.add_node(service, tier=tier, cost=1.0)
        for target in downstream:
            graph.add_edge(service, target)
    return graph


@dataclass(frozen=True)
class OverheadEstimate:
    """Container-cost overhead of an N-versioning plan."""

    total_cost: float
    added_cost: float

    @property
    def overhead_fraction(self) -> float:
        return self.added_cost / self.total_cost


def selective_overhead(
    graph: nx.DiGraph, protected: dict[str, int]
) -> OverheadEstimate:
    """Overhead of N-versioning a subset of services.

    ``protected`` maps service name -> N (version count).  Each service
    contributes its ``cost`` attribute (the paper assumes all containers
    equally costly); N-versioning a service adds ``(N - 1) * cost``.
    """
    for service in protected:
        if service not in graph:
            raise KeyError(f"unknown service {service!r}")
    total = sum(data.get("cost", 1.0) for _, data in graph.nodes(data=True))
    added = sum(
        (versions - 1) * graph.nodes[service].get("cost", 1.0)
        for service, versions in protected.items()
    )
    return OverheadEstimate(total_cost=total, added_cost=added)


def whole_app_overhead(graph: nx.DiGraph, versions: int) -> OverheadEstimate:
    """Overhead of classically N-versioning the entire deployment."""
    total = sum(data.get("cost", 1.0) for _, data in graph.nodes(data=True))
    return OverheadEstimate(total_cost=total, added_cost=(versions - 1) * total)


def user_facing_services(graph: nx.DiGraph) -> list[str]:
    """Services that receive unmodified user input — the paper's
    recommended N-versioning candidates (section VI)."""
    frontier = {"frontend-logic"}
    return sorted(
        service
        for service in graph
        if graph.nodes[service]["tier"] == "logic"
        and any(pred in frontier for pred in graph.predecessors(service))
    )
