"""Statistics helpers for the analysis and benchmark harnesses."""

from __future__ import annotations

import math
from dataclasses import dataclass


def percentile(samples: list[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 100]."""
    if not samples:
        raise ValueError("no samples")
    if not 0 <= q <= 100:
        raise ValueError("percentile must be in [0, 100]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    low_value, high_value = ordered[low], ordered[high]
    # a + (b-a)*w keeps denormals inside [a, b] where a*(1-w) + b*w can
    # underflow to 0 below a; clamp against round-off at the top end too.
    value = low_value + (high_value - low_value) * weight
    return min(max(value, low_value), high_value)


def mean(samples: list[float]) -> float:
    if not samples:
        raise ValueError("no samples")
    return sum(samples) / len(samples)


@dataclass(frozen=True)
class BoxStats:
    """The five-number-ish summary the paper's Figure 4 boxes report:
    5th/95th percentile whiskers, the median, and the mean."""

    p5: float
    median: float
    p95: float
    mean: float

    @classmethod
    def from_samples(cls, samples: list[float]) -> "BoxStats":
        return cls(
            p5=percentile(samples, 5),
            median=percentile(samples, 50),
            p95=percentile(samples, 95),
            mean=mean(samples),
        )


def normalize(values: list[float], baseline: list[float]) -> list[float]:
    """Element-wise ratio to a baseline (paper's normalized metrics)."""
    if len(values) != len(baseline):
        raise ValueError("length mismatch")
    return [v / b if b else float("inf") for v, b in zip(values, baseline)]
