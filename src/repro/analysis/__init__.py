"""Analysis helpers: statistics, report rendering, topology model."""

from repro.analysis.report import format_series, format_table
from repro.analysis.stats import BoxStats, mean, normalize, percentile
from repro.analysis.topology import (
    OverheadEstimate,
    build_social_network,
    selective_overhead,
    user_facing_services,
    whole_app_overhead,
)

__all__ = [
    "format_series",
    "format_table",
    "BoxStats",
    "mean",
    "normalize",
    "percentile",
    "OverheadEstimate",
    "build_social_network",
    "selective_overhead",
    "user_facing_services",
    "whole_app_overhead",
]
