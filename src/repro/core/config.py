"""RDDR deployment configuration.

Mirrors the paper's configuration file (section IV-B4): instance set,
filter-pair selection, protocol module, known-variance rules, timeout
policy, and divergence response.  Serializable to/from JSON so configs
can live beside Kubernetes manifests the way the paper's do.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.denoise import FilterPair
from repro.core.variance import VarianceRule

#: Config fields introduced after the first committed bench baselines.
#: :meth:`RddrConfig.fingerprint` omits them while they hold their
#: dataclass default (looked up via :func:`dataclasses.fields`, never
#: duplicated here) — behaviourally identical configs keep the
#: fingerprint older ``BENCH_*.json`` files embed.
_FINGERPRINT_NEUTRAL_FIELDS: frozenset[str] = frozenset({
    "journal_group_commit_ms",
    "execution_index",
    "tree_policy",
    "probe_connect_only",
    "sentinel_audit_period",
    "sentinel_chunk_bytes",
    "sentinel_repair_budget",
})


@dataclass
class RddrConfig:
    """Configuration for one protected microservice."""

    #: Application-layer protocol module name ("http", "pgwire", "json",
    #: "tcp"); resolved through :mod:`repro.protocols`.
    protocol: str = "tcp"
    #: Indices of the two identical instances used for de-noising, or
    #: ``None`` to disable nondeterminism filtering.
    filter_pair: tuple[int, int] | None = None
    #: Regex rules masking known deterministic variance before diffing.
    variance_rules: list[VarianceRule] = field(default_factory=list)
    #: Seconds to wait for every instance's response before declaring a
    #: timeout divergence (the paper's future-work DoS mitigation).
    exchange_timeout: float = 10.0
    #: Per-instance response deadline.  ``None`` falls back to
    #: ``exchange_timeout``.  Each instance read is bounded individually,
    #: so one straggler cannot indefinitely hold the others' results.
    instance_response_deadline: float | None = None
    #: With ``divergence_policy="vote"`` and N >= 3: drop a dead or late
    #: instance from the connection and keep serving on the surviving
    #: strict majority (a DEGRADED event + ``rddr_degraded_exchanges_total``
    #: record every drop) instead of blocking the client.
    degraded_quorum: bool = False
    #: Bounded reconnect-with-backoff when dialing instances: attempt
    #: count and backoff delay cap in seconds.
    connect_attempts: int = 20
    connect_backoff_max: float = 0.25
    #: Whether ephemeral-state (CSRF) handling is active.  Only the HTTP
    #: module implements it, matching the paper.
    ephemeral_state: bool = True
    #: Minimum differing-run length for the CSRF detector.
    ephemeral_min_length: int = 10
    #: Index of the instance whose response is forwarded to the client.
    canonical_instance: int = 0
    #: Human-visible text served on divergence (HTTP) before closing.
    block_message: str = "RDDR intervened: divergent instance behaviour detected"
    #: What to do on divergence: "block" (the paper's behaviour: serve the
    #: intervention response and halt) or "vote" (classic N-versioning:
    #: forward the strict-majority response and keep serving).
    divergence_policy: str = "block"
    #: With the "vote" policy, drop outvoted instances from the connection
    #: so a compromised minority cannot keep participating.
    quarantine_minority: bool = False
    #: Learn divergence signatures and reject matching requests before
    #: replication (the section IV-D DoS mitigation).
    signature_learning: bool = False
    #: Seconds before a learned signature expires (None = never).
    signature_ttl: float | None = None
    #: Self-healing recovery (repro.recovery): quarantine failing
    #: instances, respawn them, and warm-rejoin them after clean shadow
    #: exchanges.  Off by default — with it off, behaviour is identical
    #: to pre-recovery deployments.
    recovery_enabled: bool = False
    #: Health-probe period / per-probe timeout (seconds) and how many
    #: consecutive failures quarantine an instance.
    probe_period: float = 0.25
    probe_timeout: float = 1.0
    probe_failure_threshold: int = 3
    #: Probe liveness by TCP connect alone, without sending the
    #: protocol's liveness request.  For hops whose pods relay to a
    #: downstream edge (repro.graph), an in-band probe would traverse
    #: the whole chain — and, dialling only LIVE instances, skew the
    #: outgoing proxy's per-instance connection grouping against
    #: rejoining shadows.  Connect-only probes keep hop health local.
    probe_connect_only: bool = False
    #: Initial backoff between restart attempts for a quarantined pod
    #: (doubles up to 1s on repeated failure).
    restart_backoff: float = 0.1
    #: Consecutive clean, matching shadow exchanges required before a
    #: respawned instance is re-admitted to voting (the K in the docs).
    rejoin_clean_exchanges: int = 3
    #: Admission control on the incoming proxy: at most this many
    #: exchanges in flight (None = unbounded, the pre-existing
    #: behaviour), with up to ``admission_queue_limit`` more waiting
    #: FIFO; anything beyond is shed with a fast-fail response.
    max_concurrent_exchanges: int | None = None
    admission_queue_limit: int = 0
    #: Human-visible text served when an exchange is shed.
    shed_message: str = "RDDR overloaded: request shed"
    #: Circuit breaking on the outgoing proxy's backend path: after
    #: ``breaker_failure_threshold`` consecutive connect failures the
    #: circuit opens and groups fail fast for ``breaker_reset_timeout``
    #: seconds before a half-open trial.
    circuit_breaker: bool = False
    breaker_failure_threshold: int = 5
    breaker_reset_timeout: float = 30.0
    #: Durable exchange journal (repro.journal): directory for the
    #: append-only log of committed state-mutating exchanges.  ``None``
    #: (the default) disables journaling entirely.
    journal_dir: str | None = None
    #: Journal segment rotation bound and compaction size bound (bytes).
    journal_segment_bytes: int = 1 << 20
    journal_compact_bytes: int = 8 << 20
    #: fsync each appended record (crash-proof vs the OS page cache; the
    #: durability-latency tradeoff measured in benchmarks/test_ablations).
    journal_fsync: bool = False
    #: Group commit: coalesce journal records appended within this window
    #: (milliseconds) into one fsync; callers still only ACK after the
    #: batch is durable.  ``0`` (the default) keeps per-record fsync.
    #: Only meaningful with ``journal_fsync=True``.
    journal_group_commit_ms: float = 0.0
    #: During CATCHING_UP, verify each replayed response digest against
    #: the journaled one (mismatches are counted and traced).
    catchup_verify: bool = True
    #: Drive synthetic probe exchanges at a REJOINING instance when no
    #: client exchange lands within this many seconds, so rejoin makes
    #: progress on idle services (None disables the driver).
    rejoin_probe_interval: float | None = None
    #: Fraction of exchanges that get a full span trace (repro.obs).
    #: 1.0 traces everything (the pre-profile behaviour); 0.0 routes
    #: every exchange through the allocation-free null-trace fast path.
    #: Sampling is deterministic under ``trace_sample_seed``: two runs of
    #: the same workload trace exactly the same exchanges.
    trace_sample_rate: float = 1.0
    trace_sample_seed: int = 0
    #: Sampling period for the runtime probe (event-loop lag, GC pauses,
    #: RSS) started by :class:`~repro.core.rddr.RddrDeployment`.  ``None``
    #: (the default) starts no probe.
    runtime_probe_interval: float | None = None
    #: Multi-hop call graphs (repro.graph): propagate a per-exchange
    #: execution index through every hop as protocol-level metadata, so
    #: traces and journal events stitch into end-to-end call trees.  Off
    #: by default — with it off, no attach/extract hook ever runs and
    #: the exchange hot path is byte-identical to single-hop deployments.
    execution_index: bool = False
    #: Declarative per-edge tree policy for outgoing proxies (the
    #: :class:`repro.graph.policy.TreePolicy` spec grammar: ``{"default":
    #: {...}, "edges": {name: {"mode": "vote|degrade|passthrough|shed",
    #: "deadline_s": ..., "retry_budget": ..., "on_failure": ...}}}``).
    #: ``None`` keeps every edge on today's ``vote`` behaviour.
    tree_policy: dict | None = None
    #: Anti-entropy sentinel (repro.sentinel): period in seconds between
    #: background state audits comparing chunked snapshot digests across
    #: the N-version group.  ``None`` (the default) runs no sentinel.
    sentinel_audit_period: float | None = None
    #: Chunk size (bytes) for the Merkle-style state digests; smaller
    #: chunks localize drift more precisely at the cost of more hashing.
    sentinel_chunk_bytes: int = 256
    #: Failed in-place repairs tolerated per instance before the sentinel
    #: escalates to full quarantine/respawn.
    sentinel_repair_budget: int = 2

    def filter_pair_obj(self) -> FilterPair | None:
        if self.filter_pair is None:
            return None
        return FilterPair(*self.filter_pair)

    def instance_deadline(self) -> float:
        """The effective per-instance response deadline in seconds."""
        if self.instance_response_deadline is not None:
            return self.instance_response_deadline
        return self.exchange_timeout

    def degradation_allowed(self, total: int, survivors: int) -> bool:
        """Whether dropping down to ``survivors`` of ``total`` instances
        may keep the connection alive: degraded-quorum mode is on, the
        voting policy is active, and a strict majority survives."""
        return (
            self.degraded_quorum
            and self.divergence_policy == "vote"
            and total >= 3
            and survivors >= 2
            and survivors * 2 > total
        )

    def fingerprint(self) -> str:
        """Stable digest of the full configuration.

        Benchmark reports embed it so a perf delta can never be silently
        compared across different deployment configurations: two
        ``BENCH_*.json`` files are comparable iff fingerprints match.

        Fields added *after* baselines were first committed are excluded
        while they sit at their default, so a config that behaves
        identically to an older one fingerprints identically — committed
        ``BENCH_*.json`` baselines stay comparable across releases.
        """
        data = self.to_dict()
        defaults = {
            f.name: f.default
            for f in dataclasses.fields(self)
            if f.name in _FINGERPRINT_NEUTRAL_FIELDS
        }
        for key, default in defaults.items():
            if data.get(key) == default:
                del data[key]
        canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    # ------------------------------------------------------------- JSON

    def to_dict(self) -> dict[str, object]:
        return {
            "protocol": self.protocol,
            "filter_pair": list(self.filter_pair) if self.filter_pair else None,
            "variance_rules": [
                {
                    "pattern": rule.pattern,
                    "replacement": rule.replacement.decode("latin-1"),
                    "description": rule.description,
                }
                for rule in self.variance_rules
            ],
            "exchange_timeout": self.exchange_timeout,
            "instance_response_deadline": self.instance_response_deadline,
            "degraded_quorum": self.degraded_quorum,
            "connect_attempts": self.connect_attempts,
            "connect_backoff_max": self.connect_backoff_max,
            "ephemeral_state": self.ephemeral_state,
            "ephemeral_min_length": self.ephemeral_min_length,
            "canonical_instance": self.canonical_instance,
            "block_message": self.block_message,
            "divergence_policy": self.divergence_policy,
            "quarantine_minority": self.quarantine_minority,
            "signature_learning": self.signature_learning,
            "signature_ttl": self.signature_ttl,
            "recovery_enabled": self.recovery_enabled,
            "probe_period": self.probe_period,
            "probe_timeout": self.probe_timeout,
            "probe_failure_threshold": self.probe_failure_threshold,
            "probe_connect_only": self.probe_connect_only,
            "restart_backoff": self.restart_backoff,
            "rejoin_clean_exchanges": self.rejoin_clean_exchanges,
            "max_concurrent_exchanges": self.max_concurrent_exchanges,
            "admission_queue_limit": self.admission_queue_limit,
            "shed_message": self.shed_message,
            "circuit_breaker": self.circuit_breaker,
            "breaker_failure_threshold": self.breaker_failure_threshold,
            "breaker_reset_timeout": self.breaker_reset_timeout,
            "journal_dir": self.journal_dir,
            "journal_segment_bytes": self.journal_segment_bytes,
            "journal_compact_bytes": self.journal_compact_bytes,
            "journal_fsync": self.journal_fsync,
            "journal_group_commit_ms": self.journal_group_commit_ms,
            "catchup_verify": self.catchup_verify,
            "rejoin_probe_interval": self.rejoin_probe_interval,
            "trace_sample_rate": self.trace_sample_rate,
            "trace_sample_seed": self.trace_sample_seed,
            "runtime_probe_interval": self.runtime_probe_interval,
            "execution_index": self.execution_index,
            "tree_policy": self.tree_policy,
            "sentinel_audit_period": self.sentinel_audit_period,
            "sentinel_chunk_bytes": self.sentinel_chunk_bytes,
            "sentinel_repair_budget": self.sentinel_repair_budget,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "RddrConfig":
        pair = data.get("filter_pair")
        rules = [
            VarianceRule(
                pattern=str(rule["pattern"]),
                replacement=str(
                    rule.get("replacement", "\x00VARIANT\x00")
                ).encode("latin-1"),
                description=str(rule.get("description", "")),
            )
            for rule in data.get("variance_rules", [])  # type: ignore[union-attr]
        ]
        return cls(
            protocol=str(data.get("protocol", "tcp")),
            filter_pair=tuple(pair) if pair else None,  # type: ignore[arg-type]
            variance_rules=rules,
            exchange_timeout=float(data.get("exchange_timeout", 10.0)),  # type: ignore[arg-type]
            instance_response_deadline=(
                float(data["instance_response_deadline"])  # type: ignore[arg-type]
                if data.get("instance_response_deadline") is not None
                else None
            ),
            degraded_quorum=bool(data.get("degraded_quorum", False)),
            connect_attempts=int(data.get("connect_attempts", 20)),  # type: ignore[arg-type]
            connect_backoff_max=float(data.get("connect_backoff_max", 0.25)),  # type: ignore[arg-type]
            ephemeral_state=bool(data.get("ephemeral_state", True)),
            ephemeral_min_length=int(data.get("ephemeral_min_length", 10)),  # type: ignore[arg-type]
            canonical_instance=int(data.get("canonical_instance", 0)),  # type: ignore[arg-type]
            block_message=str(
                data.get(
                    "block_message",
                    "RDDR intervened: divergent instance behaviour detected",
                )
            ),
            divergence_policy=str(data.get("divergence_policy", "block")),
            quarantine_minority=bool(data.get("quarantine_minority", False)),
            signature_learning=bool(data.get("signature_learning", False)),
            signature_ttl=(
                float(data["signature_ttl"])  # type: ignore[arg-type]
                if data.get("signature_ttl") is not None
                else None
            ),
            recovery_enabled=bool(data.get("recovery_enabled", False)),
            probe_period=float(data.get("probe_period", 0.25)),  # type: ignore[arg-type]
            probe_timeout=float(data.get("probe_timeout", 1.0)),  # type: ignore[arg-type]
            probe_failure_threshold=int(data.get("probe_failure_threshold", 3)),  # type: ignore[arg-type]
            probe_connect_only=bool(data.get("probe_connect_only", False)),
            restart_backoff=float(data.get("restart_backoff", 0.1)),  # type: ignore[arg-type]
            rejoin_clean_exchanges=int(data.get("rejoin_clean_exchanges", 3)),  # type: ignore[arg-type]
            max_concurrent_exchanges=(
                int(data["max_concurrent_exchanges"])  # type: ignore[arg-type]
                if data.get("max_concurrent_exchanges") is not None
                else None
            ),
            admission_queue_limit=int(data.get("admission_queue_limit", 0)),  # type: ignore[arg-type]
            shed_message=str(
                data.get("shed_message", "RDDR overloaded: request shed")
            ),
            circuit_breaker=bool(data.get("circuit_breaker", False)),
            breaker_failure_threshold=int(data.get("breaker_failure_threshold", 5)),  # type: ignore[arg-type]
            breaker_reset_timeout=float(data.get("breaker_reset_timeout", 30.0)),  # type: ignore[arg-type]
            journal_dir=(
                str(data["journal_dir"])
                if data.get("journal_dir") is not None
                else None
            ),
            journal_segment_bytes=int(data.get("journal_segment_bytes", 1 << 20)),  # type: ignore[arg-type]
            journal_compact_bytes=int(data.get("journal_compact_bytes", 8 << 20)),  # type: ignore[arg-type]
            journal_fsync=bool(data.get("journal_fsync", False)),
            journal_group_commit_ms=float(data.get("journal_group_commit_ms", 0.0)),  # type: ignore[arg-type]
            catchup_verify=bool(data.get("catchup_verify", True)),
            rejoin_probe_interval=(
                float(data["rejoin_probe_interval"])  # type: ignore[arg-type]
                if data.get("rejoin_probe_interval") is not None
                else None
            ),
            trace_sample_rate=float(data.get("trace_sample_rate", 1.0)),  # type: ignore[arg-type]
            trace_sample_seed=int(data.get("trace_sample_seed", 0)),  # type: ignore[arg-type]
            runtime_probe_interval=(
                float(data["runtime_probe_interval"])  # type: ignore[arg-type]
                if data.get("runtime_probe_interval") is not None
                else None
            ),
            execution_index=bool(data.get("execution_index", False)),
            tree_policy=(
                dict(data["tree_policy"])  # type: ignore[arg-type]
                if data.get("tree_policy") is not None
                else None
            ),
            sentinel_audit_period=(
                float(data["sentinel_audit_period"])  # type: ignore[arg-type]
                if data.get("sentinel_audit_period") is not None
                else None
            ),
            sentinel_chunk_bytes=int(data.get("sentinel_chunk_bytes", 256)),  # type: ignore[arg-type]
            sentinel_repair_budget=int(data.get("sentinel_repair_budget", 2)),  # type: ignore[arg-type]
        )

    def dump(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "RddrConfig":
        return cls.from_dict(json.loads(Path(path).read_text()))
