"""The RDDR Outgoing Request Proxy (paper section IV-B).

The dual of the incoming proxy: the N instances of the protected
microservice each *initiate* connections toward a backend microservice
(e.g. DVWA frontends toward their database).  One outgoing proxy guards
one backend.  It listens on N ports — instance *i* is configured to reach
the backend at port *i* — groups the k-th connection from every instance
into a *connection group*, and then, per exchange:

1. reads one request from every instance in the group,
2. de-noises and diffs them (an information leak by a compromised
   instance shows up here),
3. forwards the canonical instance's request to the real backend, and
4. replicates the backend's response to all N instances — the "merge"
   that Twitter's Diffy lacks (paper section III-A).

A missing request (one instance never issues the call the others made,
e.g. only the smuggling-vulnerable proxy forwards the hidden request) is
detected by the exchange timeout and treated as divergence.
"""

from __future__ import annotations

import asyncio
import contextlib
import time

from repro.core import events as ev
from repro.core.config import RddrConfig
from repro.core.denoise import FilterPairDenoiser
from repro.core.diff import diff_tokens
from repro.core.events import EventLog
from repro.core.metrics import ProxyMetrics
from repro.core.variance import VarianceMasker
from repro.graph.index import ExecutionIndex
from repro.graph.policy import EdgePolicy, containment_response
from repro.obs import ExchangeTrace, Observer, TraceSampler, active_observer
from repro.protocols.base import ProtocolModule, capabilities_of, resolve
from repro.recovery.breaker import CircuitBreaker
from repro.transport.retry import CircuitOpenError, open_connection_retry
from repro.transport.server import ServerHandle, start_server
from repro.transport.streams import ConnectionClosed, close_writer, drain_write

Address = tuple[str, int]

#: Backend-interaction failures an edge policy may *contain* (answered
#: with a framed degrade/shed response instead of a group teardown).
_BACKEND_FAILURES = (
    asyncio.TimeoutError,
    ConnectionClosed,
    ConnectionError,
    OSError,
)


class _BackendLink:
    """The group's (re)dialable connection to the real backend."""

    __slots__ = ("reader", "writer", "state")

    def __init__(self, state: object) -> None:
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        self.state = state


class _ConnectionGroup:
    """The k-th connection from every instance, matched together."""

    def __init__(self, size: int) -> None:
        self.readers: list[asyncio.StreamReader | None] = [None] * size
        self.writers: list[asyncio.StreamWriter | None] = [None] * size
        self.complete = asyncio.Event()
        self.finished = asyncio.Event()

    def join(self, index: int, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self.readers[index] = reader
        self.writers[index] = writer
        if all(r is not None for r in self.readers):
            self.complete.set()


class OutgoingRequestProxy:
    """N-versioning proxy for instance-initiated (outgoing) traffic."""

    def __init__(
        self,
        backend: Address,
        instance_count: int,
        protocol: ProtocolModule | str,
        config: RddrConfig | None = None,
        *,
        host: str = "127.0.0.1",
        name: str = "rddr-outgoing",
        event_log: EventLog | None = None,
        metrics: ProxyMetrics | None = None,
        observer: Observer | None = None,
        breaker: CircuitBreaker | None = None,
        edge: EdgePolicy | None = None,
    ) -> None:
        if instance_count < 2:
            raise ValueError("N-versioning requires at least 2 instances")
        self.backend = backend
        self.instance_count = instance_count
        self.protocol = resolve(protocol)
        protocol = self.protocol
        self.config = config or RddrConfig(protocol=protocol.name)
        #: This edge's tree policy (repro.graph); the default is plain
        #: ``vote`` — byte-identical to pre-graph behaviour.
        self.edge = edge if edge is not None else EdgePolicy()
        #: Execution-index propagation: on only when the config asks for
        #: it *and* the protocol implements the contract-1.2 pair.
        self._index_enabled = bool(
            self.config.execution_index
        ) and capabilities_of(protocol).execution_index
        #: Backend redials spent so far against ``edge.retry_budget``.
        self._redials_used = 0
        self.host = host
        self.name = name
        # Explicit None checks: an empty EventLog is falsy (it has __len__).
        self.observer = (
            observer if observer is not None else (active_observer() or Observer())
        )
        self.events = (
            event_log if event_log is not None else EventLog(observer=self.observer)
        )
        self.metrics = (
            metrics
            if metrics is not None
            else self.observer.proxy_metrics(name, protocol.name)
        )
        self.handles: list[ServerHandle] = []
        self._denoiser = FilterPairDenoiser(self.config.filter_pair_obj())
        self._variance = VarianceMasker(self.config.variance_rules)
        self._groups: list[_ConnectionGroup] = []
        self._exchange_counter = 0
        self._sampler = TraceSampler(
            self.config.trace_sample_rate, self.config.trace_sample_seed
        )
        if breaker is None and self.config.circuit_breaker:
            breaker = CircuitBreaker(
                failure_threshold=self.config.breaker_failure_threshold,
                reset_timeout=self.config.breaker_reset_timeout,
            )
        self.breaker = breaker
        if self.breaker is not None and self.breaker.on_transition is None:
            self.breaker.on_transition = self._breaker_transition

    def _breaker_transition(self, old: str, new: str) -> None:
        self.events.record(
            ev.CIRCUIT, f"backend breaker {old} -> {new}", proxy=self.name
        )

    # ------------------------------------------------------------ lifecycle

    @property
    def addresses(self) -> list[Address]:
        """Per-instance backend addresses (instance i connects to [i])."""
        if not self.handles:
            raise RuntimeError("proxy not started")
        return [handle.address for handle in self.handles]

    def address_for_instance(self, index: int) -> Address:
        return self.addresses[index]

    async def start(self) -> list[ServerHandle]:
        for index in range(self.instance_count):
            handle = await start_server(
                self._make_handler(index),
                self.host,
                0,
                name=f"{self.name}-{index}",
            )
            self.handles.append(handle)
        return self.handles

    async def close(self) -> None:
        for handle in self.handles:
            await handle.close()

    def reset_instance(self, index: int) -> None:
        """Hook for a respawned instance's connection grouping.

        Grouping is self-aligning (an arriving connection joins the
        earliest still-forming group missing its instance — see
        :meth:`_assign_group`), so a respawned instance needs no counter
        realignment: its next dial lands wherever its peers' next dials
        land.  Kept as an explicit no-op so the recovery supervisor's
        respawn path documents the alignment point.
        """

    # ------------------------------------------------------------ grouping

    def _make_handler(self, index: int):
        async def handler(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
            await self._handle_instance_connection(index, reader, writer)

        return handler

    def _assign_group(self, index: int) -> tuple[_ConnectionGroup, int]:
        """Pick the group an arriving instance connection belongs to: the
        earliest still-forming group with no member for ``index`` yet, or
        a fresh one.  Slot-based assignment (rather than a per-instance
        connection counter) self-aligns after per-instance drift — an
        instance that dialed extra times (respawn, a rejoining shadow
        joining mid-session) or missed dials (it was dead) simply lands
        in whatever group its peers are currently forming.
        """
        for group_index, group in enumerate(self._groups):
            if (
                group.readers[index] is None
                and not group.complete.is_set()
                and not group.finished.is_set()
            ):
                return group, group_index
        self._groups.append(_ConnectionGroup(self.instance_count))
        return self._groups[-1], len(self._groups) - 1

    async def _handle_instance_connection(
        self, index: int, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        group, group_index = self._assign_group(index)
        group.join(index, reader, writer)
        self.metrics.connections_total += 1
        if index == self.config.canonical_instance:
            # The canonical instance's handler drives the whole group; the
            # others just keep their connection open until it finishes.
            try:
                await asyncio.wait_for(
                    group.complete.wait(), timeout=self.config.exchange_timeout
                )
            except asyncio.TimeoutError:
                joined = [i for i, r in enumerate(group.readers) if r is not None]
                if self.config.degradation_allowed(self.instance_count, len(joined)):
                    # Degraded group formation: run on the majority that
                    # did connect instead of tearing the group down.
                    missing = [
                        i for i in range(self.instance_count) if i not in joined
                    ]
                    self.metrics.degraded_exchanges += 1
                    for i in missing:
                        self.events.record(
                            ev.DEGRADED,
                            f"group {group_index}: instance {i} never connected",
                            proxy=self.name,
                        )
                    group.complete.set()  # release the joined members' waits
                    await self._run_group(group, group_index)
                    return
                self.metrics.timeouts += 1
                self.events.record(
                    ev.TIMEOUT,
                    f"group {group_index}: not all instances connected",
                    proxy=self.name,
                )
                await self._teardown_group(group)
                return
            await self._run_group(group, group_index)
        else:
            # Non-canonical connections stay open for the group's lifetime;
            # if the group never completes, give up after the timeout (a
            # grace period on top of the canonical handler's, so a
            # degraded-formation decision wins the race).
            try:
                await asyncio.wait_for(
                    group.complete.wait(),
                    timeout=self.config.exchange_timeout * 1.5 + 0.1,
                )
            except asyncio.TimeoutError:
                if not group.complete.is_set():
                    await self._teardown_group(group)
                    return
            await group.finished.wait()

    async def _teardown_group(self, group: _ConnectionGroup) -> None:
        group.finished.set()
        for writer in group.writers:
            if writer is not None:
                await close_writer(writer)

    # ------------------------------------------------------------ exchange

    async def _run_group(self, group: _ConnectionGroup, group_index: int) -> None:
        # ``indices`` keeps each member's original instance index; a
        # degraded group (formation or mid-exchange drop) simply has
        # fewer entries than ``instance_count``.
        indices = [i for i, r in enumerate(group.readers) if r is not None]
        readers = [r for r in group.readers if r is not None]
        writers = [w for w in group.writers if w is not None]
        assert len(readers) >= 2
        states = [self.protocol.new_connection_state() for _ in readers]
        backend = _BackendLink(self.protocol.new_connection_state())
        try:
            # ``vote`` (the status quo) dials eagerly and fails the whole
            # group fast; containing modes dial lazily per exchange so a
            # dead backend degrades into framed responses instead.
            if self.edge.mode == "vote":
                await self._ensure_backend(backend)
            while True:
                trace = self.observer.begin_exchange(
                    proxy=self.name,
                    protocol=self.protocol.name,
                    direction="outgoing",
                    exchange=self._exchange_counter,
                    sampler=self._sampler,
                )
                try:
                    stop = await self._run_group_exchange(
                        group_index,
                        readers,
                        writers,
                        indices,
                        states,
                        backend,
                        trace,
                    )
                finally:
                    self.observer.finish_exchange(trace)
                if stop:
                    return
        except CircuitOpenError as error:
            # Fast-fail: the backend breaker is open, so the group is torn
            # down immediately instead of burning the full retry budget.
            self.events.record(
                ev.CIRCUIT, f"group {group_index}: {error}", proxy=self.name
            )
        except (ConnectionClosed, ConnectionError, asyncio.TimeoutError) as error:
            self.events.record(
                ev.INSTANCE_ERROR, f"group {group_index}: {error}", proxy=self.name
            )
        finally:
            group.finished.set()
            for writer in writers:
                await close_writer(writer)
            if backend.writer is not None:
                await close_writer(backend.writer)

    async def _ensure_backend(self, backend: _BackendLink) -> None:
        """Dial the backend if this group has no live connection.

        Redials (every dial after the group's first) draw down the
        edge's ``retry_budget``; once exhausted, a single attempt is
        made per exchange — budget propagation guarantees a flapping
        leaf cannot turn an upstream edge into a retry storm.
        """
        if backend.writer is not None:
            return
        attempts = self.config.connect_attempts
        if self.edge.retry_budget is not None:
            remaining = max(0, self.edge.retry_budget - self._redials_used)
            attempts = max(1, min(attempts, 1 + remaining))
        try:
            backend.reader, backend.writer = await open_connection_retry(
                *self.backend,
                attempts=attempts,
                max_delay=self.config.connect_backoff_max,
                breaker=self.breaker,
            )
        finally:
            if self.edge.retry_budget is not None:
                self._redials_used += max(0, attempts - 1)
        backend.state = self.protocol.new_connection_state()

    async def _run_group_exchange(
        self,
        group_index: int,
        readers: list[asyncio.StreamReader],
        writers: list[asyncio.StreamWriter],
        indices: list[int],
        states: list[object],
        backend: _BackendLink,
        trace: ExchangeTrace,
    ) -> bool:
        """One outgoing exchange; returns True when the group is done.

        ``readers``/``writers``/``indices``/``states`` are parallel lists
        describing the group's surviving members; degradation removes
        entries from all four in place.
        """
        with trace.span("collect") as collect:
            requests, late = await self._gather_requests(
                readers, indices, states, trace, collect
            )
        degraded = False
        if late:
            if self.config.degradation_allowed(len(readers), len(readers) - len(late)):
                self._degrade_group(
                    group_index, readers, writers, indices, states, late,
                    "missed deadline",
                )
                requests = [r for p, r in enumerate(requests) if p not in late]
                degraded = True
            else:
                self.metrics.timeouts += 1
                trace.set_verdict("timeout", "missing/late instance request")
                await self._record_block(group_index, "missing/late instance request")
                return True
        if all(request is None for request in requests):
            trace.discard = True  # all instances closed cleanly; not an exchange
            return True
        if any(request is None for request in requests):
            closed = [p for p, r in enumerate(requests) if r is None]
            if self.config.degradation_allowed(len(readers), len(readers) - len(closed)):
                self._degrade_group(
                    group_index, readers, writers, indices, states, closed,
                    "closed while peers kept talking",
                )
                requests = [r for r in requests if r is not None]
                degraded = True
            else:
                trace.set_verdict(
                    "divergent", "instance closed while peers kept talking"
                )
                await self._record_block(
                    group_index, "instance closed while peers kept talking"
                )
                return True
        exchange = self._exchange_counter
        self._exchange_counter += 1
        self.metrics.exchanges_total += 1
        trace.exchange = exchange

        # Execution index: strip the (instance-identical) envelope before
        # diffing, then derive this hop's child index.  The stripped form
        # is what gets compared and forwarded.
        parent: ExecutionIndex | None = None
        child: ExecutionIndex | None = None
        if self._index_enabled:
            token: str | None = None
            stripped: list[bytes | None] = []
            for request in requests:
                if request is None:
                    stripped.append(None)
                    continue
                found, bare = self.protocol.extract_index(request)
                if token is None:
                    token = found
                stripped.append(bare)
            requests = stripped
            parent = ExecutionIndex.parse(token)
            base = parent if parent is not None else ExecutionIndex.origin(
                f"{self.name}-{exchange:06d}"
            )
            child = base.child(self.name, exchange)
            if trace.sampled:
                trace.root.attrs["exec_index"] = child.encode()

        # Per-exchange backend deadline: the edge's share composed with
        # whatever budget the parent hop passed down.
        budget = self.config.exchange_timeout
        if self.edge.deadline_s is not None:
            budget = min(budget, self.edge.deadline_s)
        if parent is not None and parent.deadline_s is not None:
            budget = min(budget, parent.deadline_s)

        if self.edge.mode == "shed":
            await self._serve_containment(
                group_index, writers, trace, "shed", "edge policy: shed"
            )
            return False

        if self.edge.diffs:
            with trace.span("merge") as merge:
                verdict = self._analyse(
                    [r for r in requests if r is not None], exchange, trace, merge
                )
            if verdict is not None:
                trace.set_verdict("divergent", verdict)
                await self._record_block(group_index, verdict)
                return True

        canonical_position = (
            indices.index(self.config.canonical_instance)
            if self.config.canonical_instance in indices
            else 0
        )
        canonical = requests[canonical_position]
        assert canonical is not None
        if child is not None:
            # Re-attach with the *remaining* budgets so the next hop
            # inherits only this edge's share.
            retries = None
            if self.edge.retry_budget is not None:
                retries = max(0, self.edge.retry_budget - self._redials_used)
            canonical = self.protocol.attach_index(
                canonical,
                child.with_budget(deadline_s=budget, retries=retries).encode(),
            )
        try:
            if backend.writer is None:
                await self._ensure_backend(backend)
            with trace.span("backend"):
                backend.writer.write(canonical)
                await drain_write(backend.writer)
                started = time.monotonic()

                if not self.protocol.expects_response(canonical, backend.state):
                    trace.set_verdict("oneway")
                    return False
                response = await asyncio.wait_for(
                    self.protocol.read_server_message(
                        backend.reader, backend.state, canonical
                    ),
                    timeout=budget,
                )
        except CircuitOpenError:
            if not self.edge.contains_failure:
                raise
            await self._drop_backend(backend)
            await self._serve_containment(
                group_index, writers, trace, self.edge.on_failure,
                "backend circuit open",
            )
            return False
        except _BACKEND_FAILURES as error:
            if not self.edge.contains_failure:
                raise
            await self._drop_backend(backend)
            reason = (
                f"backend {type(error).__name__}: {error}"
                if str(error)
                else f"backend {type(error).__name__}"
            )
            await self._serve_containment(
                group_index, writers, trace, self.edge.on_failure, reason
            )
            return False
        # Pipelined fan-back: buffer every member's write, then drain all
        # — the merge-back costs the slowest member, not the sum.  A
        # member that dies mid-fan-back degrades the group (when quorum
        # allows) exactly as a failed read would; below quorum the whole
        # group tears down, as the sequential path did.
        with trace.span("fan-back") as fan_back:
            for position, writer in enumerate(writers):
                with trace.span("send", parent=fan_back, instance=indices[position]):
                    writer.write(response)
            fan_back_failed: list[int] = []
            for position, writer in enumerate(writers):
                try:
                    await drain_write(writer)
                except ConnectionClosed:
                    fan_back_failed.append(position)
        if fan_back_failed:
            survivors = len(writers) - len(fan_back_failed)
            if not self.config.degradation_allowed(len(writers), survivors):
                raise ConnectionClosed(
                    f"instance {indices[fan_back_failed[0]]} connection lost "
                    "during fan-back"
                )
            self._degrade_group(
                group_index, readers, writers, indices, states,
                fan_back_failed, "connection lost during fan-back",
            )
            degraded = True
        self.metrics.latency.observe(time.monotonic() - started)
        trace.set_verdict("degraded" if degraded else "unanimous")
        self.events.record(
            ev.EXCHANGE_OK,
            "unanimous (degraded quorum)" if degraded else "unanimous",
            proxy=self.name,
            exchange=exchange,
        )
        if self.protocol.terminal_response(response):
            # The backend ended the session in-band (e.g. a FATAL from a
            # downstream hop's block): fan-back is done, now propagate
            # the close so upstream hops see it too.
            return True
        return False

    def _degrade_group(
        self,
        group_index: int,
        readers: list[asyncio.StreamReader],
        writers: list[asyncio.StreamWriter],
        indices: list[int],
        states: list[object],
        positions: list[int],
        why: str,
    ) -> None:
        """Drop the members at ``positions`` and keep the group serving."""
        self.metrics.degraded_exchanges += 1
        for position in sorted(positions, reverse=True):
            self.events.record(
                ev.DEGRADED,
                f"group {group_index}: instance {indices[position]} dropped: {why}",
                proxy=self.name,
            )
            writer = writers[position]
            writer.close()  # waited on via close_writer at group teardown
            del readers[position], writers[position], indices[position], states[position]

    async def _gather_requests(
        self,
        readers: list[asyncio.StreamReader],
        indices: list[int],
        states: list[object],
        trace: ExchangeTrace,
        parent,
    ) -> tuple[list[bytes | None], list[int]]:
        """One request per member, plus the positions that missed the
        per-instance deadline (their entries are ``None``)."""

        async def read_one(
            instance: int, reader: asyncio.StreamReader, state: object
        ) -> bytes | None:
            with trace.span("recv", parent=parent, instance=instance):
                return await self.protocol.read_client_message(reader, state)

        tasks = [
            asyncio.ensure_future(read_one(indices[position], reader, state))
            for position, (reader, state) in enumerate(zip(readers, states))
        ]
        # An idle group is benign: wait indefinitely for the *first*
        # instance to speak (or hang up).  Once one has, the rest must
        # follow within the per-instance deadline — a missing request is
        # the smuggling/divergence signature.
        await asyncio.wait(tasks, return_when=asyncio.FIRST_COMPLETED)
        remaining = [task for task in tasks if not task.done()]
        late: list[int] = []
        if remaining:
            _, pending = await asyncio.wait(
                remaining, timeout=self.config.instance_deadline()
            )
            if pending:
                late = [p for p, task in enumerate(tasks) if task in pending]
                for task in pending:
                    task.cancel()
                await asyncio.gather(*pending, return_exceptions=True)
        return (
            [None if task.cancelled() else task.result() for task in tasks],
            late,
        )

    def _analyse(
        self, requests: list[bytes], exchange: int, trace: ExchangeTrace, parent
    ) -> str | None:
        with trace.span("denoise", parent=parent) as denoise:
            raw_tokens = [self.protocol.tokenize(request) for request in requests]
            tokens = self._variance.mask_streams(raw_tokens)
            mask = self._denoiser.mask_for(tokens)
            if mask.token_ranges or mask.tail_from is not None:
                self.metrics.noise_filtered_tokens += len(mask.token_ranges)
                denoise.attrs["masked_tokens"] = len(mask.token_ranges)
                self.events.record(
                    ev.NOISE_FILTERED,
                    f"{len(mask.token_ranges)} token(s) masked",
                    proxy=self.name,
                    exchange=exchange,
                )
        with trace.span("diff", parent=parent) as diff_span:
            result = diff_tokens(tokens, mask)
            diff_span.attrs["divergent"] = result.divergent
        if result.divergent:
            self.metrics.divergences += 1
            return result.reason
        return None

    async def _record_block(self, group_index: int, reason: str) -> None:
        self.metrics.exchanges_blocked += 1
        self.events.record(
            ev.DIVERGENCE, f"group {group_index}: {reason}", proxy=self.name
        )

    # ------------------------------------------------ cascade containment

    async def _drop_backend(self, backend: _BackendLink) -> None:
        """Close a failed backend connection; the next contained exchange
        redials it (within the edge's retry budget)."""
        if backend.writer is not None:
            await close_writer(backend.writer)
        backend.reader = backend.writer = None
        backend.state = self.protocol.new_connection_state()

    async def _serve_containment(
        self,
        group_index: int,
        writers: list[asyncio.StreamWriter],
        trace: ExchangeTrace,
        verdict: str,
        reason: str,
    ) -> None:
        """Answer every group member with the protocol's framed
        degrade/shed response and keep the group alive — the downstream
        failure maps to a policy verdict upstream, never a raw timeout
        or teardown cascading up the call tree."""
        payload = containment_response(self.protocol, reason)
        for writer in writers:
            with contextlib.suppress(Exception):
                writer.write(payload)
        for writer in writers:
            with contextlib.suppress(ConnectionClosed, ConnectionError, OSError):
                await drain_write(writer)
        mapped = "shed" if verdict == "shed" else "backend_degraded"
        trace.set_verdict(mapped, reason)
        if mapped == "shed":
            self.metrics.exchanges_shed += 1
            self.events.record(
                ev.SHED, f"group {group_index}: {reason}", proxy=self.name
            )
        else:
            self.metrics.degraded_exchanges += 1
            self.events.record(
                ev.DEGRADED, f"group {group_index}: {reason}", proxy=self.name
            )
