"""The RDDR Incoming Request Proxy (paper section IV-B).

Sits between clients and the N instances of the protected microservice.
For every client request it: **Replicates** the request to all instances
(substituting per-instance ephemeral state), collects their responses,
**De-noises** them with the filter pair, **Diffs** the token streams, and
**Responds** — forwarding the canonical instance's bytes when unanimous,
or serving the intervention response and closing the connection when
divergent.

Beyond the paper's core design, two section IV-D extensions are
implemented behind configuration flags:

* ``signature_learning`` — divergence-signature generation: requests
  matching a previously diverging request pattern are rejected *before*
  replication, defeating the repeat-the-exploit DoS amplifier;
* ``divergence_policy="vote"`` (with optional ``quarantine_minority``) —
  classic N-version voting: when a strict majority of instances agree,
  their response is forwarded and, optionally, the outvoted instances
  are dropped from the connection.

Two robustness extensions (see ``docs/robustness.md``):

* an :class:`~repro.recovery.InstanceDirectory` makes instance addresses
  *swappable*: the proxy snapshots the directory between exchanges (never
  mid-exchange) and re-dials changed or rejoining instances.  A
  ``shadow``-mode (REJOINING) instance receives every replicated request
  and has its response compared, but its vote cannot influence the
  verdict and its failures cannot degrade the exchange;
* admission control (``max_concurrent_exchanges`` +
  ``admission_queue_limit``) bounds the exchanges in flight and *sheds*
  the overflow with a fast-fail response instead of stalling every
  client.
"""

from __future__ import annotations

import asyncio
import contextlib
import ssl
import time
from dataclasses import dataclass

from repro.core import events as ev
from repro.core.config import RddrConfig
from repro.core.denoise import FilterPairDenoiser, learn_noise_mask
from repro.core.diff import EMPTY_MASK, diff_tokens
from repro.core.ephemeral import EphemeralStateStore
from repro.core.events import EventLog
from repro.core.metrics import ProxyMetrics
from repro.core.signatures import SignatureStore
from repro.core.variance import VarianceMasker
from repro.graph.index import ExecutionIndex
from repro.journal import (
    ExchangeJournal,
    GroupCommitBatcher,
    capture_snapshot,
    response_digest,
    supports_snapshots,
)
from repro.journal.log import FLAG_DEGRADED, FLAG_MAJORITY
from repro.obs import ExchangeTrace, Observer, TraceSampler, active_observer
from repro.protocols.base import ProtocolModule, capabilities_of, resolve
from repro.recovery.admission import AdmissionController
from repro.recovery.directory import MODE_OUT, MODE_SHADOW, InstanceDirectory
from repro.transport.retry import open_connection_retry
from repro.transport.server import ServerHandle, start_server
from repro.transport.streams import ConnectionClosed, close_writer, drain_write

Address = tuple[str, int]


@dataclass
class _InstanceLink:
    """One live connection to one instance, keeping its original index."""

    index: int
    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    #: Shadow (REJOINING) links replicate and compare but never vote.
    shadow: bool = False
    #: The endpoint this link was dialed to (for directory refreshes).
    address: Address | None = None


@dataclass
class _ReadFailure:
    """One instance's failed response read within an exchange."""

    kind: str  # "deadline" or "lost"
    detail: str


class IncomingRequestProxy:
    """N-versioning proxy for client-initiated traffic."""

    def __init__(
        self,
        instances: list[Address],
        protocol: ProtocolModule | str,
        config: RddrConfig | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        name: str = "rddr-incoming",
        event_log: EventLog | None = None,
        metrics: ProxyMetrics | None = None,
        observer: Observer | None = None,
        server_ssl: ssl.SSLContext | None = None,
        instance_ssl: ssl.SSLContext | None = None,
        directory: InstanceDirectory | None = None,
        journal: ExchangeJournal | None = None,
        propagate_index: bool = False,
    ) -> None:
        if len(instances) < 2:
            raise ValueError("N-versioning requires at least 2 instances")
        self.instances = list(instances)
        self.protocol = resolve(protocol)
        protocol = self.protocol
        self.config = config or RddrConfig(protocol=protocol.name)
        if self.config.divergence_policy not in ("block", "vote"):
            raise ValueError(
                f"unknown divergence policy {self.config.divergence_policy!r}"
            )
        self.host = host
        self.port = port
        self.name = name
        self.directory = directory
        # Explicit None checks: an empty EventLog is falsy (it has __len__).
        self.observer = (
            observer if observer is not None else (active_observer() or Observer())
        )
        self.events = (
            event_log if event_log is not None else EventLog(observer=self.observer)
        )
        self.metrics = (
            metrics
            if metrics is not None
            else self.observer.proxy_metrics(name, protocol.name)
        )
        self.server_ssl = server_ssl
        self.instance_ssl = instance_ssl
        self.handle: ServerHandle | None = None
        self._denoiser = FilterPairDenoiser(self.config.filter_pair_obj())
        self._variance = VarianceMasker(self.config.variance_rules)
        self._ephemeral = EphemeralStateStore(
            instance_count=len(instances),
            min_length=self.config.ephemeral_min_length,
            canonical_instance=self.config.canonical_instance,
        )
        self.signatures = SignatureStore(ttl=self.config.signature_ttl)
        self._admission = AdmissionController(
            self.config.max_concurrent_exchanges,
            self.config.admission_queue_limit,
        )
        self._exchange_counter = 0
        #: Deterministic trace sampling: exchanges the sampler drops run
        #: the allocation-free null-trace path (zero Span objects).
        self._sampler = TraceSampler(
            self.config.trace_sample_rate, self.config.trace_sample_seed
        )
        #: Durable exchange journal (None = journaling off).  Appended at
        #: commit time, *before* the client drain, so a client disconnect
        #: cannot lose an exchange the instances already applied.
        self.journal = journal
        #: Execution index (encoded token) of the newest journal-committed
        #: exchange — the anti-entropy sentinel stamps it into ``drift``
        #: trace records so drift findings stitch into the call trees
        #: (None until an indexed exchange commits).
        self.last_exec_index: str | None = None
        #: Group commit: appends landing within ``journal_group_commit_ms``
        #: share one fsync; each caller still ACKs only after durability.
        self._group_commit = (
            GroupCommitBatcher(
                journal, window_s=self.config.journal_group_commit_ms / 1000.0
            )
            if journal is not None
            else None
        )
        self._snapshot_task: asyncio.Task | None = None
        #: Optional per-exchange protocol hooks, resolved once from the
        #: declared capabilities instead of a getattr per exchange.
        caps = capabilities_of(protocol)
        self._finish_hook = protocol.finish_exchange if caps.finish_exchange else None
        #: Execution-index propagation (repro.graph): extract the parent
        #: index from each client request and tag this hop's child index
        #: into traces/journal events.  Off unless the config enables it
        #: *and* the protocol implements the contract-1.2 pair — when
        #: off, the exchange hot path never touches the hooks.
        self._index_enabled = bool(self.config.execution_index) and caps.execution_index
        #: Re-attach the child index to replicated requests, so instances
        #: that relay toward an outgoing proxy carry the index onward
        #: (set by RddrDeployment when the deployment has outgoing
        #: proxies; leaf hops replicate the stripped request untouched).
        self._propagate_index = propagate_index and self._index_enabled

    # ------------------------------------------------------------ lifecycle

    @property
    def address(self) -> Address:
        if self.handle is None:
            raise RuntimeError("proxy not started")
        return self.handle.address

    async def start(self) -> ServerHandle:
        self.handle = await start_server(
            self._serve_client,
            self.host,
            self.port,
            name=self.name,
            ssl_context=self.server_ssl,
        )
        self.port = self.handle.port
        return self.handle

    async def close(self) -> None:
        if self.handle is not None:
            await self.handle.close()
        if self._group_commit is not None:
            await self._group_commit.close()
        if self._snapshot_task is not None:
            self._snapshot_task.cancel()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await self._snapshot_task
            self._snapshot_task = None

    # ------------------------------------------------------------ serving

    async def _serve_client(
        self, client_reader: asyncio.StreamReader, client_writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.connections_total += 1
        connected = await self._connect_instances(client_writer)
        if connected is None:
            return
        links, version = connected
        state = self.protocol.new_connection_state()
        await self._exchange_loop(client_reader, client_writer, links, state, version)

    async def _dial(self, address: Address):
        return await open_connection_retry(
            *address,
            attempts=self.config.connect_attempts,
            max_delay=self.config.connect_backoff_max,
            ssl_context=self.instance_ssl,
        )

    async def _connect_instances(
        self, client_writer: asyncio.StreamWriter
    ) -> tuple[list[_InstanceLink], int] | None:
        """Dial every instance (bounded retry-with-backoff per endpoint).

        With a directory, the dial set is its current snapshot: ``out``
        instances are skipped and ``shadow`` ones join as non-voting
        links.  On partial failure, either degrade onto the surviving
        majority or — closing the connections that *did* open so they
        cannot leak — serve the intervention response and close the
        client cleanly.
        """
        version = 0
        if self.directory is None:
            dialable = [
                _InstanceLink(index=i, reader=None, writer=None, address=address)  # type: ignore[arg-type]
                for i, address in enumerate(self.instances)
            ]
        else:
            version, entries = self.directory.snapshot()
            dialable = [
                _InstanceLink(
                    index=entry.index,
                    reader=None,  # type: ignore[arg-type]
                    writer=None,  # type: ignore[arg-type]
                    shadow=entry.mode == MODE_SHADOW,
                    address=entry.address,
                )
                for entry in entries
                if entry.mode != MODE_OUT
            ]
        results = await asyncio.gather(
            *(self._dial(link.address) for link in dialable),
            return_exceptions=True,
        )
        if any(isinstance(result, asyncio.CancelledError) for result in results):
            for result in results:
                if not isinstance(result, BaseException):
                    await close_writer(result[1])
            raise asyncio.CancelledError
        links: list[_InstanceLink] = []
        voter_failed: list[tuple[int, BaseException]] = []
        for link, result in zip(dialable, results):
            if isinstance(result, BaseException):
                if link.shadow:
                    # A rejoining instance that cannot be dialed never
                    # blocks the exchange; tell the supervisor instead.
                    self._report_failure(
                        link.index, f"shadow connect failed: {result}"
                    )
                    continue
                voter_failed.append((link.index, result))
                continue
            link.reader, link.writer = result
            links.append(link)
        if not voter_failed:
            return links, version
        voter_total = len([link for link in dialable if not link.shadow])
        voters = sum(1 for link in links if not link.shadow)
        if self.config.degradation_allowed(voter_total, voters):
            for index, error in voter_failed:
                self.events.record(
                    ev.DEGRADED,
                    f"instance {index} dropped at connect: {error}",
                    proxy=self.name,
                )
                self._report_failure(index, f"connect failed: {error}")
            return links, version
        for link in links:
            await close_writer(link.writer)
        index, error = voter_failed[0]
        self.events.record(
            ev.INSTANCE_ERROR,
            f"connect failed: instance {index}: {error}",
            proxy=self.name,
        )
        self._report_failure(index, f"connect failed: {error}")
        block = self.protocol.block_response(self.config.block_message)
        if block:
            with contextlib.suppress(Exception):
                client_writer.write(block)
                await drain_write(client_writer)
        await close_writer(client_writer)
        return None

    def _report_failure(self, index: int, reason: str, *, fatal: bool = False) -> None:
        if self.directory is not None:
            self.directory.report_failure(index, reason, fatal=fatal)

    async def _exchange_loop(
        self,
        client_reader: asyncio.StreamReader,
        client_writer: asyncio.StreamWriter,
        links: list[_InstanceLink],
        state: object,
        version: int,
    ) -> None:
        try:
            while True:
                request = await self.protocol.read_client_message(
                    client_reader, state
                )
                if request is None:
                    return
                exec_token: str | None = None
                if self._index_enabled:
                    # Strip the upstream hop's index before anything else
                    # sees the request: signature matching, ephemeral
                    # rewriting, journaling, and the diff all operate on
                    # the caller's actual payload.
                    exec_token, request = self.protocol.extract_index(request)
                if self.directory is not None:
                    # The atomic swap point: adopt directory changes only
                    # at an exchange boundary, never mid-exchange.
                    links, version = await self._refresh_links(links, version)
                admitted = await self._admission.acquire()
                if not admitted:
                    await self._shed(client_writer)
                    return
                try:
                    exchange = self._exchange_counter
                    self._exchange_counter += 1
                    self.metrics.exchanges_total += 1
                    self.metrics.bytes_from_clients += len(request)
                    index = (
                        self._hop_index(exec_token, exchange)
                        if self._index_enabled
                        else None
                    )
                    trace = self.observer.begin_exchange(
                        proxy=self.name,
                        protocol=self.protocol.name,
                        direction="incoming",
                        exchange=exchange,
                        sampler=self._sampler,
                    )
                    try:
                        survivors = await self._run_exchange(
                            request, client_writer, links, state, exchange, trace,
                            version, index=index,
                        )
                    finally:
                        self.observer.finish_exchange(trace)
                finally:
                    self._admission.release()
                if survivors is None:
                    return
                links = survivors
        finally:
            # Closing an already-closed writer is a no-op, so this safely
            # covers links dropped (and closed) mid-exchange too.
            for link in links:
                await close_writer(link.writer)

    def _hop_index(self, token: str | None, exchange: int) -> ExecutionIndex:
        """This hop's child execution index for one exchange.

        A parseable upstream token extends the caller's call path (and
        inherits its deadline/retry budgets); anything else — no token,
        or a malformed one — starts a fresh root here, so a corrupt
        header degrades to per-hop tracing instead of failing the
        exchange.
        """
        parent = ExecutionIndex.parse(token) if token else None
        if parent is None:
            parent = ExecutionIndex.origin(f"{self.name}-{exchange:06d}")
        return parent.child(self.name, exchange)

    async def _refresh_links(
        self, links: list[_InstanceLink], version: int
    ) -> tuple[list[_InstanceLink], int]:
        """Reconcile this connection's links with the directory snapshot:
        drop ``out`` instances, re-dial swapped addresses, and admit
        (re)joining instances — all between exchanges."""
        new_version, entries = self.directory.snapshot()
        if new_version == version:
            return links, version
        by_index = {link.index: link for link in links}
        for entry in entries:
            link = by_index.get(entry.index)
            if entry.mode == MODE_OUT:
                if link is not None:
                    await close_writer(link.writer)
                    del by_index[entry.index]
                continue
            if link is not None and link.address != entry.address:
                await close_writer(link.writer)
                del by_index[entry.index]
                link = None
            if link is None:
                try:
                    reader, writer = await self._dial(entry.address)
                except (ConnectionError, OSError) as error:
                    self._report_failure(
                        entry.index, f"redial failed: {error}"
                    )
                    continue
                by_index[entry.index] = _InstanceLink(
                    index=entry.index,
                    reader=reader,
                    writer=writer,
                    shadow=entry.mode == MODE_SHADOW,
                    address=entry.address,
                )
            else:
                link.shadow = entry.mode == MODE_SHADOW
        return sorted(by_index.values(), key=lambda link: link.index), new_version

    async def _shed(self, client_writer: asyncio.StreamWriter) -> None:
        """Fast-fail an exchange rejected by admission control."""
        self.metrics.exchanges_shed += 1
        self.events.record(
            ev.SHED,
            f"admission queue full ({self._admission.active} active, "
            f"{self._admission.waiting} waiting)",
            proxy=self.name,
        )
        trace = self.observer.begin_exchange(
            proxy=self.name,
            protocol=self.protocol.name,
            direction="incoming",
            exchange=self._exchange_counter,
            sampler=self._sampler,
        )
        trace.set_verdict("shed", "admission control")
        self.observer.finish_exchange(trace)
        shed = self.protocol.block_response(self.config.shed_message)
        if shed:
            with contextlib.suppress(Exception):
                client_writer.write(shed)
                await drain_write(client_writer)
        await close_writer(client_writer)

    async def _run_exchange(
        self,
        request: bytes,
        client_writer: asyncio.StreamWriter,
        links: list[_InstanceLink],
        state: object,
        exchange: int,
        trace: ExchangeTrace,
        version: int = 0,
        index: ExecutionIndex | None = None,
    ) -> list[_InstanceLink] | None:
        """One exchange; returns the surviving links, or ``None`` to stop
        serving this client connection."""
        started = time.monotonic()
        if trace.sampled:  # sampled-out: skip even building the lists
            trace.root.attrs["voters"] = [
                link.index for link in links if not link.shadow
            ]
            if any(link.shadow for link in links):
                trace.root.attrs["shadow"] = [
                    link.index for link in links if link.shadow
                ]
            if index is not None:
                trace.root.attrs["exec_index"] = index.encode()

        # Section IV-D: reject remembered diverging inputs outright.
        if self.config.signature_learning:
            signature = self.signatures.match(request)
            if signature is not None:
                self.events.record(
                    ev.SIGNATURE_BLOCKED,
                    f"matched signature learned for: {signature.reason}",
                    proxy=self.name,
                    exchange=exchange,
                )
                trace.set_verdict("blocked_signature", signature.reason)
                await self._block(client_writer, links, exchange, None)
                return None

        # Replicate, substituting each instance's own ephemeral state.
        # Pipelined: buffer every link's write first (StreamWriter.write is
        # synchronous), then drain all links while the kernel pushes them
        # concurrently — replication costs the *slowest* link, not the sum.
        # Instances that relay onward (non-leaf hops) receive the request
        # with this hop's child index re-attached; everything *else* in
        # this exchange — journal, diff, signatures — uses the stripped
        # request.
        wire_request = request
        if self._propagate_index and index is not None:
            wire_request = self.protocol.attach_index(request, index.encode())
        with trace.span("replicate") as replicate:
            send_failed: list[_InstanceLink] = []
            for link in links:
                payload = wire_request
                if self.config.ephemeral_state:
                    payload = self._ephemeral.rewrite_for_instance(
                        wire_request, link.index
                    )
                    if payload != wire_request:
                        self.events.record(
                            ev.EPHEMERAL_REWRITTEN,
                            f"instance {link.index}",
                            proxy=self.name,
                            exchange=exchange,
                        )
                with trace.span("send", parent=replicate, instance=link.index):
                    link.writer.write(payload)
            for link in links:
                try:
                    await drain_write(link.writer)
                except ConnectionClosed:
                    send_failed.append(link)
        degraded = False
        shadow_failed = [link for link in send_failed if link.shadow]
        for link in shadow_failed:
            self._report_failure(
                link.index, "shadow connection lost during replicate"
            )
            await close_writer(link.writer)
            links = [item for item in links if item is not link]
        send_failed = [link for link in send_failed if not link.shadow]
        if send_failed:
            survivors = [link for link in links if link not in send_failed]
            voter_total = sum(1 for link in links if not link.shadow)
            voter_survivors = sum(1 for link in survivors if not link.shadow)
            if self.config.degradation_allowed(voter_total, voter_survivors):
                await self._drop_links(
                    send_failed, exchange, "connection lost during replicate"
                )
                links = survivors
                degraded = True
            else:
                reason = f"instance {send_failed[0].index} connection lost"
                trace.set_verdict("instance_error", reason)
                await self._block(
                    client_writer, links, exchange, reason, request=request
                )
                return None
        if self.config.ephemeral_state:
            self._ephemeral.consume_used(request)

        if not self.protocol.expects_response(request, state):
            trace.set_verdict("oneway")
            await self._journal_commit(
                request, b"", version,
                flags=FLAG_DEGRADED if degraded else 0, index=index,
            )
            return links

        # Deadline propagation: an upstream hop's remaining budget caps
        # this hop's per-instance read deadline, so a slow leaf times out
        # *here* instead of stacking full local deadlines per hop.
        deadline = self.config.instance_deadline()
        if index is not None and index.deadline_s is not None:
            deadline = min(deadline, index.deadline_s)
        outcome = await self._gather_responses(
            links, state, request, exchange, trace,
            degraded=degraded, deadline=deadline,
        )
        if outcome is None:
            await self._block(
                client_writer, links, exchange, "instance failure/timeout",
                request=request,
            )
            return None
        responses, links, degraded = outcome
        voters = [p for p, link in enumerate(links) if not link.shadow]

        verdict, masked = self._analyse(responses, links, exchange, trace)
        if verdict is not None:
            trace.set_verdict("divergent", verdict)
            if self.config.divergence_policy == "vote" and len(voters) >= 3:
                majority_rel = _majority_indices([masked[p] for p in voters])
                if majority_rel is not None:
                    majority = [voters[i] for i in majority_rel]
                    trace.set_verdict("vote_majority", verdict)
                    flags = FLAG_MAJORITY | (FLAG_DEGRADED if degraded else 0)
                    await self._journal_commit(
                        request, responses[majority[0]], version,
                        flags=flags, index=index,
                    )
                    # Report shadows against the pre-vote positions: a
                    # quarantined minority shifts link positions below.
                    self._report_shadows(links, masked, majority[0], exchange)
                    links = await self._vote_respond(
                        client_writer,
                        links,
                        responses,
                        majority,
                        voters,
                        exchange,
                        verdict,
                    )
                    if links is None:
                        return None
                    self.metrics.latency.observe(time.monotonic() - started)
                    self._finish_exchange(state)
                    if self.protocol.terminal_response(responses[majority[0]]):
                        return None
                    return links
            await self._block(
                client_writer, links, exchange, verdict, request=request
            )
            return None

        canonical_position = self._position_for(
            links, self.config.canonical_instance
        )
        canonical = responses[canonical_position]
        await self._journal_commit(
            request, canonical, version,
            flags=FLAG_DEGRADED if degraded else 0, index=index,
        )
        self.metrics.bytes_to_clients += len(canonical)
        with trace.span("respond"):
            client_writer.write(canonical)
            try:
                await drain_write(client_writer)
            except ConnectionClosed:
                trace.set_verdict("client_closed")
                return None
        self._report_shadows(links, masked, canonical_position, exchange)
        self.metrics.latency.observe(time.monotonic() - started)
        if degraded:
            trace.set_verdict("degraded", "served on surviving majority")
            self.events.record(
                ev.EXCHANGE_OK,
                "unanimous (degraded quorum)",
                proxy=self.name,
                exchange=exchange,
            )
        else:
            trace.set_verdict("unanimous")
            self.events.record(
                ev.EXCHANGE_OK, "unanimous", proxy=self.name, exchange=exchange
            )
        self._finish_exchange(state)
        if self.protocol.terminal_response(canonical):
            # The relayed unit ends the session by protocol convention
            # (e.g. a FATAL forwarded up a chain): propagate the close
            # instead of leaving the client waiting on a dead cycle.
            return None
        return links

    def _finish_exchange(self, state: object) -> None:
        if self._finish_hook is not None:
            self._finish_hook(state)

    # ---------------------------------------------------------- journaling

    async def _journal_commit(
        self,
        request: bytes,
        response: bytes,
        version: int,
        *,
        flags: int = 0,
        index: ExecutionIndex | None = None,
    ) -> None:
        """Append one committed state-mutating exchange to the journal.

        Only exchanges the proxy actually *served* reach this point —
        blocked/divergent ones never mutate journaled history.  Reads
        (per the protocol's ``mutates_state``) are skipped.  Returns only
        once the record is durable: immediately with per-record fsync,
        after the shared group-commit barrier when
        ``journal_group_commit_ms`` is set.
        """
        if self._group_commit is None or not self.protocol.mutates_state(request):
            return
        record = await self._group_commit.append(
            request,
            digest=response_digest(response),
            directory_version=version,
            flags=flags,
        )
        if index is not None:
            self.last_exec_index = index.encode()
        self.observer.journal_appended(
            self.name,
            len(record.encode()),
            self.journal.size_bytes,
            exec_index=index.encode() if index is not None else None,
        )
        self._maybe_snapshot()

    def _maybe_snapshot(self) -> None:
        """Kick a background snapshot when the journal outgrows its
        compaction bound (and the protocol can snapshot at all)."""
        if (
            self.journal is None
            or self.journal.size_bytes <= self.journal.compact_bytes
            or not supports_snapshots(self.protocol)
            or (self._snapshot_task is not None and not self._snapshot_task.done())
        ):
            return
        self._snapshot_task = asyncio.create_task(self._take_snapshot())

    async def _take_snapshot(self) -> None:
        """Capture an app snapshot from a live instance and install it.

        The epoch is the newest journaled id *before* the capture is
        sent; a concurrently committed exchange may already be reflected
        in the snapshot (overshoot), which replay tolerates: re-applying
        an already-applied record converges on the same state.
        """
        address = self._snapshot_address()
        if address is None or self.journal is None:
            return
        epoch = self.journal.last_id
        try:
            data = await capture_snapshot(
                address,
                self.protocol,
                deadline=self.config.instance_deadline(),
                connect_attempts=self.config.connect_attempts,
            )
        except (ConnectionError, OSError, asyncio.TimeoutError, ConnectionClosed):
            return
        if self.journal is not None and epoch > 0:
            self.journal.install_snapshot(epoch, data)

    def _snapshot_address(self) -> Address | None:
        """A live (non-shadow) instance address to snapshot from."""
        if self.directory is None:
            return self.instances[self.config.canonical_instance]
        _, entries = self.directory.snapshot()
        for entry in entries:
            if entry.mode not in (MODE_OUT, MODE_SHADOW):
                return entry.address
        return None

    def _position_for(
        self, links: list[_InstanceLink], preferred_index: int
    ) -> int:
        """The position of the preferred original instance, or of the
        first surviving *voter* if the preferred one is gone or shadow."""
        fallback: int | None = None
        for position, link in enumerate(links):
            if link.shadow:
                continue
            if link.index == preferred_index:
                return position
            if fallback is None:
                fallback = position
        return fallback if fallback is not None else 0

    def _report_shadows(
        self,
        links: list[_InstanceLink],
        masked: list[tuple[bytes, ...]],
        reference_position: int,
        exchange: int,
    ) -> None:
        """Compare each shadow link's masked stream against the served
        response's and report clean/dirty to the supervisor."""
        if self.directory is None:
            return
        for position, link in enumerate(links):
            if not link.shadow or position >= len(masked):
                continue
            clean = masked[position] == masked[reference_position]
            if not clean:
                self.events.record(
                    ev.RECOVERY_STATE,
                    f"instance {link.index}: dirty shadow exchange",
                    proxy=self.name,
                    exchange=exchange,
                )
            self.directory.report_shadow(link.index, clean)

    async def _gather_responses(
        self,
        links: list[_InstanceLink],
        state: object,
        request: bytes,
        exchange: int,
        trace: ExchangeTrace,
        *,
        degraded: bool = False,
        deadline: float | None = None,
    ) -> tuple[list[bytes], list[_InstanceLink], bool] | None:
        """Collect every instance's response under per-instance deadlines.

        Each read is bounded individually, so one dead or straggling
        instance cannot hold the whole exchange hostage: with degraded
        quorum on, the failed instances are dropped and the surviving
        majority's responses are returned; otherwise the exchange ends in
        a timeout/instance_error block exactly as before.  A failed
        *shadow* read never affects the exchange: the shadow link is
        dropped silently and the supervisor notified.

        Returns ``(responses, surviving links, degraded)`` or ``None`` to
        block the exchange.
        """
        if deadline is None:
            deadline = self.config.instance_deadline()

        async def read_from(link: _InstanceLink, parent) -> bytes:
            with trace.span("recv", parent=parent, instance=link.index):
                return await self.protocol.read_server_message(
                    link.reader, state, request
                )

        # One shared deadline timer via asyncio.wait instead of a
        # wait_for wrapper (task + timer) per link: stragglers past the
        # deadline are cancelled and read as "deadline" failures.
        with trace.span("collect") as collect:
            tasks = [
                asyncio.ensure_future(read_from(link, collect)) for link in links
            ]
            if tasks:  # asyncio.wait() rejects an empty set
                try:
                    done, pending = await asyncio.wait(tasks, timeout=deadline)
                except asyncio.CancelledError:
                    for task in tasks:
                        task.cancel()
                    await asyncio.gather(*tasks, return_exceptions=True)
                    raise
                for task in pending:
                    task.cancel()
                if pending:
                    await asyncio.gather(*pending, return_exceptions=True)
            results: list[bytes | _ReadFailure] = []
            for task in tasks:
                if task.cancelled():
                    results.append(
                        _ReadFailure("deadline", f"no response within {deadline}s")
                    )
                    continue
                error = task.exception()
                if error is not None:
                    if isinstance(error, (ConnectionClosed, ConnectionError)):
                        results.append(
                            _ReadFailure("lost", str(error) or "connection lost")
                        )
                        continue
                    # Retrieve the siblings' exceptions before bailing so
                    # they aren't logged as "never retrieved" and lost.
                    for other in tasks:
                        if other is not task and not other.cancelled():
                            other.exception()
                    raise error
                results.append(task.result())

        shadow_failed = [
            position
            for position, result in enumerate(results)
            if isinstance(result, _ReadFailure) and links[position].shadow
        ]
        for position in shadow_failed:
            self._report_failure(
                links[position].index,
                f"shadow read failed: {results[position].detail}",
            )
            await close_writer(links[position].writer)
        if shadow_failed:
            keep = [p for p in range(len(links)) if p not in shadow_failed]
            links = [links[p] for p in keep]
            results = [results[p] for p in keep]

        failed = [
            position
            for position, result in enumerate(results)
            if isinstance(result, _ReadFailure)
        ]
        if not failed:
            return list(results), links, degraded
        survivors = [position for position in range(len(links)) if position not in failed]
        voter_total = sum(1 for link in links if not link.shadow)
        voter_survivors = sum(1 for p in survivors if not links[p].shadow)
        if self.config.degradation_allowed(voter_total, voter_survivors):
            if not degraded:
                self.metrics.degraded_exchanges += 1
            for position in failed:
                self.events.record(
                    ev.DEGRADED,
                    f"instance {links[position].index} dropped: "
                    f"{results[position].detail}",
                    proxy=self.name,
                    exchange=exchange,
                )
                self._report_failure(
                    links[position].index, results[position].detail
                )
                await close_writer(links[position].writer)
            return (
                [results[position] for position in survivors],
                [links[position] for position in survivors],
                True,
            )
        if any(results[position].kind == "deadline" for position in failed):
            reason = f"no unanimous response within {deadline}s"
            trace.set_verdict("timeout", reason)
            self.metrics.timeouts += 1
            self.events.record(ev.TIMEOUT, reason, proxy=self.name, exchange=exchange)
        else:
            reason = "; ".join(
                f"instance {links[position].index}: {results[position].detail}"
                for position in failed
            )
            trace.set_verdict("instance_error", reason)
            self.events.record(
                ev.INSTANCE_ERROR, reason, proxy=self.name, exchange=exchange
            )
        return None

    async def _drop_links(
        self, dropped: list[_InstanceLink], exchange: int, why: str
    ) -> None:
        """Degrade: record and close the dropped instances' connections."""
        self.metrics.degraded_exchanges += 1
        for link in dropped:
            self.events.record(
                ev.DEGRADED,
                f"instance {link.index} dropped: {why}",
                proxy=self.name,
                exchange=exchange,
            )
            self._report_failure(link.index, why)
            await close_writer(link.writer)

    def _analyse(
        self,
        responses: list[bytes],
        links: list[_InstanceLink],
        exchange: int,
        trace: ExchangeTrace,
    ) -> tuple[str | None, list[tuple[bytes, ...]]]:
        """Tokenize, capture ephemeral state, de-noise, and diff.

        Returns ``(divergence reason or None, per-link masked token
        tuples)``.  Only *voter* streams feed the diff; masked tuples are
        produced for every link so shadow comparison can reuse them.
        """
        with trace.span("denoise") as denoise:
            raw_tokens = [self.protocol.tokenize(response) for response in responses]
            if (
                self.config.ephemeral_state
                and len(links) == len(self.instances)
                and not any(link.shadow for link in links)
            ):
                captured = self._ephemeral.capture(raw_tokens)
                if captured:
                    self.metrics.ephemeral_tokens_captured += len(captured)
                    self.events.record(
                        ev.EPHEMERAL_CAPTURED,
                        f"{len(captured)} token(s)",
                        proxy=self.name,
                        exchange=exchange,
                    )
            tokens = self._variance.mask_streams(raw_tokens)
            if tokens is not raw_tokens:
                # Variance rules rewrote something this exchange; the
                # count lets trace consumers (repro.fuzz's oracle) tell
                # "unanimous because masking worked" from a plain match.
                rewritten = sum(
                    1
                    for raw_stream, masked_stream in zip(raw_tokens, tokens)
                    for raw, masked in zip(raw_stream, masked_stream)
                    if raw != masked
                )
                if rewritten:
                    denoise.attrs["variance_masked_tokens"] = rewritten
            mask = self._mask_for(tokens, links)
            if mask.token_ranges or mask.tail_from is not None:
                self.metrics.noise_filtered_tokens += len(mask.token_ranges)
                denoise.attrs["masked_tokens"] = len(mask.token_ranges)
                self.events.record(
                    ev.NOISE_FILTERED,
                    f"{len(mask.token_ranges)} token(s) masked",
                    proxy=self.name,
                    exchange=exchange,
                )
        with trace.span("diff") as diff_span:
            voter_tokens = [
                tokens[position]
                for position, link in enumerate(links)
                if not link.shadow
            ]
            result = diff_tokens(voter_tokens, mask)
            # Masked per-link tuples are only consumed by the voting path
            # (majority grouping) and shadow comparison; the common
            # unanimous/no-shadow exchange skips building them entirely.
            need_masked = result.divergent or any(link.shadow for link in links)
            if not need_masked:
                masked_tuples: list[tuple[bytes, ...]] = []
            elif not mask.token_ranges and mask.tail_from is None:
                masked_tuples = [tuple(stream) for stream in tokens]
            else:
                masked_tuples = [
                    tuple(mask.mask_token(i, token) for i, token in enumerate(stream))
                    for stream in tokens
                ]
            diff_span.attrs["divergent"] = result.divergent
        if result.divergent:
            self.metrics.divergences += 1
            # Exported for dedup by repro.fuzz triage (and anyone else
            # correlating divergences across exchanges): the positional
            # signature plus its position-insensitive cluster.
            trace.root.attrs["diff_signature"] = result.signature()
            trace.root.attrs["diff_cluster"] = result.cluster_signature()
            return result.reason, masked_tuples
        return None, masked_tuples

    def _mask_for(self, tokens: list[list[bytes]], links: list[_InstanceLink]):
        """Denoise via the filter pair, if both members are still active."""
        pair = self._denoiser.pair
        if pair is None:
            return self._denoiser.mask_for(tokens)
        positions = {link.index: position for position, link in enumerate(links)}
        first, second = pair.indices()
        if first not in positions or second not in positions:
            return EMPTY_MASK
        return learn_noise_mask(tokens[positions[first]], tokens[positions[second]])

    # ------------------------------------------------------------ voting

    async def _vote_respond(
        self,
        client_writer: asyncio.StreamWriter,
        links: list[_InstanceLink],
        responses: list[bytes],
        majority: list[int],
        voters: list[int],
        exchange: int,
        reason: str,
    ) -> list[_InstanceLink] | None:
        """Forward the majority's response; optionally quarantine the rest.

        ``majority`` and ``voters`` are positions into ``links``; shadow
        links are never part of either and always survive a vote.

        Returns the (possibly reduced) link list, or ``None`` if the
        client connection died.
        """
        minority = [p for p in voters if p not in majority]
        self.events.record(
            ev.VOTE_OVERRIDE,
            f"{len(majority)}/{len(voters)} agreed ({reason}); "
            f"outvoted instances: {[links[p].index for p in minority]}",
            proxy=self.name,
            exchange=exchange,
        )
        winner_position = majority[0]
        response = responses[winner_position]
        self.metrics.bytes_to_clients += len(response)
        client_writer.write(response)
        try:
            await drain_write(client_writer)
        except ConnectionClosed:
            return None
        if self.config.quarantine_minority:
            drop = set()
            for position in minority:
                link = links[position]
                self.events.record(
                    ev.QUARANTINE,
                    f"instance {link.index} dropped from connection",
                    proxy=self.name,
                    exchange=exchange,
                )
                self._report_failure(
                    link.index, f"outvoted: {reason}", fatal=True
                )
                await close_writer(link.writer)
                drop.add(position)
            links = [
                link for position, link in enumerate(links)
                if position not in drop
            ]
        return links

    # ------------------------------------------------------------ blocking

    async def _block(
        self,
        client_writer: asyncio.StreamWriter,
        links: list[_InstanceLink],
        exchange: int,
        reason: str | None,
        *,
        request: bytes | None = None,
    ) -> None:
        """Serve the intervention response and halt all communication.

        ``reason=None`` means the block came from a learned signature (the
        divergence was already recorded when the signature was learned).
        """
        self.metrics.exchanges_blocked += 1
        if reason is not None:
            self.events.record(ev.DIVERGENCE, reason, proxy=self.name, exchange=exchange)
            if self.config.signature_learning and request is not None:
                self.signatures.learn(request, reason)
        block = self.protocol.block_response(self.config.block_message)
        if block:
            with contextlib.suppress(Exception):
                client_writer.write(block)
                await drain_write(client_writer)
        await close_writer(client_writer)
        for link in links:
            await close_writer(link.writer)


def _majority_indices(masked: list[tuple[bytes, ...]]) -> list[int] | None:
    """Positions forming a strict majority of identical masked streams."""
    groups: dict[tuple[bytes, ...], list[int]] = {}
    for position, stream in enumerate(masked):
        groups.setdefault(stream, []).append(position)
    best = max(groups.values(), key=len)
    if len(best) * 2 > len(masked):
        return best
    return None
