"""The RDDR Incoming Request Proxy (paper section IV-B).

Sits between clients and the N instances of the protected microservice.
For every client request it: **Replicates** the request to all instances
(substituting per-instance ephemeral state), collects their responses,
**De-noises** them with the filter pair, **Diffs** the token streams, and
**Responds** — forwarding the canonical instance's bytes when unanimous,
or serving the intervention response and closing the connection when
divergent.

Beyond the paper's core design, two section IV-D extensions are
implemented behind configuration flags:

* ``signature_learning`` — divergence-signature generation: requests
  matching a previously diverging request pattern are rejected *before*
  replication, defeating the repeat-the-exploit DoS amplifier;
* ``divergence_policy="vote"`` (with optional ``quarantine_minority``) —
  classic N-version voting: when a strict majority of instances agree,
  their response is forwarded and, optionally, the outvoted instances
  are dropped from the connection.
"""

from __future__ import annotations

import asyncio
import contextlib
import ssl
import time
from dataclasses import dataclass

from repro.core import events as ev
from repro.core.config import RddrConfig
from repro.core.denoise import FilterPairDenoiser
from repro.core.diff import diff_tokens
from repro.core.ephemeral import EphemeralStateStore
from repro.core.events import EventLog
from repro.core.metrics import ProxyMetrics
from repro.core.signatures import SignatureStore
from repro.core.variance import VarianceMasker
from repro.obs import ExchangeTrace, Observer, active_observer
from repro.protocols.base import ProtocolModule, resolve
from repro.transport.retry import open_connection_retry
from repro.transport.server import ServerHandle, start_server
from repro.transport.streams import ConnectionClosed, close_writer, drain_write

Address = tuple[str, int]


@dataclass
class _InstanceLink:
    """One live connection to one instance, keeping its original index."""

    index: int
    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter


@dataclass
class _ReadFailure:
    """One instance's failed response read within an exchange."""

    kind: str  # "deadline" or "lost"
    detail: str


class IncomingRequestProxy:
    """N-versioning proxy for client-initiated traffic."""

    def __init__(
        self,
        instances: list[Address],
        protocol: ProtocolModule | str,
        config: RddrConfig | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        name: str = "rddr-incoming",
        event_log: EventLog | None = None,
        metrics: ProxyMetrics | None = None,
        observer: Observer | None = None,
        server_ssl: ssl.SSLContext | None = None,
        instance_ssl: ssl.SSLContext | None = None,
    ) -> None:
        if len(instances) < 2:
            raise ValueError("N-versioning requires at least 2 instances")
        self.instances = list(instances)
        self.protocol = resolve(protocol)
        protocol = self.protocol
        self.config = config or RddrConfig(protocol=protocol.name)
        if self.config.divergence_policy not in ("block", "vote"):
            raise ValueError(
                f"unknown divergence policy {self.config.divergence_policy!r}"
            )
        self.host = host
        self.port = port
        self.name = name
        # Explicit None checks: an empty EventLog is falsy (it has __len__).
        self.observer = (
            observer if observer is not None else (active_observer() or Observer())
        )
        self.events = (
            event_log if event_log is not None else EventLog(observer=self.observer)
        )
        self.metrics = (
            metrics
            if metrics is not None
            else self.observer.proxy_metrics(name, protocol.name)
        )
        self.server_ssl = server_ssl
        self.instance_ssl = instance_ssl
        self.handle: ServerHandle | None = None
        self._denoiser = FilterPairDenoiser(self.config.filter_pair_obj())
        self._variance = VarianceMasker(self.config.variance_rules)
        self._ephemeral = EphemeralStateStore(
            instance_count=len(instances),
            min_length=self.config.ephemeral_min_length,
            canonical_instance=self.config.canonical_instance,
        )
        self.signatures = SignatureStore(ttl=self.config.signature_ttl)
        self._exchange_counter = 0

    # ------------------------------------------------------------ lifecycle

    @property
    def address(self) -> Address:
        if self.handle is None:
            raise RuntimeError("proxy not started")
        return self.handle.address

    async def start(self) -> ServerHandle:
        self.handle = await start_server(
            self._serve_client,
            self.host,
            self.port,
            name=self.name,
            ssl_context=self.server_ssl,
        )
        self.port = self.handle.port
        return self.handle

    async def close(self) -> None:
        if self.handle is not None:
            await self.handle.close()

    # ------------------------------------------------------------ serving

    async def _serve_client(
        self, client_reader: asyncio.StreamReader, client_writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.connections_total += 1
        links = await self._connect_instances(client_writer)
        if links is None:
            return
        state = self.protocol.new_connection_state()
        try:
            await self._exchange_loop(client_reader, client_writer, links, state)
        finally:
            for link in links:
                await close_writer(link.writer)

    async def _connect_instances(
        self, client_writer: asyncio.StreamWriter
    ) -> list[_InstanceLink] | None:
        """Dial every instance (bounded retry-with-backoff per endpoint).

        On partial failure, either degrade onto the surviving majority or
        — closing the connections that *did* open so they cannot leak —
        serve the intervention response and close the client cleanly.
        """
        results = await asyncio.gather(
            *(
                open_connection_retry(
                    host,
                    port,
                    attempts=self.config.connect_attempts,
                    max_delay=self.config.connect_backoff_max,
                    ssl_context=self.instance_ssl,
                )
                for host, port in self.instances
            ),
            return_exceptions=True,
        )
        failed = [
            (index, result)
            for index, result in enumerate(results)
            if isinstance(result, BaseException)
        ]
        survivors = [
            index
            for index in range(len(results))
            if not isinstance(results[index], BaseException)
        ]
        if any(isinstance(error, asyncio.CancelledError) for _, error in failed):
            for position in survivors:
                await close_writer(results[position][1])
            raise asyncio.CancelledError
        if not failed:
            return [
                _InstanceLink(index=i, reader=reader, writer=writer)
                for i, (reader, writer) in enumerate(results)
            ]
        if self.config.degradation_allowed(len(self.instances), len(survivors)):
            for index, error in failed:
                self.events.record(
                    ev.DEGRADED,
                    f"instance {index} dropped at connect: {error}",
                    proxy=self.name,
                )
            return [
                _InstanceLink(
                    index=index, reader=results[index][0], writer=results[index][1]
                )
                for index in survivors
            ]
        for position in survivors:
            await close_writer(results[position][1])
        index, error = failed[0]
        self.events.record(
            ev.INSTANCE_ERROR,
            f"connect failed: instance {index}: {error}",
            proxy=self.name,
        )
        block = self.protocol.block_response(self.config.block_message)
        if block:
            with contextlib.suppress(Exception):
                client_writer.write(block)
                await drain_write(client_writer)
        await close_writer(client_writer)
        return None

    async def _exchange_loop(
        self,
        client_reader: asyncio.StreamReader,
        client_writer: asyncio.StreamWriter,
        links: list[_InstanceLink],
        state: object,
    ) -> None:
        while True:
            request = await self.protocol.read_client_message(client_reader, state)
            if request is None:
                return
            exchange = self._exchange_counter
            self._exchange_counter += 1
            self.metrics.exchanges_total += 1
            self.metrics.bytes_from_clients += len(request)
            trace = self.observer.begin_exchange(
                proxy=self.name,
                protocol=self.protocol.name,
                direction="incoming",
                exchange=exchange,
            )
            try:
                links = await self._run_exchange(
                    request, client_writer, links, state, exchange, trace
                )
            finally:
                self.observer.finish_exchange(trace)
            if links is None:
                return

    async def _run_exchange(
        self,
        request: bytes,
        client_writer: asyncio.StreamWriter,
        links: list[_InstanceLink],
        state: object,
        exchange: int,
        trace: ExchangeTrace,
    ) -> list[_InstanceLink] | None:
        """One exchange; returns the surviving links, or ``None`` to stop
        serving this client connection."""
        started = time.monotonic()

        # Section IV-D: reject remembered diverging inputs outright.
        if self.config.signature_learning:
            signature = self.signatures.match(request)
            if signature is not None:
                self.events.record(
                    ev.SIGNATURE_BLOCKED,
                    f"matched signature learned for: {signature.reason}",
                    proxy=self.name,
                    exchange=exchange,
                )
                trace.set_verdict("blocked_signature", signature.reason)
                await self._block(client_writer, links, exchange, None)
                return None

        # Replicate, substituting each instance's own ephemeral state.
        with trace.span("replicate") as replicate:
            send_failed: list[_InstanceLink] = []
            for link in links:
                payload = request
                if self.config.ephemeral_state:
                    payload = self._ephemeral.rewrite_for_instance(request, link.index)
                    if payload != request:
                        self.events.record(
                            ev.EPHEMERAL_REWRITTEN,
                            f"instance {link.index}",
                            proxy=self.name,
                            exchange=exchange,
                        )
                with trace.span("send", parent=replicate, instance=link.index):
                    link.writer.write(payload)
                    try:
                        await drain_write(link.writer)
                    except ConnectionClosed:
                        send_failed.append(link)
        degraded = False
        if send_failed:
            survivors = [link for link in links if link not in send_failed]
            if self.config.degradation_allowed(len(links), len(survivors)):
                await self._drop_links(
                    send_failed, exchange, "connection lost during replicate"
                )
                links = survivors
                degraded = True
            else:
                reason = f"instance {send_failed[0].index} connection lost"
                trace.set_verdict("instance_error", reason)
                await self._block(
                    client_writer, links, exchange, reason, request=request
                )
                return None
        if self.config.ephemeral_state:
            self._ephemeral.consume_used(request)

        if not self.protocol.expects_response(request, state):
            trace.set_verdict("oneway")
            return links

        outcome = await self._gather_responses(
            links, state, request, exchange, trace, degraded=degraded
        )
        if outcome is None:
            await self._block(
                client_writer, links, exchange, "instance failure/timeout",
                request=request,
            )
            return None
        responses, links, degraded = outcome

        verdict, masked = self._analyse(responses, links, exchange, trace)
        if verdict is not None:
            trace.set_verdict("divergent", verdict)
            if self.config.divergence_policy == "vote" and len(links) >= 3:
                majority = _majority_indices(masked)
                if majority is not None:
                    trace.set_verdict("vote_majority", verdict)
                    links = await self._vote_respond(
                        client_writer,
                        links,
                        responses,
                        majority,
                        exchange,
                        verdict,
                    )
                    if links is None:
                        return None
                    self.metrics.latency.observe(time.monotonic() - started)
                    self._finish_exchange(state)
                    return links
            await self._block(
                client_writer, links, exchange, verdict, request=request
            )
            return None

        canonical = self._response_for(
            links, responses, self.config.canonical_instance
        )
        self.metrics.bytes_to_clients += len(canonical)
        with trace.span("respond"):
            client_writer.write(canonical)
            try:
                await drain_write(client_writer)
            except ConnectionClosed:
                trace.set_verdict("client_closed")
                return None
        self.metrics.latency.observe(time.monotonic() - started)
        if degraded:
            trace.set_verdict("degraded", "served on surviving majority")
            self.events.record(
                ev.EXCHANGE_OK,
                "unanimous (degraded quorum)",
                proxy=self.name,
                exchange=exchange,
            )
        else:
            trace.set_verdict("unanimous")
            self.events.record(
                ev.EXCHANGE_OK, "unanimous", proxy=self.name, exchange=exchange
            )
        self._finish_exchange(state)
        return links

    def _finish_exchange(self, state: object) -> None:
        finish = getattr(self.protocol, "finish_exchange", None)
        if finish is not None:
            finish(state)

    def _response_for(
        self, links: list[_InstanceLink], responses: list[bytes], preferred_index: int
    ) -> bytes:
        """The response of the preferred original instance, or the first
        surviving one if the preferred instance was quarantined."""
        for position, link in enumerate(links):
            if link.index == preferred_index:
                return responses[position]
        return responses[0]

    async def _gather_responses(
        self,
        links: list[_InstanceLink],
        state: object,
        request: bytes,
        exchange: int,
        trace: ExchangeTrace,
        *,
        degraded: bool = False,
    ) -> tuple[list[bytes], list[_InstanceLink], bool] | None:
        """Collect every instance's response under per-instance deadlines.

        Each read is bounded individually, so one dead or straggling
        instance cannot hold the whole exchange hostage: with degraded
        quorum on, the failed instances are dropped and the surviving
        majority's responses are returned; otherwise the exchange ends in
        a timeout/instance_error block exactly as before.

        Returns ``(responses, surviving links, degraded)`` or ``None`` to
        block the exchange.
        """
        deadline = self.config.instance_deadline()

        async def read_from(link: _InstanceLink, parent) -> bytes:
            with trace.span("recv", parent=parent, instance=link.index):
                return await self.protocol.read_server_message(
                    link.reader, state, request
                )

        async def read_bounded(link: _InstanceLink, parent) -> bytes | _ReadFailure:
            try:
                return await asyncio.wait_for(read_from(link, parent), timeout=deadline)
            except asyncio.TimeoutError:
                return _ReadFailure("deadline", f"no response within {deadline}s")
            except (ConnectionClosed, ConnectionError) as error:
                return _ReadFailure("lost", str(error) or "connection lost")

        with trace.span("collect") as collect:
            results = await asyncio.gather(
                *(read_bounded(link, collect) for link in links)
            )

        failed = [
            position
            for position, result in enumerate(results)
            if isinstance(result, _ReadFailure)
        ]
        if not failed:
            return list(results), links, degraded
        survivors = [position for position in range(len(links)) if position not in failed]
        if self.config.degradation_allowed(len(links), len(survivors)):
            if not degraded:
                self.metrics.degraded_exchanges += 1
            for position in failed:
                self.events.record(
                    ev.DEGRADED,
                    f"instance {links[position].index} dropped: "
                    f"{results[position].detail}",
                    proxy=self.name,
                    exchange=exchange,
                )
                await close_writer(links[position].writer)
            return (
                [results[position] for position in survivors],
                [links[position] for position in survivors],
                True,
            )
        if any(results[position].kind == "deadline" for position in failed):
            reason = f"no unanimous response within {deadline}s"
            trace.set_verdict("timeout", reason)
            self.metrics.timeouts += 1
            self.events.record(ev.TIMEOUT, reason, proxy=self.name, exchange=exchange)
        else:
            reason = "; ".join(
                f"instance {links[position].index}: {results[position].detail}"
                for position in failed
            )
            trace.set_verdict("instance_error", reason)
            self.events.record(
                ev.INSTANCE_ERROR, reason, proxy=self.name, exchange=exchange
            )
        return None

    async def _drop_links(
        self, dropped: list[_InstanceLink], exchange: int, why: str
    ) -> None:
        """Degrade: record and close the dropped instances' connections."""
        self.metrics.degraded_exchanges += 1
        for link in dropped:
            self.events.record(
                ev.DEGRADED,
                f"instance {link.index} dropped: {why}",
                proxy=self.name,
                exchange=exchange,
            )
            await close_writer(link.writer)

    def _analyse(
        self,
        responses: list[bytes],
        links: list[_InstanceLink],
        exchange: int,
        trace: ExchangeTrace,
    ) -> tuple[str | None, list[tuple[bytes, ...]]]:
        """Tokenize, capture ephemeral state, de-noise, and diff.

        Returns ``(divergence reason or None, per-instance masked token
        tuples)`` — the masked tuples feed majority voting.
        """
        with trace.span("denoise") as denoise:
            raw_tokens = [self.protocol.tokenize(response) for response in responses]
            if self.config.ephemeral_state and len(links) == len(self.instances):
                captured = self._ephemeral.capture(raw_tokens)
                if captured:
                    self.metrics.ephemeral_tokens_captured += len(captured)
                    self.events.record(
                        ev.EPHEMERAL_CAPTURED,
                        f"{len(captured)} token(s)",
                        proxy=self.name,
                        exchange=exchange,
                    )
            tokens = self._variance.mask_streams(raw_tokens)
            mask = self._mask_for(tokens, links)
            if mask.token_ranges or mask.tail_from is not None:
                self.metrics.noise_filtered_tokens += len(mask.token_ranges)
                denoise.attrs["masked_tokens"] = len(mask.token_ranges)
                self.events.record(
                    ev.NOISE_FILTERED,
                    f"{len(mask.token_ranges)} token(s) masked",
                    proxy=self.name,
                    exchange=exchange,
                )
        with trace.span("diff") as diff_span:
            result = diff_tokens(tokens, mask)
            masked_tuples = [
                tuple(mask.mask_token(i, token) for i, token in enumerate(stream))
                for stream in tokens
            ]
            diff_span.attrs["divergent"] = result.divergent
        if result.divergent:
            self.metrics.divergences += 1
            return result.reason, masked_tuples
        return None, masked_tuples

    def _mask_for(self, tokens: list[list[bytes]], links: list[_InstanceLink]):
        """Denoise via the filter pair, if both members are still active."""
        pair = self._denoiser.pair
        if pair is None:
            return self._denoiser.mask_for(tokens)
        positions = {link.index: position for position, link in enumerate(links)}
        first, second = pair.indices()
        if first not in positions or second not in positions:
            from repro.core.diff import NoiseMask

            return NoiseMask()
        from repro.core.denoise import learn_noise_mask

        return learn_noise_mask(tokens[positions[first]], tokens[positions[second]])

    # ------------------------------------------------------------ voting

    async def _vote_respond(
        self,
        client_writer: asyncio.StreamWriter,
        links: list[_InstanceLink],
        responses: list[bytes],
        majority: list[int],
        exchange: int,
        reason: str,
    ) -> list[_InstanceLink] | None:
        """Forward the majority's response; optionally quarantine the rest.

        Returns the (possibly reduced) link list, or ``None`` if the
        client connection died.
        """
        minority = [p for p in range(len(links)) if p not in majority]
        self.events.record(
            ev.VOTE_OVERRIDE,
            f"{len(majority)}/{len(links)} agreed ({reason}); "
            f"outvoted instances: {[links[p].index for p in minority]}",
            proxy=self.name,
            exchange=exchange,
        )
        winner_position = majority[0]
        response = responses[winner_position]
        self.metrics.bytes_to_clients += len(response)
        client_writer.write(response)
        try:
            await drain_write(client_writer)
        except ConnectionClosed:
            return None
        if self.config.quarantine_minority:
            for position in minority:
                link = links[position]
                self.events.record(
                    ev.QUARANTINE,
                    f"instance {link.index} dropped from connection",
                    proxy=self.name,
                    exchange=exchange,
                )
                await close_writer(link.writer)
            links = [links[p] for p in majority]
        return links

    # ------------------------------------------------------------ blocking

    async def _block(
        self,
        client_writer: asyncio.StreamWriter,
        links: list[_InstanceLink],
        exchange: int,
        reason: str | None,
        *,
        request: bytes | None = None,
    ) -> None:
        """Serve the intervention response and halt all communication.

        ``reason=None`` means the block came from a learned signature (the
        divergence was already recorded when the signature was learned).
        """
        self.metrics.exchanges_blocked += 1
        if reason is not None:
            self.events.record(ev.DIVERGENCE, reason, proxy=self.name, exchange=exchange)
            if self.config.signature_learning and request is not None:
                self.signatures.learn(request, reason)
        block = self.protocol.block_response(self.config.block_message)
        if block:
            with contextlib.suppress(Exception):
                client_writer.write(block)
                await drain_write(client_writer)
        await close_writer(client_writer)
        for link in links:
            await close_writer(link.writer)


def _majority_indices(masked: list[tuple[bytes, ...]]) -> list[int] | None:
    """Positions forming a strict majority of identical masked streams."""
    groups: dict[tuple[bytes, ...], list[int]] = {}
    for position, stream in enumerate(masked):
        groups.setdefault(stream, []).append(position)
    best = max(groups.values(), key=len)
    if len(best) * 2 > len(masked):
        return best
    return None
