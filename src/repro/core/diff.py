"""Tokenized response diffing (the "Diff" in RDDR).

Responses from the N instances are tokenized by the active protocol
module (HTTP: lines; PostgreSQL: wire messages; ...), masked for known
noise, and compared token-by-token.  Any residual difference is a
*divergence* — RDDR deliberately does not try to decide which instance is
"right" (paper section III-B).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

#: Marks a whole token as ignorable in a :class:`NoiseMask`.
TOKEN_WILDCARD = "*"


@dataclass(frozen=True)
class CharRange:
    """A half-open ``[start, end)`` character range within a token."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid range [{self.start}, {self.end})")


@dataclass
class NoiseMask:
    """Noise annotations learned from the filter pair.

    ``token_ranges`` maps a token index to either :data:`TOKEN_WILDCARD`
    (ignore the whole token) or a list of character ranges to ignore.
    ``tail_from`` ignores every token at or beyond that index (used when
    the filter pair disagreed about token count).
    """

    token_ranges: dict[int, object] = field(default_factory=dict)
    tail_from: int | None = None

    def is_noise_token(self, index: int) -> bool:
        if self.tail_from is not None and index >= self.tail_from:
            return True
        return self.token_ranges.get(index) == TOKEN_WILDCARD

    def ranges_for(self, index: int) -> list[CharRange]:
        entry = self.token_ranges.get(index)
        if isinstance(entry, list):
            return entry
        return []

    def mask_token(self, index: int, token: bytes) -> bytes:
        """Blank out the noisy ranges of one token."""
        if self.is_noise_token(index):
            return b""
        ranges = self.ranges_for(index)
        if not ranges:
            return token
        out = bytearray(token)
        for char_range in ranges:
            end = min(char_range.end, len(out))
            for position in range(char_range.start, end):
                out[position] = 0
        # Tokens whose lengths differ only inside a masked trailing range
        # still compare unequal on length; trim masked tails.
        return bytes(out)


#: Shared no-noise mask for exchanges with nothing to mask (no filter
#: pair, or the pair agreed byte-for-byte).  Returned by the denoiser and
#: :func:`diff_tokens` instead of allocating a fresh empty mask per
#: exchange — treat it as immutable; learners always build their own.
EMPTY_MASK = NoiseMask()


@dataclass(frozen=True)
class TokenDifference:
    """One diverging token across instances."""

    token_index: int
    values: tuple[bytes, ...]  # masked token per instance


@dataclass
class DiffResult:
    """Outcome of comparing the N instances' token streams."""

    divergent: bool
    differences: list[TokenDifference] = field(default_factory=list)
    token_counts: tuple[int, ...] = ()

    @property
    def reason(self) -> str:
        if not self.divergent:
            return "unanimous"
        if self.differences:
            first = self.differences[0]
            return f"token {first.token_index} differs across instances"
        return "token counts differ across instances"

    def signature(self) -> str:
        """Stable identity of *how* the streams diverged (16 hex chars).

        Used by ``repro.fuzz`` triage to dedup findings: two exchanges
        share a signature when they diverge at the same token positions
        with the same normalized value sets.  Token values are wildcarded
        through :func:`~repro.core.signatures.normalize_request` so
        per-exchange randomness (leaked pointers, session ids) collapses
        into one signature; instance order is dropped via a sorted value
        set; count-mismatch divergences hash the *rank pattern* of the
        token counts, not the raw counts, so response-length jitter in an
        otherwise identical shape dedups too.  Empty for non-divergent
        results.
        """
        if not self.divergent:
            return ""
        from repro.core.signatures import normalize_request

        hasher = hashlib.sha256()
        if self.differences:
            for difference in self.differences:
                hasher.update(b"tok:%d" % difference.token_index)
                values = sorted(
                    {normalize_request(value) for value in difference.values}
                )
                for value in values:
                    hasher.update(b"|")
                    hasher.update(value)
                hasher.update(b";")
        else:
            order = {
                count: rank
                for rank, count in enumerate(sorted(set(self.token_counts)))
            }
            ranks = ",".join(str(order[count]) for count in self.token_counts)
            hasher.update(b"counts:" + ranks.encode())
        return hasher.hexdigest()[:16]

    def cluster_signature(self) -> str:
        """Position-insensitive divergence identity (16 hex chars).

        Like :meth:`signature` but dropping the token *positions*: only
        the sorted union of normalized diverging value-sets is hashed.
        Findings that differ solely in *where* in the stream they diverge
        — e.g. an ASLR pointer leak surfacing at whatever token offset
        the mutant's length pushed it to — collapse into one cluster,
        which is what ``repro.fuzz`` triage reports as the finding count.
        Count-mismatch divergences hash the same rank pattern as
        :meth:`signature`.  Empty for non-divergent results.
        """
        if not self.divergent:
            return ""
        from repro.core.signatures import normalize_request

        hasher = hashlib.sha256()
        if self.differences:
            values = sorted(
                {
                    normalize_request(value)
                    for difference in self.differences
                    for value in difference.values
                }
            )
            for value in values:
                hasher.update(b"|")
                hasher.update(value)
        else:
            order = {
                count: rank
                for rank, count in enumerate(sorted(set(self.token_counts)))
            }
            ranks = ",".join(str(order[count]) for count in self.token_counts)
            hasher.update(b"counts:" + ranks.encode())
        return hasher.hexdigest()[:16]


def diff_tokens(
    token_streams: list[list[bytes]],
    mask: NoiseMask | None = None,
    *,
    max_differences: int = 16,
) -> DiffResult:
    """Compare token streams from all N instances under a noise mask.

    Divergence is declared when any two instances disagree on a token
    (outside masked regions) or on the number of tokens (outside a masked
    tail).
    """
    if len(token_streams) < 2:
        return DiffResult(divergent=False, token_counts=tuple(len(s) for s in token_streams))
    mask = mask or EMPTY_MASK
    counts = tuple(len(stream) for stream in token_streams)
    compare_length = min(counts)
    if len(set(counts)) > 1:
        if mask.tail_from is None or any(
            count < mask.tail_from for count in counts
        ):
            return DiffResult(divergent=True, token_counts=counts)
    if not mask.token_ranges and mask.tail_from is None:
        # Nothing is masked (the common unanimous case): compare the
        # streams directly instead of masking token-by-token.  Falls
        # through to the detailed walk only to localise a difference.
        first = token_streams[0]
        if all(stream == first for stream in token_streams[1:]):
            return DiffResult(divergent=False, token_counts=counts)
    differences: list[TokenDifference] = []
    for index in range(compare_length):
        if mask.is_noise_token(index):
            continue
        masked = [
            mask.mask_token(index, stream[index]) for stream in token_streams
        ]
        if len(set(masked)) > 1:
            differences.append(
                TokenDifference(token_index=index, values=tuple(masked))
            )
            if len(differences) >= max_differences:
                break
    return DiffResult(
        divergent=bool(differences), differences=differences, token_counts=counts
    )


def differing_ranges(a: bytes, b: bytes) -> list[CharRange]:
    """Character ranges where two equal-length tokens differ.

    Contiguous runs of differing positions collapse into one range; this
    is what both the de-noising filter and the CSRF-token detector use to
    localise randomness inside a line.
    """
    if len(a) != len(b):
        raise ValueError("differing_ranges requires equal-length tokens")
    ranges: list[CharRange] = []
    start: int | None = None
    for position, (ca, cb) in enumerate(zip(a, b)):
        if ca != cb:
            if start is None:
                start = position
        elif start is not None:
            ranges.append(CharRange(start, position))
            start = None
    if start is not None:
        ranges.append(CharRange(start, len(a)))
    return ranges
