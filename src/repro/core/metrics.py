"""Proxy metrics: exchange counters and latency distribution.

Since the `repro.obs` redesign, :class:`ProxyMetrics` is a thin
backward-compatible *view* over a labeled
:class:`~repro.obs.metrics.MetricsRegistry`: every attribute read or
assignment goes straight to the registry series labeled with this
proxy's ``proxy``/``protocol``, so one deployment-wide registry feeds
both the legacy attribute API and the Prometheus/JSON export surfaces.
:class:`LatencyHistogram` keeps raw samples for exact small-N
percentiles, but is memory-bounded by a reservoir.
"""

from __future__ import annotations

import math
import random

from repro.obs.metrics import LATENCY_BUCKETS, HistogramSeries, MetricsRegistry

#: Raw samples retained by a LatencyHistogram before reservoir sampling
#: kicks in.  Below the cap percentiles are exact; above, approximate.
DEFAULT_SAMPLE_CAP = 2048


class LatencyHistogram:
    """Latency samples with percentile queries (stored in seconds).

    Memory is bounded: at most ``cap`` raw samples are retained.  Up to
    the cap, ``percentile()`` is exact; past it, Vitter's algorithm R
    keeps a uniform reservoir so percentiles become approximate, while
    ``mean`` and ``count`` stay exact via running aggregates.  The
    reservoir's RNG is seeded, so runs are reproducible.
    """

    def __init__(
        self,
        samples: list[float] | None = None,
        *,
        cap: int = DEFAULT_SAMPLE_CAP,
        seed: int = 0,
    ) -> None:
        if cap < 1:
            raise ValueError("cap must be >= 1")
        self.cap = cap
        self.samples: list[float] = []
        self._count = 0
        self._sum = 0.0
        self._rng = random.Random(seed)
        for sample in samples or ():
            self.observe(sample)

    def observe(self, seconds: float) -> None:
        self._count += 1
        self._sum += seconds
        if len(self.samples) < self.cap:
            self.samples.append(seconds)
        else:
            slot = self._rng.randrange(self._count)
            if slot < self.cap:
                self.samples[slot] = seconds

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) by linear interpolation.

        Exact while ``count <= cap``; a uniform-reservoir estimate above.
        """
        if not self.samples:
            return 0.0
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100) * (len(ordered) - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return ordered[low]
        weight = rank - low
        low_value, high_value = ordered[low], ordered[high]
        # a + (b-a)*w keeps denormals in [a, b] where a*(1-w) + b*w can
        # underflow below a; clamp against round-off at the top end too.
        value = low_value + (high_value - low_value) * weight
        return min(max(value, low_value), high_value)

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def count(self) -> int:
        return self._count


class _RegistryLatency(LatencyHistogram):
    """LatencyHistogram that also feeds a registry histogram series."""

    def __init__(self, series: HistogramSeries) -> None:
        super().__init__()
        self._series = series

    def observe(self, seconds: float) -> None:
        super().observe(seconds)
        self._series.observe(seconds)


class ProxyMetrics:
    """Counters one RDDR proxy maintains — a view over the registry.

    ``ProxyMetrics()`` with no arguments creates a private registry, so
    standalone use (and the pre-`repro.obs` API) keeps working; proxies
    normally get a view bound to the deployment's shared registry via
    :meth:`repro.obs.Observer.proxy_metrics`.
    """

    _COUNTERS = {
        "exchanges_total": (
            "rddr_exchanges_started_total",
            "Exchanges begun (client requests replicated / request groups formed).",
        ),
        "exchanges_blocked": (
            "rddr_exchanges_blocked_total",
            "Exchanges ended by an RDDR intervention.",
        ),
        "divergences": (
            "rddr_divergences_total",
            "Divergent exchanges detected after de-noising.",
        ),
        "timeouts": (
            "rddr_timeouts_total",
            "Exchanges abandoned because an instance missed the timeout.",
        ),
        "degraded_exchanges": (
            "rddr_degraded_exchanges_total",
            "Exchanges served on a degraded quorum after dropping instances.",
        ),
        "exchanges_shed": (
            "rddr_exchanges_shed_total",
            "Exchanges rejected by admission control under overload.",
        ),
        "noise_filtered_tokens": (
            "rddr_noise_filtered_tokens_total",
            "Response tokens masked by the de-noising filter pair.",
        ),
        "ephemeral_tokens_captured": (
            "rddr_ephemeral_tokens_total",
            "Ephemeral-state tokens (CSRF, session ids) captured.",
        ),
        "connections_total": (
            "rddr_connections_total",
            "Connections accepted from clients or instances.",
        ),
    }

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        *,
        proxy: str = "",
        protocol: str = "",
    ) -> None:
        self._registry = registry if registry is not None else MetricsRegistry()
        self._proxy = proxy
        self._protocol = protocol
        labels = {"proxy": proxy, "protocol": protocol}
        self._series = {}
        for attr, (name, help) in self._COUNTERS.items():
            family = self._registry.counter(name, help, ("proxy", "protocol"))
            self._series[attr] = family.labels(**labels)
        bytes_family = self._registry.counter(
            "rddr_client_bytes_total",
            "Bytes through the proxy, by direction (in = from clients).",
            ("proxy", "protocol", "direction"),
        )
        self._series["bytes_from_clients"] = bytes_family.labels(direction="in", **labels)
        self._series["bytes_to_clients"] = bytes_family.labels(direction="out", **labels)
        latency_family = self._registry.histogram(
            "rddr_exchange_latency_seconds",
            "Client-visible exchange latency through the proxy.",
            ("proxy", "protocol"),
            buckets=LATENCY_BUCKETS,
        )
        self.latency = _RegistryLatency(latency_family.labels(**labels))

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry

    @property
    def block_rate(self) -> float:
        if self.exchanges_total == 0:
            return 0.0
        return self.exchanges_blocked / self.exchanges_total

    def __repr__(self) -> str:
        fields = ", ".join(f"{attr}={getattr(self, attr)}" for attr in self._series)
        return f"ProxyMetrics(proxy={self._proxy!r}, {fields})"


def _series_property(attr: str) -> property:
    def fget(self: ProxyMetrics) -> int | float:
        value = self._series[attr].value
        return int(value) if float(value).is_integer() else value

    def fset(self: ProxyMetrics, value: float) -> None:
        self._series[attr].set(float(value))

    return property(fget, fset)


for _attr in (*ProxyMetrics._COUNTERS, "bytes_from_clients", "bytes_to_clients"):
    setattr(ProxyMetrics, _attr, _series_property(_attr))
del _attr
