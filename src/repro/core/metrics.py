"""Proxy metrics: exchange counters and latency distribution."""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class LatencyHistogram:
    """Latency samples with percentile queries (stored in seconds)."""

    samples: list[float] = field(default_factory=list)

    def observe(self, seconds: float) -> None:
        self.samples.append(seconds)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) by linear interpolation."""
        if not self.samples:
            return 0.0
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100) * (len(ordered) - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return ordered[low]
        weight = rank - low
        return ordered[low] * (1 - weight) + ordered[high] * weight

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def count(self) -> int:
        return len(self.samples)


@dataclass
class ProxyMetrics:
    """Counters one RDDR proxy maintains."""

    exchanges_total: int = 0
    exchanges_blocked: int = 0
    divergences: int = 0
    timeouts: int = 0
    noise_filtered_tokens: int = 0
    ephemeral_tokens_captured: int = 0
    bytes_from_clients: int = 0
    bytes_to_clients: int = 0
    connections_total: int = 0
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)

    @property
    def block_rate(self) -> float:
        if self.exchanges_total == 0:
            return 0.0
        return self.exchanges_blocked / self.exchanges_total
