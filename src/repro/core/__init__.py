"""RDDR core: Replicate, De-noise, Diff, Respond (the paper's contribution).

* :mod:`repro.core.incoming` / :mod:`repro.core.outgoing` — the proxies.
* :mod:`repro.core.diff` — tokenized divergence detection.
* :mod:`repro.core.denoise` — filter-pair nondeterminism masking.
* :mod:`repro.core.ephemeral` — CSRF-style per-instance state handling.
* :mod:`repro.core.variance` — configured known-variance masking.
* :mod:`repro.core.rddr` — deployment wiring (Figure 2).
"""

from repro.core.config import RddrConfig
from repro.core.denoise import FilterPair, FilterPairDenoiser, learn_noise_mask
from repro.core.diff import (
    TOKEN_WILDCARD,
    CharRange,
    DiffResult,
    NoiseMask,
    TokenDifference,
    diff_tokens,
    differing_ranges,
)
from repro.core.ephemeral import EphemeralBinding, EphemeralStateStore
from repro.core.events import EventLog
from repro.core.incoming import IncomingRequestProxy
from repro.core.metrics import LatencyHistogram, ProxyMetrics
from repro.core.outgoing import OutgoingRequestProxy
from repro.core.rddr import RddrDeployment
from repro.core.signatures import (
    DivergenceSignature,
    SignatureStore,
    normalize_request,
)
from repro.core.variance import (
    HTTP_SERVER_HEADER_RULES,
    POSTGRES_VERSION_RULES,
    VarianceMasker,
    VarianceRule,
)

__all__ = [
    "RddrConfig",
    "FilterPair",
    "FilterPairDenoiser",
    "learn_noise_mask",
    "TOKEN_WILDCARD",
    "CharRange",
    "DiffResult",
    "NoiseMask",
    "TokenDifference",
    "diff_tokens",
    "differing_ranges",
    "EphemeralBinding",
    "EphemeralStateStore",
    "EventLog",
    "IncomingRequestProxy",
    "LatencyHistogram",
    "ProxyMetrics",
    "OutgoingRequestProxy",
    "RddrDeployment",
    "DivergenceSignature",
    "SignatureStore",
    "normalize_request",
    "HTTP_SERVER_HEADER_RULES",
    "POSTGRES_VERSION_RULES",
    "VarianceMasker",
    "VarianceRule",
]
