"""Ephemeral per-instance state handling (paper section IV-B3).

CSRF tokens break naive N-versioning: each instance mints its own random
token, the client echoes back the one it saw (instance 0's, since RDDR
forwards the first instance's response), and every other instance would
reject the request.  RDDR therefore:

1. scans responses for lines that differ across *all* instances,
2. within those lines, finds differing character ranges that are
   alphanumeric and at least ``min_length`` (10) characters long — the
   paper's empirically chosen CSRF criterion,
3. stores a mapping canonical-token -> per-instance token,
4. rewrites each copy of subsequent client requests, substituting every
   instance's own token for the canonical one, and
5. deletes the mapping after one use (the tokens are ephemeral).
"""

from __future__ import annotations

from dataclasses import dataclass, field

DEFAULT_MIN_TOKEN_LENGTH = 10


def _is_token_text(data: bytes) -> bool:
    return len(data) > 0 and data.isalnum()


@dataclass
class EphemeralBinding:
    """One captured token: the canonical value and each instance's own."""

    canonical: bytes
    per_instance: tuple[bytes, ...]


@dataclass
class EphemeralStateStore:
    """Captures and re-substitutes per-instance ephemeral tokens."""

    instance_count: int
    min_length: int = DEFAULT_MIN_TOKEN_LENGTH
    canonical_instance: int = 0
    _bindings: dict[bytes, EphemeralBinding] = field(default_factory=dict)

    # ---------------------------------------------------------------- capture

    def capture(self, token_streams: list[list[bytes]]) -> list[EphemeralBinding]:
        """Inspect one exchange's response tokens; remember CSRF-like state.

        ``token_streams[i]`` is instance *i*'s tokenized response.  Only
        positions where **all** instances disagree pairwise-equal-length
        are candidates, mirroring the paper's "lines that differ across
        all instances" wording.
        """
        if len(token_streams) != self.instance_count:
            raise ValueError(
                f"expected {self.instance_count} streams, got {len(token_streams)}"
            )
        captured: list[EphemeralBinding] = []
        length = min(len(stream) for stream in token_streams) if token_streams else 0
        for index in range(length):
            tokens = [stream[index] for stream in token_streams]
            # "lines that differ across all instances": every instance
            # minted its own value, so tokens must be pairwise distinct.
            if len(set(tokens)) != len(tokens):
                continue
            if len({len(token) for token in tokens}) != 1:
                continue  # cannot align character ranges
            for char_range in self._candidate_ranges(tokens):
                values = tuple(
                    token[char_range[0] : char_range[1]] for token in tokens
                )
                if not all(_is_token_text(value) for value in values):
                    continue
                if len(values[0]) < self.min_length:
                    continue
                if len(set(values)) != len(values):
                    continue
                binding = EphemeralBinding(
                    canonical=values[self.canonical_instance], per_instance=values
                )
                self._bindings[binding.canonical] = binding
                captured.append(binding)
        return captured

    def _candidate_ranges(self, tokens: list[bytes]) -> list[tuple[int, int]]:
        """Maximal ranges where any instance differs from the first,
        greedily widened while the content stays alphanumeric."""
        reference = tokens[0]
        length = len(reference)
        differs = [
            any(token[i] != reference[i] for token in tokens[1:])
            for i in range(length)
        ]
        ranges: list[tuple[int, int]] = []
        i = 0
        while i < length:
            if not differs[i]:
                i += 1
                continue
            start = i
            while i < length and differs[i]:
                i += 1
            end = i
            # Widen over the surrounding alphanumeric run: the random
            # tokens usually share a few leading/trailing characters.
            while start > 0 and _is_token_text(reference[start - 1 : start]):
                start -= 1
            while end < length and _is_token_text(reference[end : end + 1]):
                end += 1
            if ranges and start <= ranges[-1][1]:
                ranges[-1] = (ranges[-1][0], max(end, ranges[-1][1]))
            else:
                ranges.append((start, end))
        return ranges

    # ---------------------------------------------------------------- rewrite

    def rewrite_for_instance(self, data: bytes, instance: int) -> bytes:
        """Substitute the canonical tokens in ``data`` with instance
        ``instance``'s own values.  Does not consume the bindings."""
        for binding in self._bindings.values():
            if binding.canonical in data:
                data = data.replace(
                    binding.canonical, binding.per_instance[instance]
                )
        return data

    def consume_used(self, data: bytes) -> int:
        """Delete bindings whose canonical token appeared in ``data``
        (tokens are one-shot).  Returns how many were consumed."""
        used = [c for c in self._bindings if c in data]
        for canonical in used:
            del self._bindings[canonical]
        return len(used)

    def __len__(self) -> int:
        return len(self._bindings)
