"""Automated divergence-signature generation (paper section IV-D).

The paper's limitations section notes that an attacker who has found a
diverging input can re-send it repeatedly, turning every attempt into an
N-instance round trip plus connection teardown — a denial-of-service
amplifier.  The proposed mitigation is automated signature generation
(citing Jones et al.'s self-managing N-variant work): remember what a
diverging request looked like and drop look-alikes *before* replication.

:class:`SignatureStore` implements that: when an exchange diverges, the
triggering request is normalized into a :class:`DivergenceSignature` —
its token skeleton with long alphanumeric runs (session ids, CSRF
tokens, random payload filler) wildcarded so the signature generalises
across the attacker's per-request randomness — and subsequent requests
matching a stored signature are rejected immediately.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field

#: Alphanumeric runs at least this long are wildcarded during
#: normalization (same order as the CSRF detector's threshold: they are
#: the parts attackers and frameworks randomise per request).
WILDCARD_RUN_LENGTH = 8

_RUN_RE = re.compile(rb"[A-Za-z0-9]{%d,}" % WILDCARD_RUN_LENGTH)
_WILDCARD = b"\x00*\x00"


def normalize_request(request: bytes) -> bytes:
    """The signature key for a request: long alnum runs wildcarded."""
    return _RUN_RE.sub(_WILDCARD, request)


@dataclass(frozen=True)
class DivergenceSignature:
    """A remembered diverging request pattern."""

    pattern: bytes
    reason: str
    created_at: float

    def matches(self, request: bytes) -> bool:
        return normalize_request(request) == self.pattern


@dataclass
class SignatureStore:
    """Learned signatures plus hit accounting.

    ``max_signatures`` bounds memory (oldest evicted first); ``ttl``
    ages signatures out so a patched deployment stops penalising inputs
    that once diverged (``None`` disables expiry).
    """

    max_signatures: int = 256
    ttl: float | None = None
    _signatures: dict[bytes, DivergenceSignature] = field(default_factory=dict)
    hits: int = 0
    _clock = staticmethod(time.monotonic)

    def learn(self, request: bytes, reason: str) -> DivergenceSignature:
        """Record the signature of a diverging request."""
        pattern = normalize_request(request)
        signature = DivergenceSignature(
            pattern=pattern, reason=reason, created_at=self._clock()
        )
        self._signatures[pattern] = signature
        while len(self._signatures) > self.max_signatures:
            oldest = min(self._signatures.values(), key=lambda s: s.created_at)
            del self._signatures[oldest.pattern]
        return signature

    def match(self, request: bytes) -> DivergenceSignature | None:
        """The stored signature this request matches, if any."""
        self._expire()
        signature = self._signatures.get(normalize_request(request))
        if signature is not None:
            self.hits += 1
        return signature

    def _expire(self) -> None:
        if self.ttl is None:
            return
        now = self._clock()
        expired = [
            pattern
            for pattern, signature in self._signatures.items()
            if now - signature.created_at > self.ttl
        ]
        for pattern in expired:
            del self._signatures[pattern]

    def __len__(self) -> int:
        return len(self._signatures)
