"""Known-variance masking (paper section IV-B4).

Some divergence is *deterministic* and benign: version strings when
running version diversity, vendor banners when running implementation
diversity.  Operators declare these via configuration as regex rules;
matching substrings are replaced with a fixed placeholder in every
instance's tokens before diffing, so they can never register as
divergence.

The paper implements this for the PostgreSQL plugin only; here every
protocol module applies the same rule engine.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_PLACEHOLDER = b"\x00VARIANT\x00"


@dataclass(frozen=True)
class VarianceRule:
    """One configured source of benign deterministic divergence."""

    pattern: str
    replacement: bytes = _PLACEHOLDER
    description: str = ""

    def compiled(self) -> re.Pattern[bytes]:
        return _compile(self.pattern)


_COMPILED_CACHE: dict[str, re.Pattern[bytes]] = {}


def _compile(pattern: str) -> re.Pattern[bytes]:
    compiled = _COMPILED_CACHE.get(pattern)
    if compiled is None:
        compiled = re.compile(pattern.encode("utf-8"), re.DOTALL)
        if len(_COMPILED_CACHE) > 512:
            _COMPILED_CACHE.clear()
        _COMPILED_CACHE[pattern] = compiled
    return compiled


class VarianceMasker:
    """Applies the configured rules to token streams."""

    def __init__(self, rules: list[VarianceRule] | None = None) -> None:
        self.rules = list(rules or [])

    def add_rule(self, rule: VarianceRule) -> None:
        self.rules.append(rule)

    def mask_token(self, token: bytes) -> bytes:
        for rule in self.rules:
            token = rule.compiled().sub(rule.replacement, token)
        return token

    def mask_stream(self, tokens: list[bytes]) -> list[bytes]:
        if not self.rules:
            return tokens
        return [self.mask_token(token) for token in tokens]

    def mask_streams(self, streams: list[list[bytes]]) -> list[list[bytes]]:
        if not self.rules:
            return streams
        return [self.mask_stream(stream) for stream in streams]


#: Rules most deployments of version-diverse databases need, provided as
#: a convenience (the operator still opts in through configuration).
POSTGRES_VERSION_RULES = [
    VarianceRule(
        pattern=r"PostgreSQL \d+[0-9.]*",
        description="PostgreSQL version banners (SELECT version(), SHOW)",
    ),
    VarianceRule(
        pattern=r"server_version\x00[0-9.]+",
        description="server_version ParameterStatus payload",
    ),
]

#: Rules for diverse HTTP server implementations (Server: headers).
HTTP_SERVER_HEADER_RULES = [
    VarianceRule(
        pattern=r"(?i)server: [^\r\n]+",
        description="Server response header differs across implementations",
    ),
]
