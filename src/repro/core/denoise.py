"""Filter-pair de-noising (the "De-noise" in RDDR, paper section IV-B2).

Two *identical* instances — the filter pair — run alongside the diverse
instances.  Because the pair share an implementation, any difference in
their outputs must come from nondeterminism (random session ids, PHP
session cookies, ASLR'd pointer values...), not from a bug or exploit.
RDDR therefore learns a :class:`~repro.core.diff.NoiseMask` from the
pair's outputs and ignores exactly those regions when diffing the full
instance set.

Masking rules (documented here because the paper leaves them informal):

* Tokens equal across the pair → compared verbatim everywhere.
* Tokens differing but of equal length → the differing character ranges,
  widened over the surrounding alphanumeric run, are masked.  Widening
  matters: two random hex tokens agree at ~1/16 of their positions by
  chance, so the raw differing positions of the pair would not cover a
  third instance's random token and benign traffic would read as
  divergent.
* Tokens differing in length → the whole token is masked.
* If the pair disagree about the token *count*, every token from the
  first disagreement onward is masked (``tail_from``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.diff import (
    EMPTY_MASK,
    TOKEN_WILDCARD,
    CharRange,
    NoiseMask,
    differing_ranges,
)


@dataclass(frozen=True)
class FilterPair:
    """Indices (into the instance list) of the two identical instances."""

    first: int
    second: int

    def __post_init__(self) -> None:
        if self.first == self.second:
            raise ValueError("filter pair must be two distinct instances")

    def indices(self) -> tuple[int, int]:
        return (self.first, self.second)


def learn_noise_mask(
    pair_a: list[bytes], pair_b: list[bytes]
) -> NoiseMask:
    """Build a noise mask from the filter pair's token streams."""
    if pair_a == pair_b:
        # Identical streams learn nothing: share the immutable empty mask
        # instead of allocating one per exchange (the common case).
        return EMPTY_MASK
    mask = NoiseMask()
    limit = min(len(pair_a), len(pair_b))
    for index in range(limit):
        token_a, token_b = pair_a[index], pair_b[index]
        if token_a == token_b:
            continue
        if len(token_a) != len(token_b):
            mask.token_ranges[index] = TOKEN_WILDCARD
            continue
        ranges = widen_over_alnum(token_a, differing_ranges(token_a, token_b))
        if ranges:
            mask.token_ranges[index] = ranges
    if len(pair_a) != len(pair_b):
        mask.tail_from = limit if limit == 0 else _first_structural_break(pair_a, pair_b)
    return mask


def widen_over_alnum(token: bytes, ranges: list[CharRange]) -> list[CharRange]:
    """Expand each range across the alphanumeric run containing it, and
    merge overlapping results."""
    widened: list[CharRange] = []
    for char_range in ranges:
        start, end = char_range.start, char_range.end
        while start > 0 and token[start - 1 : start].isalnum():
            start -= 1
        while end < len(token) and token[end : end + 1].isalnum():
            end += 1
        if widened and start <= widened[-1].end:
            widened[-1] = CharRange(widened[-1].start, max(end, widened[-1].end))
        else:
            widened.append(CharRange(start, end))
    return widened


def _first_structural_break(pair_a: list[bytes], pair_b: list[bytes]) -> int:
    """Index where the two streams stop corresponding one-to-one."""
    limit = min(len(pair_a), len(pair_b))
    for index in range(limit):
        if len(pair_a[index]) != len(pair_b[index]):
            return index
    return limit


class FilterPairDenoiser:
    """Stateless helper bundling pair selection and mask learning."""

    def __init__(self, pair: FilterPair | None) -> None:
        self.pair = pair

    @property
    def enabled(self) -> bool:
        return self.pair is not None

    def mask_for(self, token_streams: list[list[bytes]]) -> NoiseMask:
        """Learn the mask from this exchange's filter-pair outputs.

        The returned mask may be the shared :data:`EMPTY_MASK`; callers
        must treat it as read-only.
        """
        if self.pair is None:
            return EMPTY_MASK
        first, second = self.pair.indices()
        if first >= len(token_streams) or second >= len(token_streams):
            raise IndexError(
                f"filter pair {self.pair} out of range for "
                f"{len(token_streams)} instances"
            )
        return learn_noise_mask(token_streams[first], token_streams[second])
