"""Structured event log for RDDR deployments.

Divergences, noise filtering, ephemeral-state captures, and timeouts are
recorded as typed events so tests and operators can assert on *why* RDDR
acted, not just that a connection died.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


@dataclass(frozen=True)
class Event:
    kind: str
    detail: str
    proxy: str
    exchange: int
    timestamp: float


class EventLog:
    """Append-only in-memory event log shared by a deployment's proxies.

    When bound to a :class:`repro.obs.Observer`, every recorded event is
    also counted in the registry (``rddr_events_total{proxy,kind}``).
    """

    def __init__(self, clock=time.monotonic, *, observer=None) -> None:
        self._events: list[Event] = []
        self._clock = clock
        self._observer = observer

    def bind_observer(self, observer) -> None:
        """Attach (or replace) the observer counting these events."""
        self._observer = observer

    def record(self, kind: str, detail: str, *, proxy: str = "", exchange: int = -1) -> Event:
        event = Event(
            kind=kind,
            detail=detail,
            proxy=proxy,
            exchange=exchange,
            timestamp=self._clock(),
        )
        self._events.append(event)
        if self._observer is not None:
            self._observer.event_recorded(event)
        return event

    def events(self, kind: str | None = None) -> list[Event]:
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event.kind == kind]

    def divergences(self) -> list[Event]:
        return self.events("divergence")

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)


#: Event kinds used by the proxies.
DIVERGENCE = "divergence"
SIGNATURE_BLOCKED = "signature_blocked"
VOTE_OVERRIDE = "vote_override"
QUARANTINE = "quarantine"
NOISE_FILTERED = "noise_filtered"
EPHEMERAL_CAPTURED = "ephemeral_captured"
EPHEMERAL_REWRITTEN = "ephemeral_rewritten"
TIMEOUT = "timeout"
INSTANCE_ERROR = "instance_error"
EXCHANGE_OK = "exchange_ok"
DEGRADED = "degraded"
RECOVERY_STATE = "recovery_state"
SHED = "shed"
CIRCUIT = "circuit_breaker"
