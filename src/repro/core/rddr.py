"""RDDR deployment wiring: one protected microservice, N instances.

Start order matters: outgoing proxies must exist *before* the instances
(instances are configured with their per-instance backend address, which
is an outgoing-proxy port), and the incoming proxy starts last, once all
instance addresses are known.  :class:`RddrDeployment` walks callers
through that order and shares one event log and metrics across the
deployment's proxies, matching Figure 2 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import RddrConfig
from repro.core.events import EventLog
from repro.core.incoming import IncomingRequestProxy
from repro.core.metrics import ProxyMetrics
from repro.core.outgoing import OutgoingRequestProxy
from repro.protocols import get_protocol
from repro.protocols.base import ProtocolModule

Address = tuple[str, int]


@dataclass
class RddrDeployment:
    """One protected microservice: its proxies, events, and metrics."""

    name: str
    config: RddrConfig = field(default_factory=RddrConfig)
    host: str = "127.0.0.1"
    events: EventLog = field(default_factory=EventLog)
    incoming: IncomingRequestProxy | None = None
    outgoing: dict[str, OutgoingRequestProxy] = field(default_factory=dict)
    incoming_metrics: ProxyMetrics = field(default_factory=ProxyMetrics)

    def _protocol(self, override: str | None = None) -> ProtocolModule:
        return get_protocol(override or self.config.protocol)

    # ------------------------------------------------------------ outgoing

    async def add_outgoing_proxy(
        self,
        backend_name: str,
        backend: Address,
        instance_count: int,
        *,
        protocol: str | None = None,
        config: RddrConfig | None = None,
    ) -> OutgoingRequestProxy:
        """Guard one backend the protected microservice talks to.

        Returns the proxy; instance *i* must be configured to reach the
        backend at ``proxy.address_for_instance(i)``.
        """
        if backend_name in self.outgoing:
            raise ValueError(f'outgoing proxy "{backend_name}" already exists')
        proxy = OutgoingRequestProxy(
            backend=backend,
            instance_count=instance_count,
            protocol=self._protocol(protocol),
            config=config or self.config,
            host=self.host,
            name=f"{self.name}-out-{backend_name}",
            event_log=self.events,
        )
        await proxy.start()
        self.outgoing[backend_name] = proxy
        return proxy

    # ------------------------------------------------------------ incoming

    async def start_incoming_proxy(
        self,
        instances: list[Address],
        *,
        port: int = 0,
        protocol: str | None = None,
        server_ssl=None,
        instance_ssl=None,
    ) -> IncomingRequestProxy:
        """Start the client-facing proxy over the N running instances."""
        if self.incoming is not None:
            raise ValueError("incoming proxy already started")
        self.incoming = IncomingRequestProxy(
            instances=instances,
            protocol=self._protocol(protocol),
            config=self.config,
            host=self.host,
            port=port,
            name=f"{self.name}-in",
            event_log=self.events,
            metrics=self.incoming_metrics,
            server_ssl=server_ssl,
            instance_ssl=instance_ssl,
        )
        await self.incoming.start()
        return self.incoming

    # ------------------------------------------------------------ queries

    @property
    def address(self) -> Address:
        """The client-facing address of the protected microservice."""
        if self.incoming is None:
            raise RuntimeError("incoming proxy not started")
        return self.incoming.address

    def divergences(self) -> list:
        return self.events.divergences()

    @property
    def intervened(self) -> bool:
        """Did RDDR block anything since the deployment started?"""
        return bool(self.events.divergences())

    async def close(self) -> None:
        if self.incoming is not None:
            await self.incoming.close()
        for proxy in self.outgoing.values():
            await proxy.close()

    async def __aenter__(self) -> "RddrDeployment":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()
